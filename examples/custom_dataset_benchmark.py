"""Benchmarking a custom dataset, end to end.

Shows the full Graphalytics flow on a user-provided graph: write/read
the EVL (.v/.e) format, derive a workload profile by measurement, run a
platform driver directly through the driver API (upload / execute /
retrieve / delete), validate the output against the reference
implementation, and check the SLA.

Run with::

    python examples/custom_dataset_benchmark.py
"""

import tempfile
from pathlib import Path

from repro.algorithms import run_reference, validate_output
from repro.datagen.graph500 import graph500
from repro.graph.io import read_graph, write_graph
from repro.harness.sla import sla_compliant
from repro.platforms.base import profile_from_graph
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import create_driver


def main():
    workdir = Path(tempfile.mkdtemp(prefix="graphalytics-custom-"))

    # 1. A "custom" dataset: here a weighted Kronecker graph, but any
    #    edge list in the Graphalytics EVL format works the same way.
    original = graph500(10, weighted=True, seed=123, name="my-graph")
    vertex_path, edge_path = write_graph(original, workdir / "my-graph")
    print(f"dataset written: {vertex_path}, {edge_path}")

    # 2. Reload it exactly as the harness would.
    graph = read_graph(workdir / "my-graph", directed=False, weighted=True)
    print(f"loaded: {graph}")

    # 3. Derive the workload profile by measuring the graph.
    profile = profile_from_graph(graph)
    print(
        f"profile: scale {profile.scale}, mean degree "
        f"{profile.mean_degree:.1f}, degree cv^2 {profile.degree_cv2:.1f}, "
        f"{profile.component_count} components"
    )

    # 4. Drive a platform through the driver API.
    driver = create_driver("powergraph")
    handle = driver.upload(graph, profile=profile)
    source = int(graph.vertex_ids[0])
    resources = ClusterResources(machines=1)
    job = driver.execute(handle, "sssp", {"source_vertex": source}, resources)
    print(
        f"\n{driver.name} SSSP: status={job.status.value}, "
        f"modeled Tproc {job.modeled_processing_time:.3f} s, "
        f"measured {job.measured_processing_seconds * 1000:.1f} ms"
    )

    # 5. Validate against the reference implementation (the Graphalytics
    #    definition of correctness) and check the SLA.
    reference = run_reference("sssp", graph, {"source_vertex": source})
    validate_output("sssp", job.output, reference)
    print("output validated: equivalent to the reference implementation")
    print(f"SLA: {'met' if sla_compliant(job) else 'broken'}")

    # 6. Clean up through the driver API.
    driver.delete(handle)
    print("graph deleted from the platform")


if __name__ == "__main__":
    main()
