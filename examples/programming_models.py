"""Programming models: the same algorithm in three platform paradigms.

Graphalytics defines algorithms abstractly precisely so platforms with
different programming models can compete (paper §2.2.3, requirement R1).
This example runs PageRank as a Pregel vertex program (Giraph's model),
as a gather-apply-scatter program (PowerGraph's model), and as semiring
sparse-matrix products (GraphMat's model), shows the three outputs are
equivalent, and times the abstractions.

It then runs a benchmark job on Giraph in *native* execution mode, where
the driver really computes through the Pregel engine.

Run with::

    python examples/programming_models.py
"""

import time

import numpy as np

from repro.algorithms import (
    pagerank,
    validate_output,
    weakly_connected_components,
)
from repro.datagen.generator import generate
from repro.engines import gas, pregel, spmv
from repro.platforms.registry import create_driver


def main():
    graph = generate(400, mean_degree=12, seed=21)
    print(f"workload: {graph}\n")

    reference = pagerank(graph, iterations=20)
    print(f"{'model':>22s} {'seconds':>9s} {'max |delta| vs reference':>26s}")
    for name, runner in (
        ("Pregel (vertex msgs)", lambda: pregel.run_pagerank(graph, 20)),
        ("GAS (gather/apply)", lambda: gas.run_pagerank(graph, 20)),
        ("SpMV (semiring)", lambda: spmv.run_pagerank(graph, 20)),
    ):
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        validate_output("pr", result, reference)
        delta = float(np.abs(result - reference).max())
        print(f"{name:>22s} {elapsed:>9.4f} {delta:>26.2e}")
    print("\nall three pass the Graphalytics epsilon-equivalence rule.")
    print("the SpMV formulation wins on wall-clock: vertex programs pay")
    print("per-vertex interpretation, matrix products vectorize —")
    print("GraphMat's design argument (paper section 3.1), measured.\n")

    # A driver in native mode: the simulated Giraph really computes
    # through the Pregel engine.
    driver = create_driver("giraph", execution="native")
    handle = driver.upload(graph)
    job = driver.execute(handle, "wcc")
    print(
        f"Giraph (native Pregel execution): WCC on the miniature in "
        f"{job.measured_processing_seconds * 1000:.1f} ms, "
        f"status={job.status.value}"
    )
    assert np.array_equal(job.output, weakly_connected_components(graph))
    print("native output equals the reference implementation.")


if __name__ == "__main__":
    main()
