"""Quickstart: generate a graph, run the six core algorithms, benchmark one job.

Run with::

    python examples/quickstart.py
"""

import numpy as np

import repro
from repro.algorithms import as_vertex_map
from repro.graph.stats import compute_statistics


def main():
    # 1. Generate a small LDBC-Datagen social network (weighted, seeded).
    graph = repro.datagen.generate(
        500, mean_degree=16, weighted=True, seed=42
    )
    print(f"generated: {graph}")
    stats = compute_statistics(graph)
    print(
        f"  mean degree {stats.mean_degree:.1f}, "
        f"clustering coefficient {stats.mean_clustering_coefficient:.3f}, "
        f"largest component {stats.largest_component_fraction:.0%}"
    )

    # 2. Run the six Graphalytics core algorithms.
    source = int(graph.vertex_ids[int(np.argmax(graph.degrees()))])
    depths = repro.breadth_first_search(graph, source)
    ranks = repro.pagerank(graph, iterations=30)
    components = repro.weakly_connected_components(graph)
    communities = repro.community_detection_lp(graph, iterations=10)
    lcc = repro.local_clustering_coefficient(graph)
    distances = repro.single_source_shortest_paths(graph, source)

    reachable = int((depths != np.iinfo(np.int64).max).sum())
    print(f"\nBFS from hub {source}: {reachable}/{graph.num_vertices} reachable, "
          f"max depth {depths[depths != np.iinfo(np.int64).max].max()}")
    top = sorted(as_vertex_map(graph, ranks).items(), key=lambda kv: -kv[1])[:3]
    print(f"PageRank top-3: {[(v, round(r, 4)) for v, r in top]}")
    print(f"WCC: {len(np.unique(components))} components")
    print(f"CDLP: {len(np.unique(communities))} communities")
    print(f"LCC: mean {lcc.mean():.3f}")
    finite = np.isfinite(distances)
    print(f"SSSP: mean distance {distances[finite].mean():.3f}")

    # 3. Benchmark one job on a simulated platform, Graphalytics-style.
    runner = repro.BenchmarkRunner()
    result = runner.run_job("graphmat", "D300", "bfs")
    print(
        f"\nGraphMat BFS on {result.dataset} (full-scale model): "
        f"Tproc {result.modeled_processing_time:.2f} s, "
        f"makespan {result.modeled_makespan:.1f} s, "
        f"EVPS {result.evps:.3g}, validated={result.validated}, "
        f"SLA={'ok' if result.sla_compliant else 'broken'}"
    )
    print(
        f"(the miniature graph really executed in "
        f"{result.measured_processing_seconds * 1000:.1f} ms on this machine)"
    )


if __name__ == "__main__":
    main()
