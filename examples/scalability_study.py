"""Scalability study: the paper's §4.3–4.5 experiments on demand.

Sweeps threads (vertical), machines with a fixed dataset (strong
horizontal), and machines with a growing dataset (weak horizontal) for
two platforms with very different scaling behavior, printing the
speedup/slowdown curves the paper plots in Figures 7–9.

Run with::

    python examples/scalability_study.py
"""

from repro.harness.datasets import get_dataset
from repro.harness.metrics import speedup
from repro.harness.sla import sla_compliant
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.platforms.cluster import ClusterResources

PLATFORMS = ("powergraph", "pgxd")


def vertical(runner):
    print("Vertical scalability: PR on D300(L), 1..32 threads")
    print(f"{'platform':>12s} " + " ".join(f"{t:>8d}" for t in (1, 2, 4, 8, 16, 32)))
    for platform in PLATFORMS:
        times = []
        for threads in (1, 2, 4, 8, 16, 32):
            result = runner.run_job(
                platform, "D300", "pr",
                resources=ClusterResources(threads=threads),
            )
            times.append(result.modeled_processing_time)
        cells = " ".join(f"{t:>8.2f}" for t in times)
        print(f"{platform:>12s} {cells}   (speedup {speedup(times[0], min(times)):.1f}x)")


def strong(runner):
    print("\nStrong horizontal scalability: BFS on D1000(XL), 1..16 machines")
    print(f"{'platform':>12s} " + " ".join(f"{m:>8d}" for m in (1, 2, 4, 8, 16)))
    for platform in PLATFORMS:
        cells = []
        for machines in (1, 2, 4, 8, 16):
            result = runner.run_job(
                platform, "D1000", "bfs",
                resources=ClusterResources(machines=machines),
            )
            if result.succeeded and result.sla_compliant:
                cells.append(f"{result.modeled_processing_time:>8.2f}")
            else:
                cells.append(f"{'FAIL':>8s}")
        print(f"{platform:>12s} " + " ".join(cells))


def weak(runner):
    series = (("G22", 1), ("G23", 2), ("G24", 4), ("G25", 8), ("G26", 16))
    print("\nWeak horizontal scalability: BFS on G22@1 .. G26@16")
    print(f"{'platform':>12s} " + " ".join(f"{d}@{m:>2d}" for d, m in series))
    for platform in PLATFORMS:
        cells = []
        for dataset, machines in series:
            result = runner.run_job(
                platform, dataset, "bfs",
                resources=ClusterResources(machines=machines),
            )
            if result.succeeded and result.sla_compliant:
                cells.append(f"{result.modeled_processing_time:>6.2f}")
            else:
                cells.append(f"{'FAIL':>6s}")
        print(f"{platform:>12s} " + "  ".join(cells))
    print("\nIdeal weak scaling keeps Tproc constant along the series; the")
    print("upward drift (and PGX.D's memory failure) match paper §4.5.")


def main():
    runner = BenchmarkRunner(BenchmarkConfig(seed=0))
    vertical(runner)
    strong(runner)
    weak(runner)


if __name__ == "__main__":
    main()
