"""Platform comparison: a mini Graphalytics run across all six platforms.

Runs BFS, PageRank, and WCC on three datasets against every platform,
prints a Figure-4-style comparison, saves the results database, and
renders a Granula archive for the slowest job.

Run with::

    python examples/platform_comparison.py
"""

import tempfile
from pathlib import Path

from repro.granula.archiver import build_archive
from repro.granula.visualizer import render_text, save_html
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.harness.runner import BenchmarkRunner
from repro.platforms.registry import PLATFORMS

DATASETS = ("R3", "R4", "D300")
ALGORITHMS = ("bfs", "pr", "wcc")


def main():
    config = BenchmarkConfig(
        datasets=list(DATASETS), algorithms=list(ALGORITHMS), seed=0
    )
    runner = BenchmarkRunner(config)
    database = runner.run()

    for algorithm in ALGORITHMS:
        print(f"\nTproc (s, full-scale model) — {algorithm.upper()}")
        names = [info.name for info, _ in PLATFORMS.values()]
        print(f"{'dataset':>10s} " + " ".join(f"{n:>11s}" for n in names))
        for dataset in DATASETS:
            cells = []
            for name in names:
                rows = database.query(
                    platform=name, dataset=dataset, algorithm=algorithm
                )
                if rows and rows[0].succeeded:
                    cells.append(f"{rows[0].modeled_processing_time:>11.3g}")
                else:
                    cells.append(f"{'FAIL':>11s}")
            print(f"{dataset:>10s} " + " ".join(cells))

    validated = sum(1 for r in database if r.validated)
    print(f"\n{len(database)} jobs run, {validated} outputs validated "
          f"against the reference implementations")

    out_dir = Path(tempfile.mkdtemp(prefix="graphalytics-"))
    db_path = database.save(out_dir / "results.json")
    print(f"results database saved to {db_path}")

    # Granula deep-dive into the platform with the largest overhead.
    dataset = get_dataset(runner.config.datasets[-1])
    driver = runner.driver("pgxd")
    handle = driver.upload(dataset.materialize(), profile=dataset.profile)
    job = driver.execute(handle, "bfs", dataset.algorithm_parameters("bfs"))
    archive = build_archive(job)
    print("\nGranula archive for PGX.D (note the tiny Tproc share — the")
    print("Table 8 overhead finding):")
    print(render_text(archive))
    html_path = save_html(archive, out_dir / "pgxd_bfs.html")
    print(f"\ninteractive report: {html_path}")


if __name__ == "__main__":
    main()
