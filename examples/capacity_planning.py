"""Capacity planning with the platform models and tuning policies.

A DevOps-flavored scenario (paper Figure 1 names the "System
Customer/DevOp" as a benchmark user): given a planned workload, find —
without trial runs — which platforms can run it, on how many machines,
and at what predicted cost; then verify one recommendation with an
actual benchmark job and a statistical comparison.

Run with::

    python examples/capacity_planning.py
"""

from repro.harness.analysis import compare_platforms
from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.harness.runner import BenchmarkRunner
from repro.platforms.registry import PLATFORMS, create_driver
from repro.platforms.tuning import capacity_frontier, recommend_resources


def main():
    # The planned workload: PageRank over datagen-1000 (12.8M vertices,
    # 1.01B edges — class XL).
    profile = get_dataset("D1000").profile
    algorithm = "pr"
    print(f"workload: {algorithm.upper()} on {profile.name} "
          f"(|V|={profile.num_vertices:,}, |E|={profile.num_edges:,})\n")

    print(f"{'platform':>12s} {'baseline':>9s} {'Tproc@base':>11s} "
          f"{'memory':>7s}  note")
    for name in PLATFORMS:
        driver = create_driver(name)
        decision = recommend_resources(driver, algorithm, profile)
        if decision.feasible:
            print(
                f"{driver.name:>12s} {decision.resources.machines:>7d}m "
                f"{decision.predicted_tproc:>10.1f}s "
                f"{decision.predicted_memory_fraction:>6.0%}  "
                f"{decision.reason}"
            )
        else:
            print(f"{driver.name:>12s} {'-':>9s} {'-':>11s} {'-':>7s}  "
                  f"{decision.reason}")

    # The feasibility frontier for the pickiest platform.
    print("\nPGX.D capacity frontier (machines -> predicted Tproc):")
    for machines, tproc in capacity_frontier(
        create_driver("pgxd"), algorithm, profile
    ):
        status = f"{tproc:.1f} s" if tproc is not None else "infeasible"
        print(f"  {machines:>2d} machines: {status}")

    # Verify the head-to-head with repeated benchmark jobs + a t-test.
    config = BenchmarkConfig(
        platforms=["graphmat", "powergraph"], datasets=["D1000"],
        algorithms=[algorithm], repetitions=6,
    )
    database = BenchmarkRunner(config).run()
    comparison = compare_platforms(
        database, "GraphMat", "PowerGraph",
        algorithm=algorithm, dataset="D1000",
    )
    print(
        f"\nmeasured head-to-head (6 repetitions each): {comparison.faster} "
        f"is {comparison.speedup:.1f}x faster than {comparison.slower} "
        f"(p={comparison.p_value:.2e}, "
        f"{'significant' if comparison.significant else 'not significant'})"
    )


if __name__ == "__main__":
    main()
