"""Social-network analysis: the paper's motivating workload (§1).

"Algorithmically analyzing large graphs is an important class of
problems in Big Data processing, with applications such as the analysis
of human behavior and preferences in social networks."

This example generates Datagen social networks with different target
clustering coefficients (the paper's §2.5.1 extension, Figure 2),
detects communities, identifies influencers, and compares the resulting
structure.

Run with::

    python examples/social_network_analysis.py
"""

import numpy as np

from repro.algorithms import (
    community_detection_lp,
    local_clustering_coefficient,
    pagerank,
    weakly_connected_components,
)
from repro.datagen.generator import generate
from repro.graph.stats import compute_statistics


def modularity(graph, labels) -> float:
    """Newman modularity of a community labeling."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    degrees = graph.degrees().astype(np.float64)
    internal = sum(
        1 for s, d in zip(graph.edge_src, graph.edge_dst) if labels[s] == labels[d]
    )
    groups = {}
    for v, label in enumerate(labels):
        groups.setdefault(int(label), []).append(v)
    expected = sum(
        (degrees[np.array(members)].sum() / (2 * m)) ** 2
        for members in groups.values()
    )
    return internal / m - expected


def analyze(target_cc, seed=11):
    graph = generate(
        800,
        mean_degree=18,
        target_clustering_coefficient=target_cc,
        seed=seed,
    )
    stats = compute_statistics(graph)
    communities = community_detection_lp(graph, iterations=10)
    ranks = pagerank(graph, iterations=30)
    components = weakly_connected_components(graph)
    lcc = local_clustering_coefficient(graph)

    sizes = np.unique(communities, return_counts=True)[1]
    hubs = np.argsort(ranks)[::-1][:5]
    return {
        "target_cc": target_cc,
        "measured_cc": stats.mean_clustering_coefficient,
        "communities": len(sizes),
        "largest_community": int(sizes.max()),
        "modularity": modularity(graph, communities),
        "components": len(np.unique(components)),
        "influencers": [int(graph.vertex_ids[h]) for h in hubs],
        "influencer_lcc": float(lcc[hubs].mean()),
    }


def main():
    print("Tunable clustering coefficient (paper Figure 2):\n")
    header = (
        f"{'target cc':>9s} {'measured':>9s} {'#comm':>6s} {'largest':>8s} "
        f"{'modularity':>10s} {'hub lcc':>8s}"
    )
    print(header)
    for target in (0.05, 0.15, 0.3):
        r = analyze(target)
        print(
            f"{r['target_cc']:>9.2f} {r['measured_cc']:>9.3f} "
            f"{r['communities']:>6d} {r['largest_community']:>8d} "
            f"{r['modularity']:>10.3f} {r['influencer_lcc']:>8.3f}"
        )
    print(
        "\nHigher targets produce denser, better-defined communities —"
        "\nthe paper's visual finding, quantified by modularity."
    )

    r = analyze(0.3)
    print(f"\nTop influencers (PageRank) at cc=0.3: {r['influencers']}")


if __name__ == "__main__":
    main()
