"""Figure 8: strong horizontal scalability — D1000(XL), 1..16 machines.

Reproduces the §4.4 key findings: PGX.D and GraphMat show reasonable
speedup; Giraph degrades badly at 2 machines (PR breaks the SLA there)
and recovers with more; PowerGraph and GraphX scale poorly; PGX.D fails
on a single machine and is sub-second on BFS from 4 machines; GraphMat
shows a single-machine PR outlier (swapping).
"""

from paper import PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment

MACHINES = (1, 2, 4, 8, 16)


def test_figure08_strong_scalability(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("strong-scalability").run(runner),
        rounds=1,
        iterations=1,
    )
    for algorithm in ("bfs", "pr"):
        rows = []
        for name, label in PLATFORM_LABELS.items():
            if name == "openg":
                continue  # single-machine platform, not in this experiment
            series = []
            for m in MACHINES:
                match = [
                    r for r in report.rows
                    if r["algorithm"] == algorithm
                    and r["machines"] == m
                    and r["platform"] == PLATFORM_NAMES[name]
                ]
                if match and match[0]["status"] == "ok":
                    series.append(match[0]["tproc"])
                else:
                    series.append("F")
            rows.append([label] + series)
        print_table(
            f"Figure 8 ({algorithm.upper()}): Tproc vs #machines (F=failed)",
            ["platform"] + [str(m) for m in MACHINES],
            rows,
        )

    def cell(platform, algorithm, machines):
        return report.rows_for(
            platform=platform, algorithm=algorithm, machines=machines
        )[0]

    # Giraph: 2-machine cliff; PR SLA failure at 2 machines only.
    assert cell("Giraph", "bfs", 2)["tproc"] > cell("Giraph", "bfs", 1)["tproc"]
    assert cell("Giraph", "pr", 2)["status"] == "F"
    assert cell("Giraph", "pr", 1)["status"] == "ok"
    assert cell("Giraph", "pr", 4)["status"] == "ok"
    # GraphX: needs 2 machines (BFS) / 4 machines (PR).
    assert cell("GraphX", "bfs", 1)["status"] == "F"
    assert cell("GraphX", "pr", 2)["status"] == "F"
    assert cell("GraphX", "pr", 4)["status"] == "ok"
    # PGX.D: fails on one machine; BFS sub-2s from 4 machines.
    assert cell("PGX.D", "bfs", 1)["status"] == "F"
    assert cell("PGX.D", "bfs", 4)["tproc"] < 2.0
    # GraphMat: single-machine PR outlier (slower than 2 machines).
    assert cell("GraphMat", "pr", 1)["tproc"] > cell("GraphMat", "pr", 2)["tproc"]
    # PowerGraph completes everywhere.
    for m in MACHINES:
        assert cell("PowerGraph", "bfs", m)["status"] == "ok"
