"""Table 1: results of the graph-algorithm literature surveys.

Regenerates the class/count/percentage table from the stored survey data
and benchmarks the two-stage selection process itself.
"""

from paper import print_table

from repro.harness.survey import survey_table, two_stage_selection

#: Percentages as printed in Table 1.
PAPER_ROWS = {
    ("Unweighted", "Statistics"): (24, 17.0),
    ("Unweighted", "Traversal"): (69, 48.9),
    ("Unweighted", "Components"): (20, 14.2),
    ("Unweighted", "Graph Evolution"): (6, 4.2),
    ("Unweighted", "Other"): (22, 15.6),
    ("Weighted", "Distances/Paths"): (17, 34.0),
    ("Weighted", "Clustering"): (7, 14.0),
    ("Weighted", "Partitioning"): (5, 10.0),
    ("Weighted", "Routing"): (5, 10.0),
    ("Weighted", "Other"): (16, 32.0),
}


def test_table01_survey(benchmark):
    rows = benchmark(survey_table)
    printable = []
    for row in rows:
        paper_count, paper_pct = PAPER_ROWS[(row["survey"], row["class"])]
        printable.append(
            (
                row["survey"],
                row["class"],
                ",".join(row["candidates"]) or "-",
                row["count"],
                paper_count,
                row["percentage"],
                paper_pct,
            )
        )
        assert row["count"] == paper_count
        assert abs(row["percentage"] - paper_pct) < 0.2
    print_table(
        "Table 1: algorithm surveys (paper vs reproduced)",
        ["survey", "class", "candidates", "count", "paper#", "%", "paper%"],
        printable,
    )


def test_table01_two_stage_selection(benchmark):
    selected = benchmark(two_stage_selection)
    # The process must land on exactly the paper's six core algorithms.
    assert set(selected) == {"bfs", "pr", "wcc", "cdlp", "lcc", "sssp"}
    print_table(
        "Two-stage selection outcome",
        ["selected algorithms"],
        [[", ".join(a.upper() for a in selected)]],
    )
