"""Table 4: the synthetic dataset catalog (Datagen + Graph500)."""

from paper import print_table

from repro.harness.datasets import SYNTHETIC_DATASETS, get_dataset

PAPER_TABLE4 = {
    "D100": ("datagen-100", 1.67e6, 102e6, 8.0),
    "D100'": ("datagen-100-cc0.05", 1.67e6, 103e6, 8.0),
    "D100\"": ("datagen-100-cc0.15", 1.67e6, 103e6, 8.0),
    "D300": ("datagen-300", 4.35e6, 304e6, 8.5),
    "D1000": ("datagen-1000", 12.8e6, 1.01e9, 9.0),
    "G22": ("graph500-22", 2.40e6, 64.2e6, 7.8),
    "G23": ("graph500-23", 4.61e6, 129e6, 8.1),
    "G24": ("graph500-24", 8.87e6, 260e6, 8.4),
    "G25": ("graph500-25", 17.1e6, 524e6, 8.7),
    "G26": ("graph500-26", 32.8e6, 1.05e9, 9.0),
}


def test_table04_catalog(benchmark):
    rows = benchmark(
        lambda: [(d.dataset_id, d.profile) for d in SYNTHETIC_DATASETS]
    )
    printable = []
    for dataset_id, profile in rows:
        name, v, e, scale = PAPER_TABLE4[dataset_id]
        assert profile.name == name
        assert profile.num_vertices == int(round(v))
        assert profile.num_edges == int(round(e))
        assert profile.scale == scale
        printable.append(
            (dataset_id, name, profile.num_vertices, profile.num_edges,
             profile.scale, get_dataset(dataset_id).tshirt)
        )
    print_table(
        "Table 4: synthetic datasets",
        ["id", "name", "|V|", "|E|", "scale", "class"],
        printable,
    )


def test_table04_datagen_miniature(benchmark):
    graph = benchmark.pedantic(
        lambda: get_dataset("D300").materializer(7), rounds=3, iterations=1
    )
    assert not graph.directed
    assert graph.is_weighted


def test_table04_graph500_miniature(benchmark):
    graph = benchmark.pedantic(
        lambda: get_dataset("G26").materializer(7), rounds=3, iterations=1
    )
    assert graph.num_edges > 50_000
