"""Figure 10: Datagen execution time — old vs new flow; cluster sizes.

Left panel: v0.2.6 vs v0.2.1 on 16 machines, SF 30..3000 (paper speedups
1.16/1.33/1.83/2.15/2.9x). Right panel: v0.2.6 on 4/8/16 machines up to
SF 10000 (paper: 44 min for 1B edges on 16 machines; 10 B edges in < 8 h;
4->16 machine speedups 1.1/1.4/2.0/3.0).
"""

import pytest
from paper import PAPER_FIGURE10_SPEEDUPS, print_table

from repro.datagen.flow import FlowVersion, estimate_generation_time
from repro.datagen.generator import DatagenConfig, generate_with_flow

SCALE_FACTORS = (30, 100, 300, 1000, 3000)


def _left_panel():
    rows = []
    for sf in SCALE_FACTORS:
        t_old = estimate_generation_time(sf, machines=16, version=FlowVersion.V0_2_1)
        t_new = estimate_generation_time(sf, machines=16, version=FlowVersion.V0_2_6)
        rows.append((sf, t_old, t_new, t_old / t_new))
    return rows


def _right_panel():
    rows = []
    for sf in SCALE_FACTORS + (10000,):
        times = [
            estimate_generation_time(sf, machines=m) for m in (4, 8, 16)
        ]
        rows.append((sf, *times))
    return rows


def test_figure10_left_old_vs_new(benchmark):
    rows = benchmark(_left_panel)
    printable = [
        (sf, t_old, t_new, ratio, PAPER_FIGURE10_SPEEDUPS[sf])
        for sf, t_old, t_new, ratio in rows
    ]
    print_table(
        "Figure 10 (left): v0.2.1 vs v0.2.6, 16 machines",
        ["SF (M edges)", "v0.2.1 (s)", "v0.2.6 (s)", "speedup", "paper"],
        printable,
    )
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)  # speedup grows with scale factor
    for sf, _, _, ratio in rows:
        assert ratio == pytest.approx(PAPER_FIGURE10_SPEEDUPS[sf], rel=0.40)
    # Headline: 1B edges in ~44 min new vs ~95 min old.
    sf1000 = next(r for r in rows if r[0] == 1000)
    assert 35 * 60 <= sf1000[2] <= 60 * 60
    assert 75 * 60 <= sf1000[1] <= 115 * 60


def test_figure10_right_cluster_sizes(benchmark):
    rows = benchmark(_right_panel)
    print_table(
        "Figure 10 (right): v0.2.6 by cluster size",
        ["SF (M edges)", "4 machines (s)", "8 machines (s)", "16 machines (s)"],
        rows,
    )
    # More machines always helps, and helps more at larger SF.
    speedups = []
    for sf, t4, t8, t16 in rows:
        assert t16 < t8 < t4
        speedups.append(t4 / t16)
    assert speedups == sorted(speedups)
    # 10B edges generated in < 8 hours on 16 machines (paper headline).
    sf10000 = next(r for r in rows if r[0] == 10000)
    assert sf10000[3] < 8 * 3600


def test_figure10_real_miniature_generation(benchmark):
    """Really generate a miniature graph through both flows and check
    they produce the identical graph (the functional contract that
    justifies comparing only their cost)."""

    def both():
        config = DatagenConfig(num_persons=500, seed=5)
        g_old, t_old = generate_with_flow(config, FlowVersion.V0_2_1)
        g_new, t_new = generate_with_flow(config, FlowVersion.V0_2_6)
        return g_old, g_new, t_old, t_new

    g_old, g_new, trace_old, trace_new = benchmark.pedantic(
        both, rounds=2, iterations=1
    )
    assert g_old.num_edges == g_new.num_edges
    assert trace_old.total_records_sorted > trace_new.steps[0].records_sorted
    print_table(
        "Miniature flow traces (records sorted per step)",
        ["flow"] + [s.dimension for s in trace_old.steps] + ["merge"],
        [
            ["v0.2.1"] + [s.records_sorted for s in trace_old.steps] + [0],
            ["v0.2.6"]
            + [s.records_sorted for s in trace_new.steps]
            + [trace_new.merge_records],
        ],
    )
