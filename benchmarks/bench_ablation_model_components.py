"""Ablation benches: which model component produces which paper finding.

DESIGN.md promises that every paper finding is produced by a mechanism,
not a lookup table. These ablations disable one mechanism at a time and
show the corresponding finding disappearing:

* skew sensitivity -> the Table 10 "fails G26 / passes D1000" split;
* the distribution shock -> Giraph's 2-machine cliff (§4.4);
* hyper-threading yield -> the 16->32-thread gains of Giraph/PGX.D (§4.3);
* the swap penalty -> GraphMat's single-machine PR outlier (§4.4);
* queue-based BFS -> OpenG's R2 win (§4.1).
"""

import dataclasses

from paper import print_table

from repro.harness.datasets import get_dataset
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import create_driver


def _ablate(model, **overrides):
    return dataclasses.replace(model, **overrides)


def R(machines=1, threads=None):
    return ClusterResources(machines=machines, threads=threads)


def test_ablation_skew_sensitivity(benchmark):
    """Without skew sensitivity, Giraph would no longer fail G26 while
    passing D1000 — the §4.6 graph-characteristics finding vanishes."""
    model = create_driver("giraph").model
    flat = _ablate(model, skew_sensitivity=0.0)
    g26 = get_dataset("G26").profile
    d1000 = get_dataset("D1000").profile

    def check():
        return (
            model.fits_in_memory("bfs", g26, R()),
            model.fits_in_memory("bfs", d1000, R()),
            flat.fits_in_memory("bfs", g26, R()),
            flat.fits_in_memory("bfs", d1000, R()),
        )

    full_g26, full_d1000, flat_g26, flat_d1000 = benchmark(check)
    print_table(
        "Ablation: Giraph skew sensitivity (fits in memory?)",
        ["model", "G26", "D1000"],
        [("calibrated", full_g26, full_d1000), ("no skew", flat_g26, flat_d1000)],
    )
    assert (full_g26, full_d1000) == (False, True)   # the paper's split
    assert flat_g26 == flat_d1000                    # split disappears


def test_ablation_distribution_shock(benchmark):
    """Without the shock, Giraph's 1->2-machine cliff disappears."""
    model = create_driver("giraph").model
    smooth = _ablate(model, dist_shock=1.0, dist_shock_adjust={})
    profile = get_dataset("D1000").profile

    def check():
        return (
            model.processing_time("bfs", profile, R(1)),
            model.processing_time("bfs", profile, R(2)),
            smooth.processing_time("bfs", profile, R(1)),
            smooth.processing_time("bfs", profile, R(2)),
        )

    t1, t2, s1, s2 = benchmark(check)
    print_table(
        "Ablation: Giraph distribution shock (BFS Tproc on D1000)",
        ["model", "1 machine", "2 machines"],
        [("calibrated", t1, t2), ("no shock", s1, s2)],
    )
    assert t2 > t1        # the cliff
    assert s2 < s1        # without the shock, 2 machines would win


def test_ablation_hyperthreading(benchmark):
    """Without HT yield, PGX.D gains nothing from 32 threads (§4.3)."""
    model = create_driver("pgxd").model
    no_ht = _ablate(model, ht_yield=0.0)
    profile = get_dataset("D300").profile

    def check():
        return (
            model.processing_time("bfs", profile, R(threads=16)),
            model.processing_time("bfs", profile, R(threads=32)),
            no_ht.processing_time("bfs", profile, R(threads=16)),
            no_ht.processing_time("bfs", profile, R(threads=32)),
        )

    t16, t32, n16, n32 = benchmark(check)
    print_table(
        "Ablation: PGX.D hyper-threading (BFS Tproc on D300)",
        ["model", "16 threads", "32 threads"],
        [("calibrated", t16, t32), ("no HT yield", n16, n32)],
    )
    assert t32 < t16
    assert n32 == n16


def test_ablation_swap_penalty(benchmark):
    """Without swapping, GraphMat's single-machine PR outlier (§4.4)
    disappears: one machine would beat two."""
    model = create_driver("graphmat").model
    no_swap = _ablate(model, swap_penalty=1.0)
    profile = get_dataset("D1000").profile

    def check():
        return (
            model.processing_time("pr", profile, R(1)),
            model.processing_time("pr", profile, R(2)),
            no_swap.processing_time("pr", profile, R(1)),
            no_swap.processing_time("pr", profile, R(2)),
        )

    t1, t2, n1, n2 = benchmark(check)
    print_table(
        "Ablation: GraphMat swap penalty (PR Tproc on D1000)",
        ["model", "1 machine", "2 machines"],
        [("calibrated", t1, t2), ("no swapping", n1, n2)],
    )
    assert t1 > t2        # the outlier
    assert n1 < n2        # no outlier without swapping


def test_ablation_queue_based_bfs(benchmark):
    """Without the queue-based BFS, OpenG loses its R2 advantage over
    PowerGraph (§4.1)."""
    openg = create_driver("openg").model
    iterative = _ablate(openg, queue_based_bfs=False)
    powergraph = create_driver("powergraph").model
    profile = get_dataset("R2").profile

    def check():
        return (
            openg.processing_time("bfs", profile, R()),
            iterative.processing_time("bfs", profile, R()),
            powergraph.processing_time("bfs", profile, R()),
        )

    queue, full_sweep, rival = benchmark(check)
    print_table(
        "Ablation: OpenG queue-based BFS on R2 (10% coverage)",
        ["variant", "Tproc"],
        [
            ("queue-based (calibrated)", queue),
            ("iterative (ablated)", full_sweep),
            ("PowerGraph (reference rival)", rival),
        ],
    )
    assert queue < rival
    assert full_sweep > queue
