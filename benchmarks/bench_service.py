"""Service front-door throughput, recorded to ``BENCH_service.json``.

Measures the HTTP control plane, not benchmark execution: a live
service instance (background event loop, real sockets on loopback)
takes submissions from 8 tenants and the bench records the submit
latency distribution (p50/p99) plus sustained runs-per-minute. Run
children are stubbed out — the dispatch loop is told the queue is
empty — so the numbers isolate request parsing, matrix validation,
spooling, and admission: the path every tenant pays on every request.

The p99 gate asserts a single submission stays under
``P99_BUDGET_SECONDS`` end-to-end (client connect through spooled 202).
Going over means the front door got heavier — an fsync added on the
hot path, validation cost blown up, the loop blocked somewhere — which
multiplies across every tenant of a shared deployment. The budget is
asserted unless ``GRAPHALYTICS_SKIP_OVERHEAD_CHECK`` is set (shared CI
hardware can stall arbitrarily).
"""

import asyncio
import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.service import BenchmarkService, ServiceClient, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_service.json"
TENANTS = 8
SUBMISSIONS_PER_TENANT = 25
P99_BUDGET_SECONDS = 0.25

MATRIX = {
    "platforms": ["powergraph"],
    "datasets": ["R1"],
    "algorithms": ["bfs"],
    "repetitions": 1,
}


class _ServiceHarness:
    """A live service whose scheduler never launches run children."""

    def __init__(self, spool: Path):
        config = ServiceConfig(
            spool=spool,
            port=0,
            per_tenant_depth=SUBMISSIONS_PER_TENANT * 2,
        )
        self.service = BenchmarkService(config)
        # Stub dispatch: admission/spooling stay real, execution doesn't.
        self.service.queue.acquire = lambda: None
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def __enter__(self) -> ServiceClient:
        self.thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            self.service.start(), self.loop
        ).result(timeout=30)
        return ServiceClient(host, port, timeout=30)

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_submit_latency_under_8_tenants(benchmark, tmp_path):
    def rounds():
        latencies = []
        with _ServiceHarness(tmp_path / "spool") as client:
            started = time.perf_counter()
            for index in range(SUBMISSIONS_PER_TENANT):
                for tenant_id in range(TENANTS):
                    tenant = f"tenant{tenant_id}"
                    t0 = time.perf_counter()
                    accepted = client.submit(tenant, MATRIX)
                    latencies.append(time.perf_counter() - t0)
                    assert accepted["state"] == "queued"
            elapsed = time.perf_counter() - started
        return latencies, elapsed

    latencies, elapsed = benchmark.pedantic(rounds, rounds=1, iterations=1)

    total = len(latencies)
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    runs_per_minute = total / elapsed * 60.0

    payload = {
        "tenants": TENANTS,
        "submissions": total,
        "submit_p50_seconds": round(p50, 5),
        "submit_p99_seconds": round(p99, 5),
        "submit_mean_seconds": round(statistics.fmean(latencies), 5),
        "submit_max_seconds": round(max(latencies), 5),
        "runs_per_minute": round(runs_per_minute, 1),
        "p99_budget_seconds": P99_BUDGET_SECONDS,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Service front door — {TENANTS} tenants, {total} submissions")
    print(f"  submit p50  {p50 * 1000:.2f} ms")
    print(f"  submit p99  {p99 * 1000:.2f} ms")
    print(f"  throughput  {runs_per_minute:.0f} runs/minute")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert p99 <= P99_BUDGET_SECONDS, (
            f"submit p99 {p99:.4f}s exceeds the {P99_BUDGET_SECONDS}s "
            f"budget — the service front door got heavier"
        )
