"""Results-store throughput and query latency, to ``BENCH_db.json``.

Two numbers the SQLite migration is accountable for:

* **submit latency under contention** — 8 writer threads, each with its
  own connection to one store, submitting runs concurrently. SQLite's
  write lock serializes the commits (that serialization *is* the
  mutual-exclusion story that replaced the flock sidecar), so the
  p50/p99 here price what a busy service spool pays per terminal
  commit — WAL append plus a ``synchronous=FULL`` fsync, plus lock
  waits. The p99 gate asserts a commit stays under
  ``P99_BUDGET_SECONDS`` even with 7 rivals; going over means the
  commit path got heavier or the busy handler started thrashing.
* **canned-query latency on a 500-run store** — ``top``, ``trend`` and
  ``regressions`` against 1500 job rows. These ride the
  platform/algorithm/dataset indexes; whole milliseconds here mean an
  index stopped matching a query's WHERE clause.

The gate is skipped when ``GRAPHALYTICS_SKIP_OVERHEAD_CHECK`` is set
(shared CI hardware can stall arbitrarily).
"""

import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro.resultsdb import queries
from repro.resultsdb.store import ResultsStore

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_db.json"

WRITERS = 8
SUBMITS_PER_WRITER = 12
STORE_RUNS = 500
JOBS_PER_RUN = 3
P99_BUDGET_SECONDS = 0.75

_PLATFORMS = ("GraphMat", "Giraph", "PGX.D", "PowerGraph")


def _record(platform, algorithm, index):
    return {
        "platform": platform,
        "algorithm": algorithm,
        "dataset": "D300",
        "machines": 1,
        "threads": 32,
        "status": "succeeded",
        "run_index": 0,
        "modeled_processing_time": 0.2 + (index % 17) * 0.01,
        "modeled_makespan": 1.0,
        "sla_compliant": True,
        "validated": True,
    }


def _metadata(run_id):
    return {
        "run_id": run_id,
        "system_under_test": "bench",
        "submitter": "",
        "description": "",
    }


def _concurrent_submits(path):
    """8 writers, own connections, one store: per-submit latencies."""
    barrier = threading.Barrier(WRITERS)
    latencies = []
    lock = threading.Lock()

    def writer(writer_id):
        with ResultsStore(path) as store:
            barrier.wait()
            mine = []
            for index in range(SUBMITS_PER_WRITER):
                records = [
                    _record("GraphMat", "bfs", index),
                    _record("Giraph", "pr", index),
                ]
                t0 = time.perf_counter()
                store.submit_run(
                    _metadata(f"run-w{writer_id}-{index:03d}"), records
                )
                mine.append(time.perf_counter() - t0)
            with lock:
                latencies.extend(mine)

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(WRITERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, time.perf_counter() - started


def _build_query_store(path):
    """500 runs x 3 jobs in one transaction (the import path's shape)."""
    payloads = []
    for run in range(STORE_RUNS):
        results = [
            _record(_PLATFORMS[(run + j) % len(_PLATFORMS)],
                    ("bfs", "pr", "wcc")[j], run)
            for j in range(JOBS_PER_RUN)
        ]
        payloads.append(
            {"metadata": _metadata(f"run-{run:04d}"), "results": results}
        )
    with ResultsStore(path) as store:
        store.submit_payloads(payloads)
    return path


def _time_query(fn, repeats=20):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.fmean(samples)


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_store_throughput_and_query_latency(benchmark, tmp_path):
    latencies, elapsed = benchmark.pedantic(
        lambda: _concurrent_submits(tmp_path / "contended.db"),
        rounds=1, iterations=1,
    )
    total = len(latencies)
    assert total == WRITERS * SUBMITS_PER_WRITER
    with ResultsStore(tmp_path / "contended.db") as store:
        assert store.stats()["runs"] == total  # no lost updates

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    query_store = _build_query_store(tmp_path / "big.db")
    with ResultsStore(query_store) as store:
        assert store.stats()["jobs"] == STORE_RUNS * JOBS_PER_RUN
        top_s = _time_query(lambda: queries.top(store, "bfs", "D300"))
        trend_s = _time_query(
            lambda: queries.trend(store, "GraphMat", "bfs", "D300")
        )
        regress_s = _time_query(
            lambda: queries.regressions(store, "run-0000", "run-0499")
        )

    payload = {
        "writers": WRITERS,
        "submissions": total,
        "submit_p50_seconds": round(p50, 5),
        "submit_p99_seconds": round(p99, 5),
        "submit_mean_seconds": round(statistics.fmean(latencies), 5),
        "submits_per_second": round(total / elapsed, 1),
        "query_store_runs": STORE_RUNS,
        "query_store_jobs": STORE_RUNS * JOBS_PER_RUN,
        "top_mean_seconds": round(top_s, 6),
        "trend_mean_seconds": round(trend_s, 6),
        "regressions_mean_seconds": round(regress_s, 6),
        "p99_budget_seconds": P99_BUDGET_SECONDS,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Results store — {WRITERS} writers, {total} submits")
    print(f"  submit p50    {p50 * 1000:.2f} ms")
    print(f"  submit p99    {p99 * 1000:.2f} ms")
    print(f"  throughput    {total / elapsed:.0f} submits/s")
    print(f"Canned queries — {STORE_RUNS} runs, {STORE_RUNS * JOBS_PER_RUN} jobs")
    print(f"  top           {top_s * 1000:.2f} ms")
    print(f"  trend         {trend_s * 1000:.2f} ms")
    print(f"  regressions   {regress_s * 1000:.2f} ms")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert p99 <= P99_BUDGET_SECONDS, (
            f"submit p99 {p99:.4f}s exceeds the {P99_BUDGET_SECONDS}s "
            f"budget under {WRITERS} concurrent writers — the commit "
            f"path got heavier"
        )
