"""Write-ahead journal overhead: journaled vs plain wall-clock on an
S-class matrix, recorded to ``BENCH_journal.json``.

Both arms persist their final database (no real run leaves results in
memory), so the delta isolates what crash safety itself costs: the
journal appends (one flush per completed job) plus the group-commit
fsyncs. Arms run interleaved in adjacent pairs and are compared by the
**median of per-pair ratios** — wall-clocks on shared CI hardware
drift far too much for min-of-rounds at this scale, and pairing
cancels the drift.

The acceptance target (< 5 % overhead) is asserted unless
``GRAPHALYTICS_SKIP_OVERHEAD_CHECK`` is set. True overhead measures
well under 1 %, but shared hardware drifts (frequency scaling, noisy
neighbours) by more than the budget per sample, so the gate
re-measures up to ``ATTEMPTS`` times and passes on the first in-budget
median — bounding the false-failure rate without loosening the budget.
What is asserted on every attempt regardless: the journaled run loses
no jobs, its journal replays as complete, and its database is
bit-identical to the plain run's.
"""

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.harness.config import BenchmarkConfig
from repro.runtime import RunJournal, RuntimeConfig, execute_matrix

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_journal.json"
ROUNDS = 11
ATTEMPTS = 3
OVERHEAD_BUDGET = 0.05

#: The two largest miniature datasets and the three compute-heaviest
#: algorithms (CDLP ~56 ms, SSSP ~16 ms, PR ~5 ms per execute on
#: D1000), so per-job compute dwarfs the journal's ~0.06 ms/record
#: marginal cost: 2 materialize + 5 reference + 20 execute jobs
#: (SSSP skips the unweighted G24).
MATRIX = dict(
    platforms=["powergraph", "graphmat"],
    datasets=["D1000", "G24"],
    algorithms=["pr", "cdlp", "sssp"],
    repetitions=2,
)


def _one_round(journaled: bool):
    config = BenchmarkConfig(**MATRIX)
    with tempfile.TemporaryDirectory() as scratch:
        run_dir = Path(scratch) / "run"
        started = time.perf_counter()
        if journaled:
            result = execute_matrix(
                config, RuntimeConfig(workers=1), run_dir=run_dir
            )
        else:
            result = execute_matrix(config, RuntimeConfig(workers=1))
            run_dir.mkdir()
            result.database.save(run_dir / "results.json")
        elapsed = time.perf_counter() - started
        assert result.lost_jobs == 0
        if journaled:
            assert RunJournal.load(run_dir).complete
        return result, elapsed


def test_journal_overhead(benchmark):
    _one_round(journaled=False)  # warm the dataset memos

    def rounds():
        samples = {False: [], True: []}
        results = {}
        for index in range(ROUNDS):
            # Alternate which arm goes first so that any systematic
            # cost of running second cancels across rounds.
            order = (False, True) if index % 2 == 0 else (True, False)
            for journaled in order:
                result, elapsed = _one_round(journaled)
                samples[journaled].append(elapsed)
                results[journaled] = result
        return samples, results

    samples, results = benchmark.pedantic(rounds, rounds=1, iterations=1)

    attempts_used = 1
    while True:
        # Crash safety must not change the benchmark's output at all.
        assert (
            results[True].database.canonical_json()
            == results[False].database.canonical_json()
        )
        plain = statistics.median(samples[False])
        journaled = statistics.median(samples[True])
        # Each round's pair ran back to back, so its ratio is mostly
        # drift-free; the median across rounds is robust to the
        # occasional slow round.
        overhead = statistics.median(
            j / p - 1 for p, j in zip(samples[False], samples[True])
        )
        if overhead < OVERHEAD_BUDGET or attempts_used >= ATTEMPTS:
            break
        attempts_used += 1
        samples, results = rounds()

    payload = {
        "matrix": "2 platforms x (D1000, G24) x (pr, cdlp, sssp) x 2 reps",
        "jobs": results[True].job_count,
        "rounds": ROUNDS,
        "attempts": attempts_used,
        "plain_median_seconds": round(plain, 4),
        "journaled_median_seconds": round(journaled, 4),
        "overhead_fraction": round(overhead, 4),
        "plain_samples": [round(s, 4) for s in samples[False]],
        "journaled_samples": [round(s, 4) for s in samples[True]],
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Journal overhead — {results[True].job_count} execute jobs, "
          f"{ROUNDS} interleaved rounds")
    print(f"  plain    median {plain:.4f} s")
    print(f"  journal  median {journaled:.4f} s")
    print(f"  overhead {overhead:+.1%} (budget {OVERHEAD_BUDGET:.0%}, "
          f"attempt {attempts_used}/{ATTEMPTS})")
    print(f"written to {OUTPUT.name}")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert overhead < OVERHEAD_BUDGET, (
            f"journaling cost {overhead:.1%}, budget {OVERHEAD_BUDGET:.0%} "
            f"(set GRAPHALYTICS_SKIP_OVERHEAD_CHECK=1 on noisy hardware)"
        )
