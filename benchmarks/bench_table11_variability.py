"""Table 11: variability — Tproc mean and CV over 10 repeated runs.

S config: BFS on D300, one machine, all six platforms.
D config: BFS on D1000, 16 machines, distributed platforms only.
Reproduces the §4.7 findings: all CVs at most ~10%; PowerGraph least
variable; GraphMat and PGX.D most variable but with tiny absolute
deviations.
"""

from paper import PAPER_TABLE11, PLATFORM_LABELS, print_table

from repro.harness.experiments import get_experiment


def test_table11_variability(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("variability").run(runner),
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in report.rows:
        if row["mean"] is None:
            continue
        paper_mean, paper_cv = PAPER_TABLE11[row["config"]][row["platform"]]
        rows.append(
            (
                row["config"],
                PLATFORM_LABELS[row["platform"]],
                row["mean"], paper_mean,
                100 * row["cv"], 100 * paper_cv,
            )
        )
        # Sampled CV over n=10 fluctuates; the paper's headline bound is
        # "CV of at most 10%" — allow sampling noise above it.
        assert row["cv"] < 0.20
    print_table(
        "Table 11: Tproc mean and CV (n=10)",
        ["cfg", "platform", "mean", "paper", "cv%", "paper%"],
        rows,
    )

    # S-config means reproduce Table 8/11 closely.
    for row in report.rows:
        if row["config"] == "S" and row["mean"] is not None:
            paper_mean, _ = PAPER_TABLE11["S"][row["platform"]]
            assert 0.5 * paper_mean <= row["mean"] <= 1.6 * paper_mean

    # OpenG has no distributed configuration.
    assert all(r["platform"] != "openg" for r in report.rows_for(config="D"))
