"""Span-tracing overhead: traced vs untraced wall-clock on an S-class
matrix, recorded to ``BENCH_trace.json``.

Both arms execute the identical matrix; the traced arm runs under a
normal :class:`~repro.trace.Tracer`, the untraced arm under a disabled
one (``Tracer(enabled=False)`` — every span/counter call
short-circuits without reading the clock). The delta therefore
isolates what instrumentation itself costs: span allocation, context
stacking, and buffer appends across every engine iteration, driver
sub-phase, and scheduler transition. Arms run interleaved in adjacent
pairs and are compared by the **median of per-pair ratios**, exactly
like ``bench_journal_overhead.py`` — pairing cancels the wall-clock
drift of shared CI hardware.

The acceptance target (< 5 % overhead) is asserted unless
``GRAPHALYTICS_SKIP_OVERHEAD_CHECK`` is set; the gate re-measures up
to ``ATTEMPTS`` times and passes on the first in-budget median. What
is asserted on every attempt regardless: neither arm loses jobs, and
the two arms' result databases are bit-identical — tracing must
observe the benchmark, never change it.
"""

import json
import os
import statistics
from pathlib import Path

from repro.harness.config import BenchmarkConfig
from repro.runtime import RuntimeConfig, execute_matrix
from repro.trace import MonotonicClock, Tracer, use_tracer

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_trace.json"
ROUNDS = 11
ATTEMPTS = 3
OVERHEAD_BUDGET = 0.05

#: Compute-heavy jobs (same rationale as the journal benchmark): the
#: per-job kernel work dwarfs the per-span bookkeeping, as in any
#: realistically sized run.
MATRIX = dict(
    platforms=["powergraph", "graphmat"],
    datasets=["D1000", "G24"],
    algorithms=["pr", "cdlp", "sssp"],
    repetitions=2,
)

_WALL = MonotonicClock()


def _one_round(traced: bool):
    config = BenchmarkConfig(**MATRIX)
    tracer = Tracer(enabled=traced)
    started = _WALL.now()
    with use_tracer(tracer):
        result = execute_matrix(config, RuntimeConfig(workers=1))
    elapsed = _WALL.now() - started
    assert result.lost_jobs == 0
    if traced:
        assert tracer.finished_spans()  # the traced arm actually traced
    else:
        assert tracer.finished_spans() == []
    return result, elapsed


def test_trace_overhead(benchmark):
    _one_round(traced=False)  # warm the dataset memos

    def rounds():
        samples = {False: [], True: []}
        results = {}
        for index in range(ROUNDS):
            # Alternate which arm goes first so that any systematic
            # cost of running second cancels across rounds.
            order = (False, True) if index % 2 == 0 else (True, False)
            for traced in order:
                result, elapsed = _one_round(traced)
                samples[traced].append(elapsed)
                results[traced] = result
        return samples, results

    samples, results = benchmark.pedantic(rounds, rounds=1, iterations=1)

    attempts_used = 1
    while True:
        # Instrumentation must not change the benchmark's output at all.
        assert (
            results[True].database.canonical_json()
            == results[False].database.canonical_json()
        )
        untraced = statistics.median(samples[False])
        traced = statistics.median(samples[True])
        # Each round's pair ran back to back, so its ratio is mostly
        # drift-free; the median across rounds is robust to the
        # occasional slow round.
        overhead = statistics.median(
            t / u - 1 for u, t in zip(samples[False], samples[True])
        )
        if overhead < OVERHEAD_BUDGET or attempts_used >= ATTEMPTS:
            break
        attempts_used += 1
        samples, results = rounds()

    payload = {
        "matrix": "2 platforms x (D1000, G24) x (pr, cdlp, sssp) x 2 reps",
        "jobs": results[True].job_count,
        "rounds": ROUNDS,
        "attempts": attempts_used,
        "untraced_median_seconds": round(untraced, 4),
        "traced_median_seconds": round(traced, 4),
        "overhead_fraction": round(overhead, 4),
        "untraced_samples": [round(s, 4) for s in samples[False]],
        "traced_samples": [round(s, 4) for s in samples[True]],
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Trace overhead — {results[True].job_count} execute jobs, "
          f"{ROUNDS} interleaved rounds")
    print(f"  untraced median {untraced:.4f} s")
    print(f"  traced   median {traced:.4f} s")
    print(f"  overhead {overhead:+.1%} (budget {OVERHEAD_BUDGET:.0%}, "
          f"attempt {attempts_used}/{ATTEMPTS})")
    print(f"written to {OUTPUT.name}")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert overhead < OVERHEAD_BUDGET, (
            f"tracing cost {overhead:.1%}, budget {OVERHEAD_BUDGET:.0%} "
            f"(set GRAPHALYTICS_SKIP_OVERHEAD_CHECK=1 on noisy hardware)"
        )
