"""Wall-clock benchmarks of the reference algorithm kernels.

These time the *real* execution of the six reference implementations on
the G24 miniature (the largest miniature exercised by the baseline
experiments) — the numbers every simulated platform's "measured" column
is built from.
"""

import pytest

from repro.algorithms.bfs import breadth_first_search
from repro.algorithms.cdlp import community_detection_lp
from repro.algorithms.lcc import local_clustering_coefficient
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import single_source_shortest_paths
from repro.algorithms.wcc import weakly_connected_components
from repro.harness.datasets import get_dataset


@pytest.fixture(scope="module")
def g24():
    return get_dataset("G24").materialize()


@pytest.fixture(scope="module")
def weighted_mini():
    return get_dataset("R4").materialize()


@pytest.fixture(scope="module")
def source(g24):
    return int(get_dataset("G24").algorithm_parameters("bfs")["source_vertex"])


def test_kernel_bfs(benchmark, g24, source):
    depths = benchmark(breadth_first_search, g24, source)
    assert depths[g24.index_of(source)] == 0


def test_kernel_pagerank(benchmark, g24):
    ranks = benchmark(pagerank, g24, iterations=30)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-9)


def test_kernel_wcc(benchmark, g24):
    labels = benchmark(weakly_connected_components, g24)
    assert len(labels) == g24.num_vertices


def test_kernel_cdlp(benchmark, g24):
    labels = benchmark(community_detection_lp, g24, iterations=10)
    assert len(labels) == g24.num_vertices


def test_kernel_lcc(benchmark, weighted_mini):
    values = benchmark(local_clustering_coefficient, weighted_mini)
    assert values.max() <= 1.0


def test_kernel_sssp(benchmark, weighted_mini):
    dataset = get_dataset("R4")
    src = int(dataset.algorithm_parameters("sssp")["source_vertex"])
    dist = benchmark(single_source_shortest_paths, weighted_mini, src)
    assert dist[weighted_mini.index_of(src)] == 0.0
