"""The renewal process (paper §2.4, requirement R4).

Not a numbered table, but a core contribution: "Graphalytics also
specifies a novel process for renewing its core parameters, to withstand
the test of time." This bench drives one full renewal round from the
modeled stress-test data: re-running the two-stage selection (stable
with the paper's surveys) and recalibrating class L from the best
single-machine BFS makespans.
"""

from paper import print_table

from repro.harness.datasets import DATASETS
from repro.harness.renewal import RenewalProcess
from repro.harness.survey import SurveyClass
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import PLATFORMS, create_driver

CORE = ("bfs", "pr", "wcc", "cdlp", "lcc", "sssp")


def _best_bfs_makespans():
    """Best (min across platforms) single-machine BFS makespan per scale."""
    makespans = {}
    for ds in DATASETS.values():
        best = None
        for name in PLATFORMS:
            model = create_driver(name).model
            resources = ClusterResources()
            if not model.fits_in_memory("bfs", ds.profile, resources):
                continue
            value = model.makespan("bfs", ds.profile, resources)
            best = value if best is None else min(best, value)
        if best is not None:
            makespans[ds.profile.scale] = min(
                best, makespans.get(ds.profile.scale, float("inf"))
            )
    return makespans


def test_renewal_round(benchmark):
    def renew():
        process = RenewalProcess(CORE, version=1)
        return process.renew(_best_bfs_makespans())

    decision = benchmark(renew)
    print_table(
        "Renewal round (v1 -> v2)",
        ["field", "value"],
        [
            ("algorithms", ", ".join(a.upper() for a in decision.algorithms)),
            ("added", ", ".join(decision.added_algorithms) or "-"),
            ("obsoleted", ", ".join(decision.obsoleted_algorithms) or "-"),
            ("reference class", decision.reference_class),
        ],
    )
    # With the paper's own surveys the core set is stable...
    assert set(decision.algorithms) == set(CORE)
    assert decision.added_algorithms == ()
    # ...and 2016-era platforms push the hour-feasible class to XL.
    assert decision.reference_class in ("L", "XL")


def test_renewal_with_shifted_survey(benchmark):
    """A future survey round where machine-learning-on-graphs rises and
    label propagation fades: the process adds/retires algorithms."""
    future_unweighted = (
        SurveyClass("Statistics", 30, ("pr", "lcc")),
        SurveyClass("Traversal", 50, ("bfs",)),
        SurveyClass("Embeddings", 40, ("node2vec",)),
        SurveyClass("Components", 8, ("wcc", "cdlp")),  # faded below 10%
        SurveyClass("Other", 14),
    )
    future_weighted = (
        SurveyClass("Distances/Paths", 20, ("sssp",)),
        SurveyClass("Other", 20),
    )

    def renew():
        process = RenewalProcess(CORE, version=2)
        return process.renew(
            {8.5: 900.0},
            unweighted_survey=future_unweighted,
            weighted_survey=future_weighted,
        )

    decision = benchmark(renew)
    print_table(
        "Hypothetical future renewal (v2 -> v3)",
        ["field", "value"],
        [
            ("added", ", ".join(decision.added_algorithms)),
            ("obsoleted", ", ".join(decision.obsoleted_algorithms)),
            ("reference class", decision.reference_class),
        ],
    )
    assert "node2vec" in decision.added_algorithms
    assert "wcc" in decision.obsoleted_algorithms
    assert "cdlp" in decision.obsoleted_algorithms
