"""Figure 2: Datagen graphs with tunable average clustering coefficient.

The paper shows two Datagen graphs with target CC 0.05 and 0.3, both
exhibiting community structure (detected with a community algorithm),
with the 0.3 graph visibly better defined. We regenerate both graphs,
measure their average LCC, and quantify the community quality with the
modularity of the CDLP partition.
"""

import numpy as np
from paper import print_table

from repro.algorithms.cdlp import community_detection_lp
from repro.datagen.generator import generate
from repro.graph.stats import compute_statistics

TARGETS = (0.05, 0.3)
PERSONS = 600
MEAN_DEGREE = 16


def _modularity(graph, labels) -> float:
    """Newman modularity of a labeling (undirected)."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    degrees = graph.degrees().astype(np.float64)
    internal = sum(
        1 for s, d in zip(graph.edge_src, graph.edge_dst) if labels[s] == labels[d]
    )
    communities = {}
    for v in range(graph.num_vertices):
        communities.setdefault(labels[v], []).append(v)
    expected = sum(
        (degrees[np.array(members)].sum() / (2 * m)) ** 2
        for members in communities.values()
    )
    return internal / m - expected


def _generate_and_measure(target):
    graph = generate(
        PERSONS,
        mean_degree=MEAN_DEGREE,
        target_clustering_coefficient=target,
        seed=7,
    )
    stats = compute_statistics(graph)
    labels = community_detection_lp(graph, iterations=10)
    return stats, _modularity(graph, labels), len(np.unique(labels))


def test_figure02_low_target(benchmark):
    stats, modularity, communities = benchmark.pedantic(
        lambda: _generate_and_measure(0.05), rounds=2, iterations=1
    )
    print_table(
        "Figure 2 (left): Datagen with target CC 0.05",
        ["target", "measured cc", "modularity", "#communities"],
        [(0.05, stats.mean_clustering_coefficient, modularity, communities)],
    )
    assert stats.mean_clustering_coefficient < 0.15


def test_figure02_high_target(benchmark):
    stats, modularity, communities = benchmark.pedantic(
        lambda: _generate_and_measure(0.3), rounds=2, iterations=1
    )
    print_table(
        "Figure 2 (right): Datagen with target CC 0.3",
        ["target", "measured cc", "modularity", "#communities"],
        [(0.3, stats.mean_clustering_coefficient, modularity, communities)],
    )
    assert 0.2 <= stats.mean_clustering_coefficient <= 0.45


def test_figure02_contrast(benchmark):
    """The paper's visual finding: higher target -> better-defined
    communities. Both graphs show community structure; the 0.3 one is
    'clearly better defined'."""

    def measure_both():
        return {t: _generate_and_measure(t) for t in TARGETS}

    results = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    low_stats, low_mod, _ = results[0.05]
    high_stats, high_mod, _ = results[0.3]
    print_table(
        "Figure 2: contrast",
        ["target", "measured cc", "modularity"],
        [
            (0.05, low_stats.mean_clustering_coefficient, low_mod),
            (0.3, high_stats.mean_clustering_coefficient, high_mod),
        ],
    )
    assert high_stats.mean_clustering_coefficient > 2 * (
        low_stats.mean_clustering_coefficient
    )
    assert high_mod > 0.2  # clear community structure
