"""Table 6: the experiment catalog driven by the harness."""

from paper import print_table

from repro.harness.experiments import EXPERIMENTS

PAPER_TABLE6 = [
    ("4.1", "Baseline", ("bfs", "pr"), 1),
    ("4.2", "Baseline", ("bfs", "pr", "wcc", "cdlp", "lcc", "sssp"), 1),
    ("4.3", "Scalability", ("bfs", "pr"), 1),
    ("4.4", "Scalability", ("bfs", "pr"), 16),
    ("4.5", "Scalability", ("bfs", "pr"), 16),
    ("4.6", "Robustness", ("bfs",), 1),
    ("4.7", "Robustness", ("bfs",), 16),
    ("4.8", "Self-test", (), 16),
]


def test_table06_catalog(benchmark):
    experiments = benchmark(lambda: list(EXPERIMENTS.values()))
    rows = []
    for exp, (section, category, algorithms, max_nodes) in zip(
        experiments, PAPER_TABLE6
    ):
        assert exp.section == section
        assert exp.category == category
        assert exp.algorithms == algorithms
        assert max(exp.nodes) == max_nodes
        rows.append(
            (
                exp.section,
                exp.category,
                exp.title,
                ",".join(a.upper() for a in exp.algorithms) or "-",
                "/".join(str(n) for n in exp.nodes),
                ",".join(exp.metrics),
            )
        )
    print_table(
        "Table 6: experiments used for benchmarks",
        ["sec", "category", "experiment", "algorithms", "#nodes", "metrics"],
        rows,
    )
