"""Figure 5: EPS and EVPS for BFS across datasets.

Reproduces the §4.1 normalization finding: "Ideally, a platform's
performance should be directly related to the size of the graph, thus
the normalized performance should be close to constant. As evident from
the figure, all platforms show signs of dataset sensitivity."
"""

from paper import PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment


def test_figure05_throughput(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("dataset-variety").run(runner),
        rounds=1,
        iterations=1,
    )
    for metric in ("eps", "evps"):
        datasets = []
        for row in report.rows:
            if row["algorithm"] == "bfs" and row["dataset"] not in datasets:
                datasets.append(row["dataset"])
        rows = []
        for dataset in datasets:
            cells = [dataset]
            for key in PLATFORM_NAMES:
                match = [
                    r for r in report.rows
                    if r["algorithm"] == "bfs"
                    and r["dataset"] == dataset
                    and r["platform"] == PLATFORM_NAMES[key]
                ]
                cells.append(match[0][metric] if match else None)
            rows.append(cells)
        print_table(
            f"Figure 5 ({metric.upper()}) for BFS",
            ["dataset"] + list(PLATFORM_LABELS.values()),
            rows,
        )

    # Dataset sensitivity: per platform, EPS varies by > 2x across datasets.
    for key, name in PLATFORM_NAMES.items():
        eps = [
            r["eps"]
            for r in report.rows
            if r["algorithm"] == "bfs"
            and r["platform"] == name
            and r["eps"]
        ]
        assert max(eps) > 2 * min(eps), f"{name} shows no dataset sensitivity"

    # EVPS > EPS always (it adds vertices to the numerator).
    for row in report.rows:
        if row["eps"] and row["evps"]:
            assert row["evps"] > row["eps"]
