"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper and
prints a paper-vs-reproduced comparison. A session-scoped runner shares
dataset materializations and uploads across benchmarks.
"""

import pytest

from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner


@pytest.fixture(scope="session")
def runner():
    return BenchmarkRunner(BenchmarkConfig(seed=0))


def pytest_collection_modifyitems(items):
    """Keep benches in file order (tables first, then figures)."""
    items.sort(key=lambda item: item.nodeid)
