"""Runtime scaling: serial vs 2- and 4-worker wall-clock on the example
matrix, recorded to ``BENCH_runtime.json``.

The acceptance target (>= 1.5x on a 4-core machine) is only *checkable*
on multi-core hardware; on fewer cores this bench still records the
numbers plus the machine's core count so the JSON is interpretable. What
is asserted everywhere: the parallel runs lose no jobs and merge to the
same canonical database as the serial run, and repeated datasets hit
the cache.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

from repro.runtime import RuntimeConfig, example_matrix, execute_matrix

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"
WORKER_COUNTS = (1, 2, 4)


def _timed_run(workers: int):
    config = example_matrix()
    started = time.perf_counter()
    result = execute_matrix(config, RuntimeConfig(workers=workers))
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_runtime_scaling(benchmark):
    runs = benchmark.pedantic(
        lambda: {w: _timed_run(w) for w in WORKER_COUNTS},
        rounds=1,
        iterations=1,
    )
    serial_result, serial_elapsed = runs[1]
    canonical = serial_result.database.canonical_json()

    payload = {
        "matrix": "example_matrix (2 platforms x 2 datasets x 3 algorithms x 2 reps)",
        "jobs": serial_result.job_count,
        "cpu_count": multiprocessing.cpu_count(),
        "workers": {},
    }
    rows = []
    for workers, (result, elapsed) in runs.items():
        assert result.lost_jobs == 0
        assert result.database.canonical_json() == canonical
        speedup = serial_elapsed / elapsed if elapsed > 0 else 0.0
        payload["workers"][str(workers)] = {
            "mode": result.mode,
            "wall_clock_seconds": round(elapsed, 4),
            "speedup_vs_serial": round(speedup, 3),
            "cache": result.cache_stats.as_dict(),
            "cache_hits": result.cache_stats.hits,
        }
        rows.append((workers, result.mode, elapsed, speedup))
        # At least one cache hit per repeated dataset, on every config.
        assert result.cache_stats.hits >= 2

    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print("Runtime scaling — example matrix "
          f"({serial_result.job_count} jobs, {payload['cpu_count']} cores)")
    print(f"{'workers':>8s} {'mode':>7s} {'wall s':>9s} {'speedup':>8s}")
    for workers, mode, elapsed, speedup in rows:
        print(f"{workers:>8d} {mode:>7s} {elapsed:>9.3f} {speedup:>7.2f}x")
    print(f"written to {OUTPUT.name}")

    if payload["cpu_count"] >= 4 and not os.environ.get(
        "GRAPHALYTICS_SKIP_SPEEDUP_CHECK"
    ):
        assert payload["workers"]["4"]["speedup_vs_serial"] >= 1.5
