"""Requirement R1: one abstract algorithm, three programming models.

The paper's platforms span vertex-centric (Giraph), gather-apply-scatter
(PowerGraph), and sparse-matrix (GraphMat) models; Graphalytics defines
algorithms abstractly so all can compete (§2.2.3). This bench runs BFS
and PageRank through all three miniature engines plus the reference
kernel, asserts output equivalence, and reports the measured cost of
each model's abstraction on this machine.
"""

import numpy as np
from paper import print_table

from repro.algorithms.bfs import breadth_first_search
from repro.algorithms.pagerank import pagerank
from repro.engines import gas, pregel, spmv
from repro.harness.datasets import get_dataset

DATASET = "G22"


def _workload():
    dataset = get_dataset(DATASET)
    graph = dataset.materialize()
    source = int(dataset.algorithm_parameters("bfs")["source_vertex"])
    return graph, source


def test_bfs_across_models(benchmark):
    graph, source = _workload()
    reference = breadth_first_search(graph, source)

    import time

    def run_all():
        times = {}
        outputs = {}
        for name, runner in (
            ("pregel", lambda: pregel.run_bfs(graph, source)),
            ("gas", lambda: gas.run_bfs(graph, source)),
            ("spmv", lambda: spmv.run_bfs(graph, source)),
            ("reference", lambda: breadth_first_search(graph, source)),
        ):
            started = time.perf_counter()
            outputs[name] = runner()
            times[name] = time.perf_counter() - started
        return times, outputs

    times, outputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, output in outputs.items():
        assert np.array_equal(output, reference), name
    print_table(
        f"BFS on {DATASET} miniature across programming models",
        ["model", "seconds", "equivalent"],
        [(name, times[name], "yes") for name in times],
    )


def test_pagerank_across_models(benchmark):
    graph, _ = _workload()
    reference = pagerank(graph, iterations=15)

    import time

    def run_all():
        times = {}
        outputs = {}
        for name, runner in (
            ("pregel", lambda: pregel.run_pagerank(graph, 15)),
            ("gas", lambda: gas.run_pagerank(graph, 15)),
            ("spmv", lambda: spmv.run_pagerank(graph, 15)),
            ("reference", lambda: pagerank(graph, iterations=15)),
        ):
            started = time.perf_counter()
            outputs[name] = runner()
            times[name] = time.perf_counter() - started
        return times, outputs

    times, outputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, output in outputs.items():
        assert np.allclose(output, reference, rtol=1e-9), name
    print_table(
        f"PageRank (15 iterations) on {DATASET} miniature",
        ["model", "seconds", "equivalent"],
        [(name, times[name], "yes") for name in times],
    )
    # The SpMV formulation vectorizes and should clearly beat the
    # per-vertex models — GraphMat's §3.1 performance argument, measured.
    assert times["spmv"] < times["pregel"]
    assert times["spmv"] < times["gas"]
