"""Figure 6: algorithm variety — all six algorithms on R4(S) and D300(L).

Reproduces the §4.2 key findings: relative performance similar for BFS,
WCC, PR, SSSP; LCC completes only on OpenG and PowerGraph; PGX.D has no
LCC (NA); GraphX cannot complete CDLP; OpenG best on CDLP; PGX.D's WCC
degrades on the many-component graph.
"""

from paper import PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment


def test_figure06_algorithm_variety(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("algorithm-variety").run(runner),
        rounds=1,
        iterations=1,
    )
    for dataset in ("R4", "D300"):
        rows = []
        for algorithm in ("bfs", "wcc", "cdlp", "pr", "lcc", "sssp"):
            cells = [algorithm]
            for key in PLATFORM_NAMES:
                match = [
                    r for r in report.rows
                    if r["dataset"] == dataset
                    and r["algorithm"] == algorithm
                    and r["platform"] in (key, PLATFORM_NAMES[key])
                ]
                if not match:
                    cells.append(None)
                elif match[0]["status"] != "ok":
                    cells.append(match[0]["status"])
                else:
                    cells.append(match[0]["tproc"])
            rows.append(cells)
        print_table(
            f"Figure 6 ({dataset}): Tproc in seconds (F=failed, NA=missing)",
            ["alg"] + list(PLATFORM_LABELS.values()),
            rows,
        )

    def status(platform, algorithm, dataset):
        return report.rows_for(
            platform=platform, algorithm=algorithm, dataset=dataset
        )[0]["status"]

    for dataset in ("R4", "D300"):
        # LCC: only OpenG and PowerGraph complete within the SLA.
        assert status("OpenG", "lcc", dataset) == "ok"
        assert status("PowerGraph", "lcc", dataset) == "ok"
        assert status("Giraph", "lcc", dataset) == "F"
        assert status("GraphX", "lcc", dataset) == "F"
        assert status("GraphMat", "lcc", dataset) == "F"
        assert status("PGX.D", "lcc", dataset) == "NA"
        # GraphX fails CDLP even on R4(S).
        assert status("GraphX", "cdlp", dataset) == "F"

    # OpenG performs best on CDLP.
    cdlp = {
        r["platform"]: r["tproc"]
        for r in report.rows
        if r["algorithm"] == "cdlp" and r["status"] == "ok"
    }
    assert min(cdlp, key=cdlp.get) == "OpenG"

    # GraphMat uses the D backend for SSSP (not supported in S).
    sssp_backends = {
        r["backend"]
        for r in report.rows
        if r["algorithm"] == "sssp" and r["platform"] == "GraphMat"
    }
    assert sssp_backends == {"D"}
