"""Table 5: the selected graph-analysis platform roster."""

from paper import print_table

from repro.platforms.registry import PLATFORMS, create_driver

PAPER_TABLE5 = [
    ("giraph", "C, D", "Giraph", "Apache", "Java", "Pregel", "1.1.0"),
    ("graphx", "C, D", "GraphX", "Apache", "Scala", "Spark", "1.6.0"),
    ("powergraph", "C, D", "PowerGraph", "CMU", "C++", "GAS", "2.2"),
    ("graphmat", "I, D", "GraphMat", "Intel", "C++", "SpMV", "Feb '16"),
    ("openg", "I, S", "OpenG", "Georgia Tech", "C++", "Native code", "Feb '16"),
    ("pgxd", "I, D", "PGX.D", "Oracle", "C++", "Push-pull", "Feb '16"),
]


def test_table05_roster(benchmark):
    infos = benchmark(lambda: [(k, v[0]) for k, v in PLATFORMS.items()])
    rows = []
    for (key, info), expected in zip(infos, PAPER_TABLE5):
        _, type_code, name, vendor, lang, model, version = expected
        assert key == expected[0]
        assert info.type_code == type_code
        assert (info.name, info.vendor, info.language) == (name, vendor, lang)
        assert (info.programming_model, info.version) == (model, version)
        rows.append((type_code, name, vendor, lang, model, version))
    print_table(
        "Table 5: selected platforms",
        ["type", "name", "vendor", "lang", "model", "version"],
        rows,
    )


def test_table05_driver_instantiation(benchmark):
    drivers = benchmark(lambda: [create_driver(name) for name in PLATFORMS])
    assert len(drivers) == 6
    # Capability quirks from the paper.
    by_name = {d.name: d for d in drivers}
    assert not by_name["PGX.D"].supports("lcc")
    assert "cdlp" in by_name["GraphX"].crash_algorithms
