"""Figure 4: dataset variety — Tproc for BFS and PR, all datasets <= L.

Reproduces the §4.1 key findings:
* GraphMat and PGX.D significantly outperform the competition;
* PowerGraph and OpenG are ~an order of magnitude slower than the leaders;
* Giraph and GraphX are consistently ~two orders of magnitude slower.
"""

from paper import PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment


def test_figure04_dataset_variety(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("dataset-variety").run(runner),
        rounds=1,
        iterations=1,
    )
    for algorithm in ("bfs", "pr"):
        rows = []
        datasets = []
        for row in report.rows:
            if row["algorithm"] == algorithm and row["dataset"] not in datasets:
                datasets.append(row["dataset"])
        for dataset in datasets:
            cells = [dataset]
            for key in PLATFORM_NAMES:
                match = [
                    r for r in report.rows
                    if r["algorithm"] == algorithm
                    and r["dataset"] == dataset
                    and r["platform"] == PLATFORM_NAMES[key]
                ]
                cells.append(match[0]["tproc"] if match else None)
            rows.append(cells)
        print_table(
            f"Figure 4 ({algorithm.upper()}): Tproc in seconds per dataset",
            ["dataset"] + list(PLATFORM_LABELS.values()),
            rows,
        )

    # Key finding assertions on a representative mid-size dataset.
    def tproc(platform, dataset="D300", algorithm="bfs"):
        return report.rows_for(
            platform=platform, dataset=dataset, algorithm=algorithm
        )[0]["tproc"]

    leaders = min(tproc("GraphMat"), tproc("PGX.D"))
    middle = min(tproc("PowerGraph"), tproc("OpenG"))
    jvm = min(tproc("Giraph"), tproc("GraphX"))
    assert middle > 3 * leaders       # "roughly an order of magnitude"
    assert jvm > 25 * leaders         # "two orders of magnitude"
