"""Table 12: related-work requirement coverage matrix."""

from paper import print_table

from repro.harness.related_work import RELATED_WORK, related_work_table


def test_table12_related_work(benchmark):
    rows = benchmark(related_work_table)
    print_table(
        "Table 12: related work (R1-R4 coverage)",
        ["name", "type", "target", "input", "datasets", "algos",
         "scal.tests", "robust", "renewal"],
        [
            (r["name"][:38], r["type"], r["target_structure"], r["input"],
             r["datasets"], r["algorithms"], r["scalability_tests"],
             r["robustness"], r["renewal"])
            for r in rows
        ],
    )
    assert len(rows) == 14
    # The paper's claim: no alternative covers R1-R4.
    this_work = rows[-1]
    assert this_work["robustness"] == "Yes" and this_work["renewal"] == "Yes"
    for other in rows[:-1]:
        assert other["robustness"] == "No"
        assert other["renewal"] == "No"
    # Only this work selects both datasets and algorithms via the
    # two-stage data- and expertise-driven process.
    assert this_work["datasets"] == "2-stage"
    assert all(r["datasets"] != "2-stage" for r in rows[:-1])
    assert RELATED_WORK[-1].scalability_tests == "W/S/V/H"
