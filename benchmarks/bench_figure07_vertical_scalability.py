"""Figure 7 + Table 9: vertical scalability — 1..32 threads on D300(L).

Reproduces the §4.3 findings: all platforms benefit from additional
cores; only PGX.D and GraphMat approach optimal efficiency; most
platforms see little or no gain from Hyper-Threading; the Table 9
maximum speedups.
"""

import pytest
from paper import PAPER_TABLE9, PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment


def test_figure07_and_table09(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("vertical-scalability").run(runner),
        rounds=1,
        iterations=1,
    )
    threads = (1, 2, 4, 8, 16, 32)
    for algorithm in ("bfs", "pr"):
        rows = []
        for key, label in PLATFORM_LABELS.items():
            series = [
                r["tproc"]
                for t in threads
                for r in report.rows
                if r["algorithm"] == algorithm
                and r["threads"] == t
                and r["platform"] == PLATFORM_NAMES[key]
            ]
            rows.append([label] + series)
        print_table(
            f"Figure 7 ({algorithm.upper()}): Tproc vs #threads",
            ["platform"] + [str(t) for t in threads],
            rows,
        )

    # Table 9: max speedups vs the paper.
    rows = []
    for name, label in PLATFORM_LABELS.items():
        speedups = []
        for i, algorithm in enumerate(("bfs", "pr")):
            series = {
                r["threads"]: r["tproc"]
                for r in report.rows
                if r["algorithm"] == algorithm
                and r["platform"] == PLATFORM_NAMES[name]
            }
            s = max(series[1] / series[t] for t in threads)
            speedups.append(s)
            # Jittered runs: allow 25% around Table 9.
            assert s == pytest.approx(PAPER_TABLE9[name][i], rel=0.25)
        rows.append(
            (label, speedups[0], PAPER_TABLE9[name][0],
             speedups[1], PAPER_TABLE9[name][1])
        )
    print_table(
        "Table 9: max vertical speedup (1 -> 32 threads)",
        ["platform", "bfs", "paper", "pr", "paper"],
        rows,
    )
