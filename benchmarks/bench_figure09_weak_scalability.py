"""Figure 9: weak horizontal scalability — G22@1 .. G26@16 machines.

Reproduces the §4.5 key findings: no platform achieves optimal weak
scalability; Giraph is worst at 2 machines and recovers; GraphMat and
PowerGraph scale reasonably; GraphX scales poorly (worst slowdown);
PGX.D fails configurations due to memory limits.
"""

from paper import PLATFORM_LABELS, PLATFORM_NAMES, print_table

from repro.harness.experiments import get_experiment

SERIES = (("G22", 1), ("G23", 2), ("G24", 4), ("G25", 8), ("G26", 16))


def test_figure09_weak_scalability(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("weak-scalability").run(runner),
        rounds=1,
        iterations=1,
    )
    for algorithm in ("bfs", "pr"):
        rows = []
        for name, label in PLATFORM_LABELS.items():
            if name == "openg":
                continue
            series = []
            for dataset, machines in SERIES:
                match = [
                    r for r in report.rows
                    if r["algorithm"] == algorithm
                    and r["dataset"] == dataset
                    and r["machines"] == machines
                    and r["platform"] == PLATFORM_NAMES[name]
                ]
                if match and match[0]["status"] == "ok":
                    series.append(match[0]["tproc"])
                else:
                    series.append("F")
            rows.append([label] + series)
        print_table(
            f"Figure 9 ({algorithm.upper()}): Tproc along G22@1 .. G26@16",
            ["platform"] + [f"{d}@{m}" for d, m in SERIES],
            rows,
        )

    def slowdowns(platform, algorithm):
        out = []
        for dataset, machines in SERIES:
            rows = report.rows_for(
                platform=platform, algorithm=algorithm,
                dataset=dataset, machines=machines,
            )
            out.append(rows[0]["slowdown"] if rows and rows[0]["slowdown"] else None)
        return out

    # Nobody is ideal (slowdown would stay ~1.0 throughout).
    for platform in ("Giraph", "GraphX", "PowerGraph", "GraphMat"):
        finite = [s for s in slowdowns(platform, "bfs") if s]
        assert max(finite) > 1.5, platform

    # GraphX is the worst weak scaler on PR.
    worst = {
        p: max(s for s in slowdowns(p, "pr") if s)
        for p in ("Giraph", "GraphX", "PowerGraph", "GraphMat")
    }
    assert max(worst, key=worst.get) == "GraphX"

    # Giraph: worst at 2 machines, then improves monotonically.
    giraph = slowdowns("Giraph", "pr")
    assert giraph[1] == max(giraph)
    assert giraph[1] > giraph[2] > giraph[3] > giraph[4]

    # PGX.D fails at least one configuration on memory.
    pgxd_failures = [
        r for r in report.rows
        if r["platform"] == "PGX.D" and r["status"] == "F"
    ]
    assert pgxd_failures
