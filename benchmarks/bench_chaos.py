"""Chaos recovery characteristics, recorded to ``BENCH_chaos.json``.

Two fault scenarios from the robustness plane, each with a number the
repo gates on:

* **Containment** — a poison run (its chaos plan SIGKILLs the run
  child after a few journal appends, on every attempt) submitted to a
  live in-process service.  The bench records launches-to-quarantine
  and time-to-quarantine.  The gate: the supervisor relaunches the run
  exactly its configured budget and never again — unbounded relaunch
  of a poison run is the classic way one bad submission eats a shared
  deployment.

* **Recovery** — a torn ``write`` tears the journal mid-run (the run
  crashes), then ``resume_run`` recovers from the truncated log.  The
  bench records the crashed run's journal replay/resume wall time and
  how many finished jobs were restored instead of re-executed.  The
  gate: at least one job is restored (a resume that redoes everything
  is a restart with extra steps) and recovery stays under an absolute
  ceiling.

Wall-clock gates are asserted unless ``GRAPHALYTICS_SKIP_OVERHEAD_CHECK``
is set (shared CI hardware can stall arbitrarily); the structural
gates (attempt budget, restored jobs) always hold.
"""

import asyncio
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.faults import IoFault, IoFaultPlan, install_io_plan, io_faults
from repro.harness.config import BenchmarkConfig
from repro.runtime import RuntimeConfig, execute_matrix, resume_run
from repro.service import BenchmarkService, ServiceClient, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_chaos.json"

ATTEMPT_BUDGET = 3
CONTAINMENT_BUDGET_SECONDS = 60.0
RECOVERY_BUDGET_SECONDS = 30.0

MATRIX = {
    "platforms": ["powergraph"],
    "datasets": ["R1"],
    "algorithms": ["bfs", "pr"],
    "repetitions": 2,
}

KILL_PLAN = {
    "seed": 7,
    "faults": [{"point": "journal.append.write", "kind": "kill", "after": 3}],
}


class _ServiceHarness:
    """A live in-process service with real run children and fast retry."""

    def __init__(self, spool: Path):
        config = ServiceConfig(
            spool=spool,
            port=0,
            max_running=1,
            run_attempts=ATTEMPT_BUDGET,
            run_backoff_base=0.05,
            breaker_threshold=100,  # the breaker is not under test here
        )
        self.service = BenchmarkService(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)

    def __enter__(self) -> ServiceClient:
        self.thread.start()
        host, port = asyncio.run_coroutine_threadsafe(
            self.service.start(), self.loop
        ).result(timeout=30)
        return ServiceClient(host, port, timeout=30)

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)
        self.loop.close()


def _wait_quarantined(client: ServiceClient, run_id: str) -> dict:
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        payload = client.run(run_id)
        if payload["state"] in ("quarantined", "done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"poison run never settled: {payload['state']}")


def test_poison_run_containment(benchmark, tmp_path):
    def rounds():
        with _ServiceHarness(tmp_path / "spool") as client:
            started = time.perf_counter()
            accepted = client.submit("poison", MATRIX, chaos=KILL_PLAN)
            final = _wait_quarantined(client, accepted["run_id"])
            elapsed = time.perf_counter() - started
        return final, elapsed

    final, elapsed = benchmark.pedantic(rounds, rounds=1, iterations=1)

    # Structural gates: quarantined after EXACTLY the budget.
    assert final["state"] == "quarantined", final
    assert final["attempts"] == ATTEMPT_BUDGET, (
        f"supervisor launched a poison run {final['attempts']} times "
        f"with a budget of {ATTEMPT_BUDGET} — re-enqueues are unbounded"
    )

    payload = {
        "containment_attempt_budget": ATTEMPT_BUDGET,
        "containment_attempts": final["attempts"],
        "containment_seconds": round(elapsed, 3),
        "containment_budget_seconds": CONTAINMENT_BUDGET_SECONDS,
    }

    print()
    print("Chaos containment — poison run to quarantine")
    print(f"  launches     {final['attempts']} (budget {ATTEMPT_BUDGET})")
    print(f"  quarantined  {elapsed:.2f} s after submission")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert elapsed <= CONTAINMENT_BUDGET_SECONDS, (
            f"containment took {elapsed:.1f}s, over the "
            f"{CONTAINMENT_BUDGET_SECONDS}s ceiling — relaunch backoff "
            f"or child teardown got slower"
        )
    _merge(payload)


def test_torn_write_recovery(benchmark, tmp_path):
    config = BenchmarkConfig(**MATRIX)
    run_dir = tmp_path / "run"

    def rounds():
        # Crash: a torn journal write mid-run (counts as the outage).
        install_io_plan(None)
        plan = IoFaultPlan(
            [IoFault(point="journal.append.write", kind="torn-write", after=10)]
        )
        with io_faults(plan):
            try:
                execute_matrix(
                    config, RuntimeConfig(workers=1), run_dir=run_dir
                )
            except OSError:
                pass
            else:  # pragma: no cover - the plan guarantees the tear
                raise AssertionError("torn write never fired")

        # Recovery: truncate-to-last-good-line replay + resume.
        started = time.perf_counter()
        resumed = resume_run(run_dir, RuntimeConfig(workers=1))
        elapsed = time.perf_counter() - started
        return resumed, elapsed

    resumed, elapsed = benchmark.pedantic(rounds, rounds=1, iterations=1)

    # Structural gate: the resume restored prior work, not redid it.
    assert resumed.restored_jobs >= 1, (
        "resume_run restored nothing — the journal prefix was lost"
    )

    payload = {
        "recovery_seconds": round(elapsed, 3),
        "recovery_budget_seconds": RECOVERY_BUDGET_SECONDS,
        "recovery_restored_jobs": resumed.restored_jobs,
        "recovery_total_jobs": len(resumed.database),
    }

    print()
    print("Chaos recovery — torn-write crash to completed resume")
    print(f"  restored     {resumed.restored_jobs} of "
          f"{len(resumed.database)} jobs from the journal")
    print(f"  recovery     {elapsed:.2f} s")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert elapsed <= RECOVERY_BUDGET_SECONDS, (
            f"recovery took {elapsed:.1f}s, over the "
            f"{RECOVERY_BUDGET_SECONDS}s ceiling — journal replay or "
            f"resume scheduling got slower"
        )
    _merge(payload)


def _merge(payload: dict) -> None:
    """Accumulate both scenarios' numbers into one BENCH_chaos.json."""
    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(payload)
    OUTPUT.write_text(json.dumps(merged, indent=1, sort_keys=True) + "\n")
