"""Ablation: measured partitioning quality behind the memory model.

The perf models charge edge-cut platforms (Giraph/GraphX/GraphMat) a
skew penalty on Graph500 graphs that the vertex-cut platform
(PowerGraph) largely avoids — the asymmetry behind the Table 10 split.
Here the partitioners *really run* on miniature graphs to show the
mechanism is physical: on hub-heavy Graph500 graphs, hash edge-cuts
suffer badly imbalanced per-machine load (a hub's edges land on one
machine), while greedy vertex-cuts stay near-perfectly balanced with far
lower replication. The peak-machine pressure (replication x imbalance)
is what the models' ``memory_skew`` term abstracts.
"""

from paper import print_table

from repro.datagen.generator import generate
from repro.datagen.graph500 import graph500
from repro.platforms.partitioning import compare_strategies

MACHINES = 8


def _measure():
    skewed = graph500(9, edgefactor=8, seed=3)
    social = generate(
        skewed.num_vertices,
        mean_degree=min(30.0, 2.0 * skewed.num_edges / skewed.num_vertices),
        seed=3,
    )
    return {
        "graph500 (skewed)": compare_strategies(skewed, MACHINES, seed=2),
        "datagen (social)": compare_strategies(social, MACHINES, seed=2),
    }


def test_partitioning_replication(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = []
    for graph_kind, (edge_cut, vertex_cut) in results.items():
        rows.append(
            (
                graph_kind,
                edge_cut.replication_factor,
                vertex_cut.replication_factor,
                edge_cut.edge_imbalance,
                vertex_cut.edge_imbalance,
            )
        )
    print_table(
        f"Partitioning on {MACHINES} machines: edge-cut vs vertex-cut",
        ["graph", "EC repl", "VC repl", "EC imbal", "VC imbal"],
        rows,
    )
    skew_ec, skew_vc = results["graph500 (skewed)"]
    social_ec, social_vc = results["datagen (social)"]
    # Vertex-cut wins on the skewed graph (PowerGraph's design claim).
    assert skew_vc.replication_factor < skew_ec.replication_factor
    assert skew_vc.edge_imbalance < skew_ec.edge_imbalance
    # The measured skew penalty: edge-cut load imbalance is far worse on
    # the Graph500 graph than on the Datagen graph of the same size,
    # while vertex-cut absorbs the skew — PowerGraph's §3.1 design goal.
    assert skew_ec.edge_imbalance > social_ec.edge_imbalance
    assert skew_vc.edge_imbalance <= social_vc.edge_imbalance + 0.05
