"""Table 10: stress test — smallest dataset failing BFS on one machine.

Reproduces all six paper entries exactly, plus the §4.6 key findings:
most platforms fail on a Graph500 graph while succeeding on a Datagen
graph of comparable scale; PowerGraph and OpenG process graphs up to
scale 9.0 on one machine.
"""

from paper import PAPER_TABLE10, PLATFORM_LABELS, print_table

from repro.harness.datasets import get_dataset
from repro.harness.experiments import get_experiment


def test_table10_stress_test(benchmark, runner):
    report = benchmark.pedantic(
        lambda: get_experiment("stress-test").run(runner),
        rounds=1,
        iterations=1,
    )
    rows = []
    for row in report.rows_for(summary="stress-limit"):
        platform = row["platform"]
        paper_dataset, paper_scale = PAPER_TABLE10[platform]
        rows.append(
            (
                PLATFORM_LABELS[platform],
                row["dataset"], paper_dataset,
                row["scale"], paper_scale,
            )
        )
        assert row["dataset"] == paper_dataset
        assert row["scale"] == paper_scale
    print_table(
        "Table 10: smallest dataset failing BFS on one machine",
        ["platform", "dataset", "paper", "scale", "paper"],
        rows,
    )

    # §4.6: Giraph/GraphMat fail G26 but pass D1000 of the same scale.
    def status(platform_key, dataset):
        matches = [
            r for r in report.rows
            if r.get("platform") == PLATFORM_LABELS[platform_key].replace(
                "P'Graph", "PowerGraph"
            ).replace("G'Mat", "GraphMat")
            and r.get("dataset") == dataset and "status" in r
        ]
        return matches[0]["status"]

    assert get_dataset("G26").profile.scale == get_dataset("D1000").profile.scale
    for platform_key in ("giraph", "graphmat"):
        assert status(platform_key, "G26") == "F"
        assert status(platform_key, "D1000") == "ok"
