"""Whole-program lint wall time over ``src/repro``, recorded to
``BENCH_lint.json``.

The two-phase engine parses every module, builds the project model
(symbol tables, import graph, call graph, worker-reachability closure)
and then runs all fifteen rules — per-file and interprocedural — over
the full tree. The gate asserts the end-to-end run stays under
``TIME_BUDGET_SECONDS`` so the CI lint leg (and a pre-commit habit)
remains cheap as the tree grows; a separate ``--no-project`` arm is
timed alongside to keep the marginal cost of the whole-program phase
visible in the committed payload.

The budget is asserted unless ``GRAPHALYTICS_SKIP_OVERHEAD_CHECK`` is
set (shared CI hardware can stall arbitrarily). A full run measures
~2-3 s on CI-class hardware, so the 10 s budget has generous headroom;
the min-of-rounds statistic makes the gate robust to a single noisy
round.
"""

import json
import os
import time
from pathlib import Path

from repro.lint import LintConfig, LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_lint.json"
TARGET = REPO_ROOT / "src" / "repro"
ROUNDS = 5
TIME_BUDGET_SECONDS = 10.0


def _one_round(project: bool):
    config = load_config(REPO_ROOT)
    config.project = project
    started = time.perf_counter()
    findings = LintEngine(config).run([TARGET])
    elapsed = time.perf_counter() - started
    # The shipped tree lints clean; a finding here means the bench is
    # measuring a broken tree, not lint performance.
    assert findings == [], [f.fingerprint for f in findings]
    return elapsed


def test_full_tree_lint_wall_time(benchmark):
    _one_round(project=True)  # warm import/parse caches

    def rounds():
        samples = {False: [], True: []}
        for _ in range(ROUNDS):
            for project in (False, True):
                samples[project].append(_one_round(project))
        return samples

    samples = benchmark.pedantic(rounds, rounds=1, iterations=1)

    full = min(samples[True])
    per_file_only = min(samples[False])
    file_count = len(
        LintEngine(load_config(REPO_ROOT)).collect_files([TARGET])
    )

    payload = {
        "target": "src/repro",
        "files": file_count,
        "rounds": ROUNDS,
        "full_min_seconds": round(full, 4),
        "per_file_only_min_seconds": round(per_file_only, 4),
        "project_phase_seconds": round(full - per_file_only, 4),
        "budget_seconds": TIME_BUDGET_SECONDS,
        "full_samples": [round(s, 4) for s in samples[True]],
        "per_file_only_samples": [round(s, 4) for s in samples[False]],
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Whole-program lint — {file_count} files, {ROUNDS} rounds")
    print(f"  full (two-phase)  min {full:.4f} s")
    print(f"  per-file only     min {per_file_only:.4f} s")
    print(f"  project phase     ~{full - per_file_only:.4f} s")
    print(f"written to {OUTPUT.name}")

    if not os.environ.get("GRAPHALYTICS_SKIP_OVERHEAD_CHECK"):
        assert full < TIME_BUDGET_SECONDS, (
            f"full-tree lint took {full:.2f} s, budget "
            f"{TIME_BUDGET_SECONDS:.0f} s (set "
            f"GRAPHALYTICS_SKIP_OVERHEAD_CHECK=1 on noisy hardware)"
        )
