"""Table 7: hardware specifications of the DAS-5 benchmarking nodes.

The cluster resource model must carry exactly the paper's node
description — it drives the vertical-scaling thread counts (16 cores,
32 HT threads) and the memory bound (64 GiB) behind every Table 10
failure.
"""

from paper import print_table

from repro.platforms.cluster import DAS5_MACHINE, ClusterResources


def test_table07_hardware(benchmark):
    machine = benchmark(lambda: DAS5_MACHINE)
    rows = [
        ("CPU", machine.name, "2 x Intel Xeon E5-2630 @ 2.40 GHz"),
        ("Cores", machine.cores, "16 (32 threads with Hyper-Threading)"),
        ("Threads", machine.threads, "32"),
        ("Memory", f"{machine.memory_bytes // 2**30} GiB", "64 GiB"),
        ("Network", f"{machine.network_gbps:g} Gbit/s Ethernet",
         "1 Gbit/s Ethernet, FDR InfiniBand"),
    ]
    print_table("Table 7: hardware specifications", ["component", "model", "paper"], rows)
    assert machine.cores == 16
    assert machine.threads == 32
    assert machine.memory_bytes == 64 * 2 ** 30
    assert "E5-2630" in machine.name

    # The resource model exposes exactly these limits to the benchmark.
    resources = ClusterResources(machines=16)
    assert resources.threads_per_machine == 32
    assert resources.total_memory_bytes == 16 * 64 * 2 ** 30
