"""Table 3: the real-world dataset catalog, plus miniature realization.

Checks that the registry reproduces every printed |V|, |E|, scale, and
domain, and benchmarks materializing the miniature replicas.
"""

from paper import print_table

from repro.harness.datasets import REAL_DATASETS, get_dataset

PAPER_TABLE3 = {
    "R1": ("wiki-talk", 2.39e6, 5.02e6, 6.9, "Knowledge"),
    "R2": ("kgs", 0.83e6, 17.9e6, 7.3, "Gaming"),
    "R3": ("cit-patents", 3.77e6, 16.5e6, 7.3, "Knowledge"),
    "R4": ("dota-league", 0.61e6, 50.9e6, 7.7, "Gaming"),
    "R5": ("com-friendster", 65.6e6, 1.81e9, 9.3, "Social"),
    "R6": ("twitter_mpi", 52.6e6, 1.97e9, 9.3, "Social"),
}


def test_table03_catalog(benchmark):
    rows = benchmark(lambda: [(d.dataset_id, d.profile) for d in REAL_DATASETS])
    printable = []
    for dataset_id, profile in rows:
        name, v, e, scale, domain = PAPER_TABLE3[dataset_id]
        assert profile.name == name
        assert profile.num_vertices == int(round(v))
        assert profile.num_edges == int(round(e))
        assert profile.scale == scale
        assert domain in get_dataset(dataset_id).domain
        printable.append(
            (dataset_id, name, profile.num_vertices, profile.num_edges,
             profile.scale, get_dataset(dataset_id).tshirt, domain)
        )
    print_table(
        "Table 3: real-world datasets",
        ["id", "name", "|V|", "|E|", "scale", "class", "domain"],
        printable,
    )


def test_table03_miniature_materialization(benchmark):
    """Time the replica generation for the largest real miniature."""
    dataset = get_dataset("R5")
    graph = benchmark.pedantic(
        lambda: dataset.materializer(99), rounds=3, iterations=1
    )
    assert graph.num_edges > 0
    assert graph.directed == dataset.profile.directed
