"""Measured strong scaling of the partitioned engine, recorded to
``BENCH_partitioned.json`` (ROADMAP item 3: measured curves next to the
calibrated model's).

The curve: PageRank and BFS on a G(n, p) graph at 1/2/4 shards over the
pipes transport, wall-clock per shard count, speedup vs the 1-shard run.
Next to it, the calibrated platform models' ``machine_scaling_factor``
for the same machine counts, and the measured-vs-modeled delta — the
number the paper's §6 experiments could only simulate before.

Gated everywhere: every shard count's output is bit-identical (through
the canonical codec) to the single-process engine, and the traced run's
``trace.jsonl`` carries the per-superstep ``shard-compute`` /
``exchange`` / ``barrier-wait`` spans. Gated only on multi-CPU hardware
(this is a real fork-and-pipe system — on one core more shards just add
exchange overhead): 2-shard speedup > 1.
"""

import json
import multiprocessing
import os
from pathlib import Path

from repro.engines import gas, pregel
from repro.engines.partitioned import run_algorithm
from repro.graph.generators import erdos_renyi
from repro.trace import MonotonicClock, Tracer, read_trace, use_tracer, write_trace

OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_partitioned.json"
SHARD_COUNTS = (1, 2, 4)
PR_ITERATIONS = 30

#: The calibrated distributed-platform models whose strong-scaling
#: curves the measured one sits next to (rate multiplier vs 1 machine).
_MODELED = {}


def _load_models():
    from repro.platforms.giraph import GIRAPH_MODEL
    from repro.platforms.graphmat import GRAPHMAT_MODEL
    from repro.platforms.graphx import GRAPHX_MODEL
    from repro.platforms.pgxd import PGXD_MODEL
    from repro.platforms.powergraph import POWERGRAPH_MODEL

    _MODELED.update({
        "Giraph": GIRAPH_MODEL,
        "GraphMat": GRAPHMAT_MODEL,
        "GraphX": GRAPHX_MODEL,
        "PGX.D": PGXD_MODEL,
        "PowerGraph": POWERGRAPH_MODEL,
    })


_WALL = MonotonicClock()


def _bench_graph():
    return erdos_renyi(320, 0.04, directed=True, seed=42, name="bench-er")


def _arms(graph):
    return {
        "pr": {
            "model": "gas",
            "params": {"iterations": PR_ITERATIONS},
            "baseline": lambda: gas.run_pagerank(graph, PR_ITERATIONS),
        },
        "bfs": {
            "model": "pregel",
            "params": {"source_vertex": int(graph.vertex_ids[0])},
            "baseline": lambda: pregel.run_bfs(graph, int(graph.vertex_ids[0])),
        },
    }


def _timed_partitioned(graph, algorithm, arm, shards):
    started = _WALL.now()
    values = run_algorithm(
        graph,
        algorithm,
        dict(arm["params"]),
        partitions=shards,
        strategy="hash",
        model=arm["model"],
        transport="pipes",
    )
    return values, _WALL.now() - started


def test_partitioned_strong_scaling(benchmark, tmp_path):
    _load_models()
    graph = _bench_graph()
    arms = _arms(graph)

    def rounds():
        measured = {}
        for algorithm, arm in arms.items():
            measured[algorithm] = {
                shards: _timed_partitioned(graph, algorithm, arm, shards)
                for shards in SHARD_COUNTS
            }
        return measured

    measured = benchmark.pedantic(rounds, rounds=1, iterations=1)

    payload = {
        "graph": "erdos_renyi(320, 0.04, directed, seed=42)",
        "vertices": int(graph.num_vertices),
        "edges": int(graph.num_edges),
        "transport": "pipes",
        "strategy": "hash",
        "cpu_count": multiprocessing.cpu_count(),
        "algorithms": {},
    }

    for algorithm, arm in arms.items():
        baseline = arm["baseline"]()
        serial_elapsed = measured[algorithm][1][1]
        curve = {}
        for shards in SHARD_COUNTS:
            values, elapsed = measured[algorithm][shards]
            # The gate that holds on any hardware: sharding never
            # changes a single bit of the output.
            assert values.tobytes() == baseline.tobytes(), (
                f"{algorithm} at {shards} shards diverged from the "
                f"single-process engine"
            )
            curve[str(shards)] = {
                "wall_clock_seconds": round(elapsed, 4),
                "speedup_vs_1_shard": round(
                    serial_elapsed / elapsed if elapsed > 0 else 0.0, 3
                ),
            }
        modeled = {
            name: {
                str(m): round(model.machine_scaling_factor(algorithm, m), 3)
                for m in SHARD_COUNTS
            }
            for name, model in sorted(_MODELED.items())
        }
        delta = {
            name: {
                m: round(
                    curve[m]["speedup_vs_1_shard"] - series[m], 3
                )
                for m in series
            }
            for name, series in modeled.items()
        }
        payload["algorithms"][algorithm] = {
            "measured": curve,
            "modeled_speedup": modeled,
            "measured_minus_modeled": delta,
        }

    # One traced 2-shard run: the span timeline the docs promise must
    # land in trace.jsonl (shard compute, exchange, barrier-wait).
    tracer = Tracer(enabled=True)
    with use_tracer(tracer):
        _timed_partitioned(graph, "pr", arms["pr"], 2)
    trace_path = tmp_path / "trace.jsonl"
    write_trace(trace_path, tracer.finished_spans())
    spans, _ = read_trace(trace_path)
    kinds = {}
    for span in spans:
        kinds[span.name] = kinds.get(span.name, 0) + 1
    for required in ("shard-compute", "exchange", "barrier-wait"):
        assert kinds.get(required, 0) > 0, f"missing {required} spans"
    payload["trace_span_counts"] = dict(sorted(kinds.items()))

    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(f"Partitioned strong scaling — {payload['graph']}, "
          f"{payload['cpu_count']} cores")
    print(f"{'algorithm':>10s} {'shards':>7s} {'wall s':>9s} {'speedup':>8s}")
    for algorithm in arms:
        for shards in SHARD_COUNTS:
            cell = payload["algorithms"][algorithm]["measured"][str(shards)]
            print(f"{algorithm:>10s} {shards:>7d} "
                  f"{cell['wall_clock_seconds']:>9.3f} "
                  f"{cell['speedup_vs_1_shard']:>7.2f}x")
    print(f"written to {OUTPUT.name}")

    # The speedup gate is only meaningful with real parallel hardware.
    if payload["cpu_count"] >= 2 and not os.environ.get(
        "GRAPHALYTICS_SKIP_SPEEDUP_CHECK"
    ):
        assert (
            payload["algorithms"]["pr"]["measured"]["2"]["speedup_vs_1_shard"]
            > 1.0
        )
