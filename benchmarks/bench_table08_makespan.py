"""Table 8: Tproc vs makespan for BFS on D300(L), via Granula.

The makespan breakdown comes from each job's Granula performance archive
(paper §2.5.2): the harness extracts Tproc from the archive's processing
phase and the overhead ratio from the archive itself.
"""

import pytest
from paper import PAPER_TABLE8, PLATFORM_LABELS, print_table

from repro.granula.archiver import build_archive
from repro.harness.datasets import get_dataset
from repro.platforms.registry import PLATFORMS, create_driver


def _run_all():
    dataset = get_dataset("D300")
    graph = dataset.materialize()
    archives = {}
    for name in PLATFORMS:
        driver = create_driver(name)
        handle = driver.upload(graph, profile=dataset.profile)
        job = driver.execute(handle, "bfs", dataset.algorithm_parameters("bfs"))
        archives[name] = build_archive(job)
    return archives


def test_table08_makespan(benchmark):
    archives = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for name, archive in archives.items():
        paper_tproc, paper_makespan = PAPER_TABLE8[name]
        tproc = archive.processing_time
        makespan = archive.makespan
        rows.append(
            (
                PLATFORM_LABELS[name],
                makespan, paper_makespan,
                tproc, paper_tproc,
                100 * archive.overhead_ratio(),
                100 * paper_tproc / paper_makespan,
            )
        )
        # Jitter applies per run; allow 25% around the paper values.
        assert tproc == pytest.approx(paper_tproc, rel=0.25)
        assert makespan == pytest.approx(paper_makespan, rel=0.15)
    print_table(
        "Table 8: BFS on D300(L) — makespan / Tproc / ratio",
        ["platform", "makespan", "paper", "tproc", "paper", "ratio%", "paper%"],
        rows,
    )
