"""Paper reference values and table-printing helpers for the benchmarks.

Every ``PAPER_*`` constant below is transcribed from the paper; the
bench modules print these next to the reproduced values so the output is
a self-contained paper-vs-measured report (also summarized in
EXPERIMENTS.md).
"""

from typing import Iterable, List, Sequence

__all__ = [
    "print_table",
    "fmt",
    "PAPER_TABLE8",
    "PAPER_TABLE9",
    "PAPER_TABLE10",
    "PAPER_TABLE11",
    "PAPER_FIGURE10_SPEEDUPS",
    "PLATFORM_LABELS",
]

#: registry key -> display name used in the paper's tables.
PLATFORM_LABELS = {
    "giraph": "Giraph",
    "graphx": "GraphX",
    "powergraph": "P'Graph",
    "graphmat": "G'Mat",
    "openg": "OpenG",
    "pgxd": "PGX.D",
}

#: registry key -> the name drivers stamp on result records.
PLATFORM_NAMES = {
    "giraph": "Giraph",
    "graphx": "GraphX",
    "powergraph": "PowerGraph",
    "graphmat": "GraphMat",
    "openg": "OpenG",
    "pgxd": "PGX.D",
}

#: Table 8: BFS on D300(L) — (Tproc seconds, makespan seconds).
PAPER_TABLE8 = {
    "giraph": (22.3, 276.6),
    "graphx": (101.5, 298.3),
    "powergraph": (2.1, 214.7),
    "graphmat": (0.3, 22.8),
    "openg": (1.8, 5.4),
    "pgxd": (0.5, 268.7),
}

#: Table 9: vertical speedups on D300(L), 1 -> 32 threads (BFS, PR).
PAPER_TABLE9 = {
    "giraph": (6.0, 8.1),
    "graphx": (4.5, 2.9),
    "powergraph": (11.8, 10.3),
    "graphmat": (6.9, 11.3),
    "openg": (6.3, 6.4),
    "pgxd": (15.0, 13.9),
}

#: Table 10: smallest dataset failing BFS on one machine (id, scale).
PAPER_TABLE10 = {
    "giraph": ("G26", 9.0),
    "graphx": ("G25", 8.7),
    "powergraph": ("R5", 9.3),
    "graphmat": ("G26", 9.0),
    "openg": ("R5", 9.3),
    "pgxd": ("G25", 8.7),
}

#: Table 11: variability — config -> platform -> (mean s, CV).
PAPER_TABLE11 = {
    "S": {
        "giraph": (22.3, 0.050),
        "graphx": (101.5, 0.026),
        "powergraph": (2.1, 0.015),
        "graphmat": (0.3, 0.097),
        "openg": (2.0, 0.048),
        "pgxd": (0.5, 0.082),
    },
    "D": {
        "giraph": (38.0, 0.098),
        "graphx": (335.5, 0.045),
        "powergraph": (6.6, 0.045),
        "graphmat": (0.5, 0.057),
        "pgxd": (0.5, 0.071),
    },
}

#: §4.8: v0.2.6 over v0.2.1 speedups at SF 30..3000 on 16 machines.
PAPER_FIGURE10_SPEEDUPS = {30: 1.16, 100: 1.33, 300: 1.83, 1000: 2.15, 3000: 2.9}


def fmt(value, width=9) -> str:
    """Format one cell: numbers to 3 significant digits."""
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.3g}".rjust(width)
    return str(value).rjust(width)


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one paper-vs-reproduced comparison table."""
    rows = list(rows)
    widths: List[int] = [
        max(len(str(header[i])), *(len(fmt(r[i]).strip()) for r in rows), 6)
        for i in range(len(header))
    ]
    print()
    print(f"== {title} ==")
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(fmt(c, w) for c, w in zip(row, widths)))
