"""Upload time: the third run-time component of §2.3.

"Upload time: time required to preprocess and convert the graph into a
suitable format for a platform." The paper defines the metric without a
dedicated table; this bench reports the modeled upload times on D300
alongside the Table 8 makespans, and checks the §2.3 decomposition
(upload is *not* part of the makespan — it happens once per graph, not
per job).
"""

from paper import PLATFORM_LABELS, print_table

from repro.harness.datasets import get_dataset
from repro.platforms.registry import PLATFORMS, create_driver


def _upload_all():
    dataset = get_dataset("D300")
    graph = dataset.materialize()
    handles = {}
    for name in PLATFORMS:
        driver = create_driver(name)
        handles[name] = (driver, driver.upload(graph, profile=dataset.profile))
    return dataset, handles


def test_upload_time(benchmark):
    dataset, handles = benchmark.pedantic(_upload_all, rounds=1, iterations=1)
    rows = []
    for name, (driver, handle) in handles.items():
        job = driver.execute(handle, "bfs", dataset.algorithm_parameters("bfs"))
        rows.append(
            (
                PLATFORM_LABELS[name],
                handle.modeled_upload_time,
                job.modeled_makespan,
                handle.measured_upload_seconds * 1000,
            )
        )
        # The §2.3 decomposition: upload is separate from the makespan.
        assert job.modeled_makespan is not None
        assert handle.modeled_upload_time > 0
    print_table(
        "Upload time vs makespan, D300(L)",
        ["platform", "upload (s)", "makespan (s)", "mini upload (ms)"],
        rows,
    )
    # Slow-loading platforms also preprocess slowly (same data paths):
    # PGX.D's upload dominates, OpenG's is the smallest.
    uploads = {r[0]: r[1] for r in rows}
    assert uploads["PGX.D"] == max(uploads.values())
    assert uploads["OpenG"] == min(uploads.values())
