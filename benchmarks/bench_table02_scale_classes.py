"""Table 2: mapping of dataset scale ranges to "T-shirt" labels."""

from paper import print_table

from repro.harness.scale import SCALE_CLASSES, scale_class

PAPER_MAPPING = [
    (6.5, "2XS"),
    (7.2, "XS"),
    (7.7, "S"),
    (8.2, "M"),
    (8.7, "L"),
    (9.2, "XL"),
    (9.8, "2XL"),
]


def _classify_all():
    return [(scale, scale_class(scale)) for scale, _ in PAPER_MAPPING]


def test_table02_scale_classes(benchmark):
    produced = benchmark(_classify_all)
    rows = []
    for (scale, label), (_, expected) in zip(produced, PAPER_MAPPING):
        rows.append((scale, label, expected))
        assert label == expected
    print_table(
        "Table 2: scale ranges to T-shirt labels",
        ["scale", "label", "paper"],
        rows,
    )
    # The class table itself matches the paper's boundaries.
    assert [(low, high) for low, high, _ in SCALE_CLASSES][1:-1] == [
        (7.0, 7.5), (7.5, 8.0), (8.0, 8.5), (8.5, 9.0), (9.0, 9.5),
    ]
