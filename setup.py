"""Legacy setup shim for editable installs in offline environments.

All package metadata lives in pyproject.toml; this file only lets
``pip install -e .`` work where the `wheel` package (required for PEP 660
editable wheels) is unavailable.
"""

from setuptools import setup

setup()
