"""Property-based tests (hypothesis) for the core algorithm invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search
from repro.algorithms.cdlp import community_detection_lp
from repro.algorithms.lcc import local_clustering_coefficient
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import single_source_shortest_paths
from repro.algorithms.wcc import weakly_connected_components
from repro.graph.builder import GraphBuilder


@st.composite
def random_graphs(draw, directed=None, weighted=False, max_vertices=24):
    """Arbitrary small graphs with at least one vertex."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    if directed is None:
        directed = draw(st.booleans())
    builder = GraphBuilder(directed=directed, weighted=weighted, dedup=True)
    builder.add_vertices(range(n))
    max_edges = min(60, n * (n - 1) // (1 if directed else 2))
    pair = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    edges = draw(st.lists(pair, max_size=max_edges))
    for s, d in edges:
        if s == d:
            continue
        weight = draw(st.floats(min_value=0.01, max_value=10.0)) if weighted else None
        builder.add_edge(s, d, weight)
    return builder.build()


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_bfs_triangle_inequality(graph):
    """Depths along any edge differ by at most one (forward direction)."""
    source = int(graph.vertex_ids[0])
    depth = breadth_first_search(graph, source)
    for s, d in zip(graph.edge_src, graph.edge_dst):
        if depth[s] != BFS_UNREACHABLE:
            assert depth[d] <= depth[s] + 1
        if not graph.directed and depth[d] != BFS_UNREACHABLE:
            assert depth[s] <= depth[d] + 1


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_bfs_levels_are_contiguous(graph):
    depth = breadth_first_search(graph, int(graph.vertex_ids[0]))
    finite = sorted(set(int(d) for d in depth if d != BFS_UNREACHABLE))
    assert finite == list(range(len(finite)))


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_pagerank_is_a_distribution(graph):
    ranks = pagerank(graph, iterations=25)
    assert np.all(ranks > 0)
    assert ranks.sum() == np.float64(1.0) or abs(ranks.sum() - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_wcc_labels_constant_on_edges(graph):
    labels = weakly_connected_components(graph)
    for s, d in zip(graph.edge_src, graph.edge_dst):
        assert labels[s] == labels[d]


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_wcc_label_is_member_minimum(graph):
    labels = weakly_connected_components(graph)
    for component in np.unique(labels):
        members = graph.vertex_ids[labels == component]
        assert component == members.min()


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_lcc_bounded(graph):
    lcc = local_clustering_coefficient(graph)
    assert np.all(lcc >= 0.0)
    assert np.all(lcc <= 1.0)


@settings(max_examples=40, deadline=None)
@given(random_graphs(weighted=True))
def test_sssp_triangle_inequality(graph):
    source = int(graph.vertex_ids[0])
    dist = single_source_shortest_paths(graph, source)
    weights = graph.edge_weights
    for k in range(graph.num_edges):
        s, d = graph.edge_src[k], graph.edge_dst[k]
        if np.isfinite(dist[s]):
            assert dist[d] <= dist[s] + weights[k] + 1e-9
        if not graph.directed and np.isfinite(dist[d]):
            assert dist[s] <= dist[d] + weights[k] + 1e-9


@settings(max_examples=40, deadline=None)
@given(random_graphs(weighted=True))
def test_sssp_dominated_by_bfs_times_max_weight(graph):
    """d(v) <= hops(v) * max_weight for every reachable vertex."""
    source = int(graph.vertex_ids[0])
    dist = single_source_shortest_paths(graph, source)
    hops = breadth_first_search(graph, source)
    max_w = graph.edge_weights.max() if graph.num_edges else 0.0
    for v in range(graph.num_vertices):
        if hops[v] != BFS_UNREACHABLE:
            assert dist[v] <= hops[v] * max_w + 1e-9
        else:
            assert not np.isfinite(dist[v])


@settings(max_examples=40, deadline=None)
@given(random_graphs(), st.integers(min_value=0, max_value=6))
def test_cdlp_labels_are_vertex_ids(graph, iterations):
    labels = community_detection_lp(graph, iterations=iterations)
    valid = set(int(v) for v in graph.vertex_ids)
    assert all(int(label) in valid for label in labels)


@settings(max_examples=30, deadline=None)
@given(random_graphs())
def test_cdlp_deterministic(graph):
    a = community_detection_lp(graph, iterations=5)
    b = community_detection_lp(graph, iterations=5)
    assert np.array_equal(a, b)
