"""Tests for the shared CSR helpers."""

import numpy as np
import pytest

from repro.algorithms.common import expand_sources, gather_neighbors, intersect_count


class TestGatherNeighbors:
    def test_matches_naive_concatenation(self, er_directed):
        indptr, indices = er_directed.out_indptr, er_directed.out_indices
        frontier = np.array([0, 5, 17, 3], dtype=np.int64)
        expected = np.concatenate(
            [indices[indptr[v]:indptr[v + 1]] for v in frontier]
        )
        assert np.array_equal(
            gather_neighbors(indptr, indices, frontier), expected
        )

    def test_empty_frontier(self, er_directed):
        out = gather_neighbors(
            er_directed.out_indptr,
            er_directed.out_indices,
            np.array([], dtype=np.int64),
        )
        assert len(out) == 0

    def test_isolated_vertices_contribute_nothing(self):
        indptr = np.array([0, 0, 2, 2], dtype=np.int64)
        indices = np.array([0, 2], dtype=np.int64)
        out = gather_neighbors(indptr, indices, np.array([0, 2], dtype=np.int64))
        assert len(out) == 0

    def test_repeated_frontier_vertices_repeat_neighbors(self):
        indptr = np.array([0, 2], dtype=np.int64)
        indices = np.array([5, 7], dtype=np.int64)
        out = gather_neighbors(indptr, indices, np.array([0, 0], dtype=np.int64))
        assert out.tolist() == [5, 7, 5, 7]


class TestExpandSources:
    def test_matches_degrees(self, er_directed):
        sources = expand_sources(er_directed.out_indptr)
        degrees = er_directed.out_degrees()
        counts = np.bincount(sources, minlength=er_directed.num_vertices)
        assert np.array_equal(counts, degrees)

    def test_empty(self):
        assert len(expand_sources(np.array([0], dtype=np.int64))) == 0


class TestIntersectCount:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ([1, 3, 5], [3, 5, 7], 2),
            ([1, 2], [3, 4], 0),
            ([], [1, 2], 0),
            ([1, 2, 3], [], 0),
            ([1, 2, 3], [1, 2, 3], 3),
            ([10], [5, 10, 15], 1),
        ],
    )
    def test_cases(self, a, b, expected):
        assert intersect_count(
            np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)
        ) == expected

    def test_swaps_for_shorter_first(self):
        big = np.arange(0, 1000, 2)
        small = np.array([4, 500, 999])
        assert intersect_count(big, small) == intersect_count(small, big) == 2
