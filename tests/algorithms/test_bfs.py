"""Tests for breadth-first search."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search
from repro.graph.generators import binary_tree, cycle_graph, path_graph
from repro.graph.graph import Graph


class TestAnalyticCases:
    def test_path_depths(self, path5):
        depths = breadth_first_search(path5, 0)
        assert depths.tolist() == [0, 1, 2, 3, 4]

    def test_path_from_middle(self, path5):
        depths = breadth_first_search(path5, 2)
        assert depths.tolist() == [2, 1, 0, 1, 2]

    def test_cycle_wraps(self):
        depths = breadth_first_search(cycle_graph(8), 0)
        assert depths.max() == 4

    def test_binary_tree_levels(self):
        tree = binary_tree(3)
        depths = breadth_first_search(tree, 0)
        for v in range(tree.num_vertices):
            expected = int(np.floor(np.log2(v + 1)))
            assert depths[tree.index_of(v)] == expected

    def test_source_is_zero(self, k4):
        assert breadth_first_search(k4, 2)[k4.index_of(2)] == 0

    def test_unreachable_marker(self, two_triangles):
        depths = breadth_first_search(two_triangles, 0)
        assert depths[two_triangles.index_of(10)] == BFS_UNREACHABLE
        assert depths[two_triangles.index_of(1)] == 1

    def test_unreachable_is_max_int64(self):
        assert BFS_UNREACHABLE == np.iinfo(np.int64).max


class TestDirected:
    def test_follows_out_edges_only(self):
        g = Graph.from_edges([(0, 1), (2, 1)], directed=True)
        depths = breadth_first_search(g, 0)
        assert depths[g.index_of(1)] == 1
        assert depths[g.index_of(2)] == BFS_UNREACHABLE

    def test_directed_chain(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)], directed=True)
        assert breadth_first_search(g, 0).tolist() == [0, 1, 2, 3]

    def test_reverse_direction_unreachable(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        depths = breadth_first_search(g, 2)
        assert depths[g.index_of(0)] == BFS_UNREACHABLE


class TestValidation:
    def test_unknown_source(self, path5):
        with pytest.raises(GraphFormatError, match="source vertex"):
            breadth_first_search(path5, 42)

    def test_isolated_source(self):
        g = Graph.from_edges([(1, 2)], directed=False, vertices=[0, 1, 2])
        depths = breadth_first_search(g, 0)
        assert depths[g.index_of(0)] == 0
        assert depths[g.index_of(1)] == BFS_UNREACHABLE


class TestAgainstNetworkx:
    @pytest.mark.parametrize("fixture", ["er_undirected", "er_directed"])
    def test_matches_networkx(self, fixture, request, nx_converter):
        import networkx as nx

        graph = request.getfixturevalue(fixture)
        source = int(graph.vertex_ids[0])
        ours = breadth_first_search(graph, source)
        expected = nx.single_source_shortest_path_length(
            nx_converter(graph), source
        )
        for idx in range(graph.num_vertices):
            vid = graph.id_of(idx)
            if vid in expected:
                assert ours[idx] == expected[vid]
            else:
                assert ours[idx] == BFS_UNREACHABLE
