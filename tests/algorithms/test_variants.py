"""Tests for the platform-style kernel variants.

Every variant must be output-equivalent to its reference implementation
under the Graphalytics validation rules — the property the benchmark
relies on when platforms choose different strategies (§4.1).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.bfs import breadth_first_search
from repro.algorithms.sssp import single_source_shortest_paths
from repro.algorithms.validation import validate_output
from repro.algorithms.variants import (
    bfs_bottom_up,
    bfs_queue,
    sssp_bellman_ford,
    sssp_delta_stepping,
)
from repro.exceptions import GraphFormatError
from repro.graph.generators import erdos_renyi

from tests.algorithms.test_properties import random_graphs


class TestBfsVariants:
    @pytest.mark.parametrize("variant", [bfs_queue, bfs_bottom_up])
    def test_equivalent_on_fixtures(self, variant, er_undirected, er_directed):
        for graph in (er_undirected, er_directed):
            source = int(graph.vertex_ids[0])
            reference = breadth_first_search(graph, source)
            validate_output("bfs", variant(graph, source), reference)

    @pytest.mark.parametrize("variant", [bfs_queue, bfs_bottom_up])
    def test_unknown_source(self, variant, er_undirected):
        with pytest.raises(GraphFormatError):
            variant(er_undirected, 10_000)

    def test_bottom_up_switch_both_modes(self):
        # A dense graph reaches the switch threshold after one level, so
        # both the top-down and bottom-up paths execute.
        graph = erdos_renyi(60, 0.3, seed=4)
        source = int(graph.vertex_ids[0])
        reference = breadth_first_search(graph, source)
        result = bfs_bottom_up(graph, source, switch_fraction=0.02)
        assert np.array_equal(result, reference)

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_queue_bfs_property(self, graph):
        source = int(graph.vertex_ids[0])
        assert np.array_equal(
            bfs_queue(graph, source), breadth_first_search(graph, source)
        )

    @settings(max_examples=40, deadline=None)
    @given(random_graphs())
    def test_bottom_up_bfs_property(self, graph):
        source = int(graph.vertex_ids[0])
        assert np.array_equal(
            bfs_bottom_up(graph, source), breadth_first_search(graph, source)
        )


class TestSsspVariants:
    @pytest.mark.parametrize(
        "variant", [sssp_delta_stepping, sssp_bellman_ford]
    )
    def test_equivalent_on_fixture(self, variant, er_weighted):
        source = int(er_weighted.vertex_ids[0])
        reference = single_source_shortest_paths(er_weighted, source)
        validate_output("sssp", variant(er_weighted, source), reference)

    def test_delta_parameter(self, er_weighted):
        source = int(er_weighted.vertex_ids[0])
        reference = single_source_shortest_paths(er_weighted, source)
        for delta in (0.05, 0.5, 5.0):
            result = sssp_delta_stepping(er_weighted, source, delta=delta)
            validate_output("sssp", result, reference)

    def test_invalid_delta(self, er_weighted):
        with pytest.raises(GraphFormatError):
            sssp_delta_stepping(er_weighted, int(er_weighted.vertex_ids[0]), delta=0)

    @pytest.mark.parametrize(
        "variant", [sssp_delta_stepping, sssp_bellman_ford]
    )
    def test_unweighted_rejected(self, variant, er_undirected):
        with pytest.raises(GraphFormatError):
            variant(er_undirected, int(er_undirected.vertex_ids[0]))

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(weighted=True))
    def test_delta_stepping_property(self, graph):
        source = int(graph.vertex_ids[0])
        reference = single_source_shortest_paths(graph, source)
        result = sssp_delta_stepping(graph, source)
        assert np.array_equal(np.isinf(result), np.isinf(reference))
        assert np.allclose(
            result[np.isfinite(result)], reference[np.isfinite(reference)]
        )

    @settings(max_examples=30, deadline=None)
    @given(random_graphs(weighted=True))
    def test_bellman_ford_property(self, graph):
        source = int(graph.vertex_ids[0])
        reference = single_source_shortest_paths(graph, source)
        result = sssp_bellman_ford(graph, source)
        assert np.array_equal(np.isinf(result), np.isinf(reference))
        assert np.allclose(
            result[np.isfinite(result)], reference[np.isfinite(reference)]
        )
