"""Tests for single-source shortest paths."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.algorithms.sssp import SSSP_UNREACHABLE, single_source_shortest_paths
from repro.graph.graph import Graph


def weighted_graph(edges, directed=False, vertices=None):
    return Graph.from_edges(
        [(s, d) for s, d, _ in edges],
        directed=directed,
        weights=[w for _, _, w in edges],
        vertices=vertices,
    )


class TestAnalyticCases:
    def test_weighted_path(self):
        g = weighted_graph([(0, 1, 2.0), (1, 2, 3.0)])
        dist = single_source_shortest_paths(g, 0)
        assert dist[g.index_of(2)] == pytest.approx(5.0)

    def test_shortcut_preferred(self):
        # Direct edge weight 10 vs two-hop route weight 3.
        g = weighted_graph([(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)])
        dist = single_source_shortest_paths(g, 0)
        assert dist[g.index_of(2)] == pytest.approx(3.0)

    def test_source_distance_zero(self):
        g = weighted_graph([(0, 1, 5.0)])
        assert single_source_shortest_paths(g, 0)[g.index_of(0)] == 0.0

    def test_unreachable_infinite(self):
        g = weighted_graph([(0, 1, 1.0)], vertices=[0, 1, 9])
        dist = single_source_shortest_paths(g, 0)
        assert dist[g.index_of(9)] == SSSP_UNREACHABLE
        assert np.isinf(SSSP_UNREACHABLE)

    def test_zero_weight_edges(self):
        g = weighted_graph([(0, 1, 0.0), (1, 2, 0.0)])
        dist = single_source_shortest_paths(g, 0)
        assert dist[g.index_of(2)] == 0.0

    def test_double_precision(self):
        w = 0.1 + 1e-12
        g = weighted_graph([(0, 1, w)])
        assert single_source_shortest_paths(g, 0)[g.index_of(1)] == w


class TestDirected:
    def test_follows_direction(self):
        g = weighted_graph([(0, 1, 1.0), (2, 1, 1.0)], directed=True)
        dist = single_source_shortest_paths(g, 0)
        assert dist[g.index_of(2)] == SSSP_UNREACHABLE

    def test_asymmetric_routes(self):
        g = weighted_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 100.0)], directed=True
        )
        assert single_source_shortest_paths(g, 0)[g.index_of(2)] == 2.0
        assert single_source_shortest_paths(g, 2)[g.index_of(1)] == 101.0


class TestValidation:
    def test_unweighted_graph_rejected(self, path5):
        with pytest.raises(GraphFormatError, match="weighted"):
            single_source_shortest_paths(path5, 0)

    def test_unknown_source(self):
        g = weighted_graph([(0, 1, 1.0)])
        with pytest.raises(GraphFormatError, match="source vertex"):
            single_source_shortest_paths(g, 42)


class TestAgainstNetworkx:
    def test_matches_networkx(self, er_weighted, nx_converter):
        import networkx as nx

        source = int(er_weighted.vertex_ids[0])
        ours = single_source_shortest_paths(er_weighted, source)
        expected = nx.single_source_dijkstra_path_length(
            nx_converter(er_weighted), source
        )
        for idx in range(er_weighted.num_vertices):
            vid = er_weighted.id_of(idx)
            if vid in expected:
                assert ours[idx] == pytest.approx(expected[vid], rel=1e-12)
            else:
                assert ours[idx] == SSSP_UNREACHABLE
