"""Tests for the output-equivalence validation rules."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.algorithms.validation import (
    EpsilonMatchRule,
    EquivalenceMatchRule,
    ExactMatchRule,
    validate_output,
    validation_rule_for,
)


class TestExactMatch:
    def test_equal_passes(self):
        ExactMatchRule().check(np.array([1, 2, 3]), np.array([1, 2, 3]))

    def test_mismatch_raises(self):
        with pytest.raises(ValidationError, match="mismatching"):
            ExactMatchRule().check(np.array([1, 2, 3]), np.array([1, 9, 3]))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="shape"):
            ExactMatchRule().check(np.array([1, 2]), np.array([1, 2, 3]))

    def test_error_reports_first_index(self):
        with pytest.raises(ValidationError, match="dense index 1"):
            ExactMatchRule().check(np.array([1, 2, 3]), np.array([1, 9, 3]))


class TestEpsilonMatch:
    def test_within_tolerance_passes(self):
        EpsilonMatchRule(1e-4).check(
            np.array([1.0, 2.0]), np.array([1.00005, 2.0])
        )

    def test_beyond_tolerance_raises(self):
        with pytest.raises(ValidationError, match="epsilon"):
            EpsilonMatchRule(1e-4).check(np.array([1.0]), np.array([1.01]))

    def test_relative_not_absolute(self):
        # 1e-6 absolute error on a value of 1e-2 is fine at rel 1e-4...
        EpsilonMatchRule(1e-4).check(np.array([0.010001]), np.array([0.01]))
        # ...but the same absolute error on 1e-6 is 100% relative error.
        with pytest.raises(ValidationError):
            EpsilonMatchRule(1e-4).check(np.array([2e-6]), np.array([1e-6]))

    def test_matching_infinities_pass(self):
        inf = float("inf")
        EpsilonMatchRule().check(np.array([1.0, inf]), np.array([1.0, inf]))

    def test_infinity_vs_finite_raises(self):
        with pytest.raises(ValidationError, match="finiteness"):
            EpsilonMatchRule().check(
                np.array([float("inf")]), np.array([42.0])
            )

    def test_zero_equals_zero(self):
        EpsilonMatchRule().check(np.array([0.0]), np.array([0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="shape"):
            EpsilonMatchRule().check(np.array([1.0]), np.array([1.0, 2.0]))


class TestEquivalenceMatch:
    def test_identical_partition_passes(self):
        EquivalenceMatchRule().check(np.array([0, 0, 5]), np.array([0, 0, 5]))

    def test_relabeled_partition_passes(self):
        # Same partition, different label values: still equivalent.
        EquivalenceMatchRule().check(
            np.array([7, 7, 9]), np.array([0, 0, 5])
        )

    def test_merged_groups_raise(self):
        with pytest.raises(ValidationError):
            EquivalenceMatchRule().check(
                np.array([1, 1, 1]), np.array([0, 0, 5])
            )

    def test_split_groups_raise(self):
        with pytest.raises(ValidationError):
            EquivalenceMatchRule().check(
                np.array([1, 2, 3]), np.array([0, 0, 5])
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError, match="shape"):
            EquivalenceMatchRule().check(np.array([1]), np.array([1, 2]))


class TestRuleAssignment:
    @pytest.mark.parametrize(
        "algorithm,rule_name",
        [
            ("bfs", "exact"),
            ("pr", "epsilon"),
            ("wcc", "equivalence"),
            ("cdlp", "equivalence"),
            ("lcc", "epsilon"),
            ("sssp", "epsilon"),
        ],
    )
    def test_paper_rule_mapping(self, algorithm, rule_name):
        assert validation_rule_for(algorithm).name == rule_name

    def test_unknown_algorithm(self):
        with pytest.raises(ValidationError, match="no validation rule"):
            validation_rule_for("pagerank2000")

    def test_validate_output_dispatch(self):
        validate_output("bfs", np.array([0, 1]), np.array([0, 1]))
        with pytest.raises(ValidationError):
            validate_output("bfs", np.array([0, 1]), np.array([0, 2]))
