"""Tests for PageRank."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.algorithms.pagerank import pagerank
from repro.graph.generators import complete_graph, cycle_graph, star_graph
from repro.graph.graph import Graph


class TestInvariants:
    def test_ranks_sum_to_one(self, er_directed):
        ranks = pagerank(er_directed, iterations=40)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)

    def test_ranks_positive(self, er_undirected):
        assert np.all(pagerank(er_undirected) > 0)

    def test_symmetric_graph_uniform(self):
        ranks = pagerank(cycle_graph(10), iterations=50)
        assert np.allclose(ranks, 0.1)

    def test_complete_graph_uniform(self):
        ranks = pagerank(complete_graph(5), iterations=50)
        assert np.allclose(ranks, 0.2)

    def test_hub_ranks_highest(self):
        g = star_graph(8)
        ranks = pagerank(g, iterations=50)
        hub = g.index_of(0)
        assert np.argmax(ranks) == hub

    def test_zero_iterations_is_uniform(self, er_undirected):
        ranks = pagerank(er_undirected, iterations=0)
        assert np.allclose(ranks, 1.0 / er_undirected.num_vertices)

    def test_deterministic(self, er_directed):
        a = pagerank(er_directed)
        b = pagerank(er_directed)
        assert np.array_equal(a, b)


class TestDanglingVertices:
    def test_dangling_mass_redistributed(self):
        # 0 -> 1, vertex 1 is dangling; rank must still sum to 1.
        g = Graph.from_edges([(0, 1)], directed=True)
        ranks = pagerank(g, iterations=60)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)
        # The sink receives everything the source passes on.
        assert ranks[g.index_of(1)] > ranks[g.index_of(0)]

    def test_all_dangling_uniform(self):
        g = Graph.from_edges([], directed=True, vertices=[0, 1, 2])
        ranks = pagerank(g, iterations=20)
        assert np.allclose(ranks, 1.0 / 3.0)


class TestParameters:
    def test_damping_zero_uniform(self, er_directed):
        ranks = pagerank(er_directed, iterations=10, damping=0.0)
        assert np.allclose(ranks, 1.0 / er_directed.num_vertices)

    def test_invalid_damping(self, er_directed):
        with pytest.raises(GenerationError):
            pagerank(er_directed, damping=1.5)

    def test_negative_iterations(self, er_directed):
        with pytest.raises(GenerationError):
            pagerank(er_directed, iterations=-1)

    def test_empty_graph(self):
        g = Graph.from_edges([], directed=True, vertices=[])
        assert len(pagerank(g)) == 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("fixture", ["er_undirected", "er_directed"])
    def test_matches_networkx(self, fixture, request, nx_converter):
        import networkx as nx

        graph = request.getfixturevalue(fixture)
        ours = pagerank(graph, iterations=100)
        nxg = nx_converter(graph)
        expected = nx.pagerank(nxg, alpha=0.85, max_iter=200, tol=1e-12)
        for idx in range(graph.num_vertices):
            assert ours[idx] == pytest.approx(expected[graph.id_of(idx)], rel=1e-4)
