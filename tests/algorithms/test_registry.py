"""Tests for the algorithm registry and uniform dispatch."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, UnsupportedAlgorithmError
from repro.algorithms.registry import (
    ALGORITHMS,
    UNWEIGHTED_ALGORITHMS,
    WEIGHTED_ALGORITHMS,
    get_algorithm,
    run_reference,
)


class TestCatalog:
    def test_six_core_algorithms(self):
        assert set(ALGORITHMS) == {"bfs", "pr", "wcc", "cdlp", "lcc", "sssp"}

    def test_five_unweighted_one_weighted(self):
        # Paper §2.2.3: five core algorithms for unweighted graphs and a
        # single core algorithm for weighted graphs.
        assert len(UNWEIGHTED_ALGORITHMS) == 5
        assert WEIGHTED_ALGORITHMS == ("sssp",)

    def test_only_sssp_needs_weights(self):
        for acronym, spec in ALGORITHMS.items():
            assert spec.weighted == (acronym == "sssp")

    def test_lcc_is_quadratic(self):
        assert get_algorithm("lcc").quadratic_in_degree
        assert not get_algorithm("bfs").quadratic_in_degree

    def test_survey_classes_recorded(self):
        assert get_algorithm("bfs").survey_class == "Traversal"
        assert get_algorithm("sssp").survey_class == "Distances/Paths"

    def test_case_insensitive_lookup(self):
        assert get_algorithm("BFS").acronym == "bfs"

    def test_unknown_algorithm(self):
        with pytest.raises(UnsupportedAlgorithmError):
            get_algorithm("dijkstra")


class TestDispatch:
    def test_run_bfs(self, path5):
        depths = run_reference("bfs", path5, {"source_vertex": 0})
        assert depths.tolist() == [0, 1, 2, 3, 4]

    def test_bfs_requires_source(self, path5):
        with pytest.raises(ConfigurationError, match="source_vertex"):
            run_reference("bfs", path5)

    def test_sssp_requires_source(self, er_weighted):
        with pytest.raises(ConfigurationError, match="source_vertex"):
            run_reference("sssp", er_weighted)

    def test_pr_default_params(self, er_undirected):
        ranks = run_reference("pr", er_undirected)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-9)

    def test_pr_custom_iterations(self, er_undirected):
        a = run_reference("pr", er_undirected, {"iterations": 1})
        b = run_reference("pr", er_undirected, {"iterations": 50})
        assert not np.allclose(a, b)

    def test_unknown_parameter_rejected(self, er_undirected):
        with pytest.raises(ConfigurationError, match="unknown parameters"):
            run_reference("pr", er_undirected, {"alpha": 0.9})

    def test_wcc_takes_no_parameters(self, er_undirected):
        with pytest.raises(ConfigurationError):
            run_reference("wcc", er_undirected, {"iterations": 3})

    def test_all_runners_produce_per_vertex_output(self, er_weighted):
        for acronym in ALGORITHMS:
            params = (
                {"source_vertex": int(er_weighted.vertex_ids[0])}
                if acronym in ("bfs", "sssp")
                else {}
            )
            out = run_reference(acronym, er_weighted, params)
            assert len(out) == er_weighted.num_vertices
