"""Tests for weakly connected components."""

import numpy as np
import pytest

from repro.algorithms.wcc import weakly_connected_components
from repro.graph.generators import path_graph
from repro.graph.graph import Graph


class TestAnalyticCases:
    def test_connected_graph_single_label(self, path5):
        labels = weakly_connected_components(path5)
        assert len(np.unique(labels)) == 1

    def test_label_is_min_vertex_id(self):
        g = Graph.from_edges([(5, 9), (9, 7)], directed=False)
        labels = weakly_connected_components(g)
        assert np.all(labels == 5)

    def test_two_components(self, two_triangles):
        labels = weakly_connected_components(two_triangles)
        assert len(np.unique(labels)) == 2
        assert labels[two_triangles.index_of(0)] == 0
        assert labels[two_triangles.index_of(10)] == 10

    def test_isolated_vertices_own_component(self):
        g = Graph.from_edges([(0, 1)], directed=False, vertices=[0, 1, 5, 6])
        labels = weakly_connected_components(g)
        assert labels[g.index_of(5)] == 5
        assert labels[g.index_of(6)] == 6

    def test_empty_graph(self):
        g = Graph.from_edges([], directed=True, vertices=[])
        assert len(weakly_connected_components(g)) == 0

    def test_long_path_converges(self):
        # Pointer jumping must handle a 200-vertex chain quickly.
        labels = weakly_connected_components(path_graph(200))
        assert np.all(labels == 0)


class TestDirectedIgnoresDirection:
    def test_directed_chain_is_one_component(self):
        g = Graph.from_edges([(0, 1), (2, 1)], directed=True)
        labels = weakly_connected_components(g)
        assert len(np.unique(labels)) == 1

    def test_antiparallel_star(self):
        g = Graph.from_edges([(1, 0), (2, 0), (0, 3)], directed=True)
        assert len(np.unique(weakly_connected_components(g))) == 1


class TestAgainstNetworkx:
    @pytest.mark.parametrize("fixture", ["er_undirected", "er_directed"])
    def test_matches_networkx(self, fixture, request, nx_converter):
        import networkx as nx

        graph = request.getfixturevalue(fixture)
        labels = weakly_connected_components(graph)
        nxg = nx_converter(graph)
        components = (
            nx.weakly_connected_components(nxg)
            if graph.directed
            else nx.connected_components(nxg)
        )
        for component in components:
            expected_label = min(component)
            for vid in component:
                assert labels[graph.index_of(vid)] == expected_label
