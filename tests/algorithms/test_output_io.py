"""Tests for reference-output file I/O and file-level validation."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError, ValidationError
from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search
from repro.algorithms.output_io import (
    align_output,
    read_output,
    validate_output_file,
    write_output,
)
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import single_source_shortest_paths


class TestRoundTrip:
    def test_bfs_with_unreachable(self, two_triangles, tmp_path):
        depths = breadth_first_search(two_triangles, 0)
        path = write_output(two_triangles, depths, tmp_path / "bfs.out",
                            algorithm="bfs")
        mapping = read_output(path, algorithm="bfs")
        assert mapping[10] == BFS_UNREACHABLE
        aligned = align_output(two_triangles, mapping, algorithm="bfs")
        assert np.array_equal(aligned, depths)

    def test_pagerank_float_precision(self, er_undirected, tmp_path):
        ranks = pagerank(er_undirected, iterations=20)
        path = write_output(er_undirected, ranks, tmp_path / "pr.out",
                            algorithm="pr")
        aligned = align_output(
            er_undirected, read_output(path, algorithm="pr"), algorithm="pr"
        )
        # repr round-trip is bit exact for doubles.
        assert np.array_equal(aligned, ranks)

    def test_sssp_infinity_spelled_out(self, tmp_path):
        from repro.graph.graph import Graph

        g = Graph.from_edges([(0, 1)], directed=False, weights=[1.0],
                             vertices=[0, 1, 5])
        dist = single_source_shortest_paths(g, 0)
        path = write_output(g, dist, tmp_path / "sssp.out", algorithm="sssp")
        assert "infinity" in path.read_text()
        mapping = read_output(path, algorithm="sssp")
        assert mapping[5] == float("inf")


class TestValidationErrors:
    def test_wrong_length_rejected(self, path5, tmp_path):
        with pytest.raises(ValidationError, match="values for"):
            write_output(path5, np.array([1, 2]), tmp_path / "x", algorithm="bfs")

    def test_malformed_line(self, tmp_path):
        (tmp_path / "bad.out").write_text("0 1 2\n")
        with pytest.raises(GraphFormatError, match="expected 2 fields"):
            read_output(tmp_path / "bad.out", algorithm="bfs")

    def test_duplicate_vertex(self, tmp_path):
        (tmp_path / "dup.out").write_text("0 1\n0 2\n")
        with pytest.raises(GraphFormatError, match="duplicate vertex"):
            read_output(tmp_path / "dup.out", algorithm="bfs")

    def test_non_numeric_value(self, tmp_path):
        (tmp_path / "bad.out").write_text("0 abc\n")
        with pytest.raises(GraphFormatError):
            read_output(tmp_path / "bad.out", algorithm="pr")

    def test_align_missing_vertex(self, path5):
        with pytest.raises(ValidationError, match="missing"):
            align_output(path5, {0: 1, 1: 2}, algorithm="bfs")

    def test_align_extra_vertex(self, path5):
        mapping = {int(v): 0 for v in path5.vertex_ids}
        mapping[999] = 0
        with pytest.raises(ValidationError, match="extra"):
            align_output(path5, mapping, algorithm="bfs")


class TestValidateOutputFile:
    def test_valid_file_passes(self, er_undirected, tmp_path):
        depths = breadth_first_search(er_undirected, 0)
        path = write_output(er_undirected, depths, tmp_path / "out",
                            algorithm="bfs")
        validate_output_file(er_undirected, path, depths, algorithm="bfs")

    def test_tampered_file_fails(self, er_undirected, tmp_path):
        depths = breadth_first_search(er_undirected, 0)
        tampered = depths.copy()
        tampered[3] += 1
        path = write_output(er_undirected, tampered, tmp_path / "out",
                            algorithm="bfs")
        with pytest.raises(ValidationError):
            validate_output_file(er_undirected, path, depths, algorithm="bfs")

    def test_relabeled_wcc_file_passes(self, two_triangles, tmp_path):
        from repro.algorithms.wcc import weakly_connected_components

        labels = weakly_connected_components(two_triangles)
        relabeled = np.where(labels == 0, 777, labels)
        path = write_output(two_triangles, relabeled, tmp_path / "out",
                            algorithm="wcc")
        validate_output_file(two_triangles, path, labels, algorithm="wcc")
