"""Tests for the extension algorithms (global metrics)."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.algorithms.extras import (
    assortativity,
    average_clustering_coefficient,
    degree_distribution,
    diameter,
    estimate_diameter,
    triangle_count,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestTriangleCount:
    def test_complete_graph(self):
        # K5 has C(5,3) = 10 triangles.
        assert triangle_count(complete_graph(5)) == 10

    def test_triangle(self):
        assert triangle_count(cycle_graph(3)) == 1

    def test_square_has_none(self):
        assert triangle_count(cycle_graph(4)) == 0

    def test_star_has_none(self):
        assert triangle_count(star_graph(10)) == 0

    def test_directed_cycle_counts_as_triangle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        assert triangle_count(g) == 1

    def test_matches_networkx(self, er_undirected, nx_converter):
        import networkx as nx

        ours = triangle_count(er_undirected)
        theirs = sum(nx.triangles(nx_converter(er_undirected)).values()) // 3
        assert ours == theirs

    def test_consistent_with_lcc(self, er_undirected):
        # Sum over vertices of lcc(v)*d(v)*(d(v)-1) equals 6*T for
        # undirected graphs (each triangle counted twice at 3 vertices).
        from repro.algorithms.lcc import local_clustering_coefficient

        lcc = local_clustering_coefficient(er_undirected)
        degrees = er_undirected.degrees().astype(float)
        links = (lcc * degrees * (degrees - 1)).sum()
        assert links == pytest.approx(6 * triangle_count(er_undirected))


class TestDiameter:
    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_cycle(self):
        assert diameter(cycle_graph(8)) == 4

    def test_complete(self):
        assert diameter(complete_graph(5)) == 1

    def test_star(self):
        assert diameter(star_graph(6)) == 2

    def test_disconnected_uses_largest_finite(self, two_triangles):
        assert diameter(two_triangles) == 1

    def test_empty_rejected(self):
        empty = Graph.from_edges([], directed=False, vertices=[])
        with pytest.raises(GraphFormatError):
            diameter(empty)

    def test_directed_measured_undirected(self):
        g = Graph.from_edges([(0, 1), (2, 1)], directed=True)
        assert diameter(g) == 2

    def test_matches_networkx(self, grid4x5, nx_converter):
        import networkx as nx

        assert diameter(grid4x5) == nx.diameter(nx_converter(grid4x5))


class TestEstimateDiameter:
    def test_exact_on_trees(self):
        from repro.graph.generators import binary_tree

        tree = binary_tree(4)
        assert estimate_diameter(tree, seed=1) == diameter(tree)

    def test_lower_bound(self, er_undirected):
        assert estimate_diameter(er_undirected, seed=2) <= diameter(er_undirected)

    def test_usually_tight_on_random_graphs(self, er_undirected):
        est = estimate_diameter(er_undirected, sweeps=6, seed=3)
        assert est >= diameter(er_undirected) - 1

    def test_deterministic(self, er_undirected):
        a = estimate_diameter(er_undirected, seed=5)
        b = estimate_diameter(er_undirected, seed=5)
        assert a == b


class TestClusteringAndDegrees:
    def test_average_cc_complete(self):
        assert average_clustering_coefficient(complete_graph(4)) == 1.0

    def test_degree_distribution_star(self):
        dist = degree_distribution(star_graph(5))
        assert dist == {1: 5, 5: 1}

    def test_degree_distribution_sums_to_vertices(self, er_undirected):
        dist = degree_distribution(er_undirected)
        assert sum(dist.values()) == er_undirected.num_vertices


class TestAssortativity:
    def test_star_is_disassortative(self):
        assert assortativity(star_graph(10)) < -0.5

    def test_regular_graph_degenerate(self):
        assert assortativity(cycle_graph(8)) == 0.0

    def test_no_edges(self):
        g = Graph.from_edges([], directed=False, vertices=[0, 1])
        assert assortativity(g) == 0.0

    def test_matches_networkx(self, er_undirected, nx_converter):
        import networkx as nx

        ours = assortativity(er_undirected)
        theirs = nx.degree_assortativity_coefficient(
            nx_converter(er_undirected)
        )
        assert ours == pytest.approx(theirs, abs=0.05)
