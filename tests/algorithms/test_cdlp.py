"""Tests for community detection using label propagation."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.algorithms.cdlp import community_detection_lp
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def two_cliques_with_bridge(k=5):
    """Two k-cliques {0..k-1} and {k..2k-1} joined by one edge."""
    builder = GraphBuilder(directed=False)
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                builder.add_edge(base + i, base + j)
    builder.add_edge(k - 1, k)
    return builder.build()


class TestCommunityStructure:
    def test_two_cliques_found(self):
        g = two_cliques_with_bridge(5)
        labels = community_detection_lp(g, iterations=10)
        first = {labels[g.index_of(v)] for v in range(5)}
        second = {labels[g.index_of(v)] for v in range(5, 10)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_clique_label_is_min_id(self):
        g = two_cliques_with_bridge(5)
        labels = community_detection_lp(g, iterations=10)
        assert labels[g.index_of(0)] == 0

    def test_isolated_vertex_keeps_own_label(self):
        g = Graph.from_edges([(0, 1)], directed=False, vertices=[0, 1, 7])
        labels = community_detection_lp(g, iterations=5)
        assert labels[g.index_of(7)] == 7

    def test_zero_iterations_identity(self, er_undirected):
        labels = community_detection_lp(er_undirected, iterations=0)
        assert np.array_equal(labels, er_undirected.vertex_ids)


class TestDeterminism:
    def test_repeatable(self, er_undirected):
        a = community_detection_lp(er_undirected, iterations=8)
        b = community_detection_lp(er_undirected, iterations=8)
        assert np.array_equal(a, b)

    def test_tie_break_is_min_label(self):
        # Vertex 2 hears labels {0, 1}, one neighbor each: must pick 0.
        g = Graph.from_edges([(0, 2), (1, 2)], directed=False)
        labels = community_detection_lp(g, iterations=1)
        assert labels[g.index_of(2)] == 0

    def test_single_iteration_star(self):
        # After one synchronous round on a star, the hub adopts the
        # smallest leaf label and every leaf adopts the hub's label.
        g = Graph.from_edges([(5, 1), (5, 2), (5, 3)], directed=False)
        labels = community_detection_lp(g, iterations=1)
        assert labels[g.index_of(5)] == 1
        for leaf in (1, 2, 3):
            assert labels[g.index_of(leaf)] == 5


class TestDirected:
    def test_hears_both_directions(self):
        # 0 -> 2 and 2 -> 1: vertex 2 hears in-neighbor 0 and
        # out-neighbor 1; min-frequency tie-break picks label 0.
        g = Graph.from_edges([(0, 2), (2, 1)], directed=True)
        labels = community_detection_lp(g, iterations=1)
        assert labels[g.index_of(2)] == 0

    def test_bidirectional_counts_twice(self):
        # Vertex 3 has a bidirectional link to 9 (counts twice) and
        # single links from 0 and 1: label 9 wins with count 2.
        g = Graph.from_edges([(3, 9), (9, 3), (0, 3), (1, 3)], directed=True)
        labels = community_detection_lp(g, iterations=1)
        assert labels[g.index_of(3)] == 9


class TestParameters:
    def test_negative_iterations(self, er_undirected):
        with pytest.raises(GenerationError):
            community_detection_lp(er_undirected, iterations=-2)

    def test_empty_graph(self):
        g = Graph.from_edges([], directed=False, vertices=[])
        assert len(community_detection_lp(g)) == 0

    def test_early_convergence_stops(self):
        # A clique converges in 2 rounds; 100 iterations must give the
        # same answer (the loop exits at the fixpoint).
        g = two_cliques_with_bridge(4)
        a = community_detection_lp(g, iterations=3)
        b = community_detection_lp(g, iterations=100)
        assert np.array_equal(a, b)
