"""Tests for the local clustering coefficient."""

import numpy as np
import pytest

from repro.algorithms.lcc import local_clustering_coefficient
from repro.graph.builder import GraphBuilder
from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.graph import Graph


class TestAnalyticCases:
    def test_complete_graph_all_ones(self):
        assert np.allclose(local_clustering_coefficient(complete_graph(5)), 1.0)

    def test_star_all_zero(self):
        assert np.all(local_clustering_coefficient(star_graph(8)) == 0.0)

    def test_path_all_zero(self):
        assert np.all(local_clustering_coefficient(path_graph(6)) == 0.0)

    def test_degree_below_two_is_zero(self):
        g = Graph.from_edges([(0, 1)], directed=False, vertices=[0, 1, 2])
        assert np.all(local_clustering_coefficient(g) == 0.0)

    def test_triangle_plus_pendant(self):
        # Vertex 0 is in a triangle {0,1,2} and has pendant 3:
        # N(0) = {1,2,3}, links among them = 1 edge = 2 ordered pairs,
        # lcc(0) = 2 / (3*2) = 1/3.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (0, 3)], directed=False)
        lcc = local_clustering_coefficient(g)
        assert lcc[g.index_of(0)] == pytest.approx(1 / 3)
        assert lcc[g.index_of(1)] == pytest.approx(1.0)
        assert lcc[g.index_of(3)] == 0.0

    def test_values_in_unit_interval(self, er_undirected):
        lcc = local_clustering_coefficient(er_undirected)
        assert np.all(lcc >= 0.0)
        assert np.all(lcc <= 1.0)

    def test_empty_graph(self):
        g = Graph.from_edges([], directed=False, vertices=[])
        assert len(local_clustering_coefficient(g)) == 0


class TestDirected:
    def test_directed_triangle(self):
        # Cycle 0->1->2->0: N(v) unions in+out = 2 neighbors; among them
        # exactly one directed edge exists; lcc = 1/(2*1) = 0.5.
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0)], directed=True)
        assert np.allclose(local_clustering_coefficient(g), 0.5)

    def test_directed_triangle_with_reciprocal(self):
        # Adding the reverse edge 1->0 doesn't change neighborhoods but
        # adds one more edge among N(2) = {0,1}: lcc(2) = 2/2 = 1.
        g = Graph.from_edges([(0, 1), (1, 0), (1, 2), (2, 0)], directed=True)
        lcc = local_clustering_coefficient(g)
        assert lcc[g.index_of(2)] == pytest.approx(1.0)

    def test_matches_networkx_on_directed(self, er_directed, nx_converter):
        # networkx's directed clustering (Fagiolo) differs from the
        # Graphalytics definition, but both agree on the zero set.
        import networkx as nx

        ours = local_clustering_coefficient(er_directed)
        theirs = nx.clustering(nx_converter(er_directed))
        for idx in range(er_directed.num_vertices):
            vid = er_directed.id_of(idx)
            if theirs[vid] == 0:
                assert ours[idx] == 0.0


class TestAgainstNetworkx:
    def test_matches_networkx_undirected(self, er_undirected, nx_converter):
        import networkx as nx

        ours = local_clustering_coefficient(er_undirected)
        expected = nx.clustering(nx_converter(er_undirected))
        for idx in range(er_undirected.num_vertices):
            assert ours[idx] == pytest.approx(
                expected[er_undirected.id_of(idx)], abs=1e-12
            )
