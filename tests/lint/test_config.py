"""Configuration loading from pyproject.toml (tomllib and fallback)."""

from pathlib import Path

from repro.lint import LintConfig, find_project_root, load_config
from repro.lint.config import _parse_toml_minimal

REPO_ROOT = Path(__file__).resolve().parents[2]

SAMPLE = """
[project]
name = "demo"

[tool.graphalytics.lint]
baseline = "custom-baseline.json"
select = ["DET001", "CON002"]
ignore = ["REP001"]
exclude = ["tests/*"]

[tool.graphalytics.lint.scopes]
DET001 = ["algorithms", "engines"]
"""


class TestMinimalTomlParser:
    def test_nested_sections_and_values(self):
        data = _parse_toml_minimal(SAMPLE)
        section = data["tool"]["graphalytics"]["lint"]
        assert section["baseline"] == "custom-baseline.json"
        assert section["select"] == ["DET001", "CON002"]
        assert section["ignore"] == ["REP001"]
        assert section["scopes"]["DET001"] == ["algorithms", "engines"]

    def test_comments_and_noise_ignored(self):
        data = _parse_toml_minimal("# comment\n[a]\nkey = 'v'  # trailing\n")
        assert data == {"a": {"key": "v"}}


class TestLoadConfig:
    def test_repo_pyproject_is_read(self):
        config = load_config(REPO_ROOT)
        assert config.root == REPO_ROOT
        assert config.baseline == "lint-baseline.json"
        assert config.scopes["DET001"] == ["algorithms", "engines"]
        assert any("fixtures" in pattern for pattern in config.exclude)

    def test_custom_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(SAMPLE, encoding="utf-8")
        config = load_config(tmp_path)
        assert config.baseline == "custom-baseline.json"
        assert config.select == ["DET001", "CON002"]
        assert config.baseline_path == tmp_path / "custom-baseline.json"

    def test_no_project_root_yields_defaults(self, tmp_path):
        # tmp_path has no pyproject.toml anywhere above it that counts
        # as *this* project's; simulate by pointing below a bare dir.
        config = LintConfig()
        assert config.root is None
        assert config.baseline_path == Path("lint-baseline.json")

    def test_find_project_root(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\n")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path
