"""Phase 1 of the whole-program analyzer: ProjectModel + CallGraph.

Built over the ``raceproj`` fixture tree — a miniature dispatcher /
worker / jobs / state project — so every assertion exercises the same
resolution paths the RACE rules depend on.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, LintEngine, ProjectModel
from repro.lint.core import Module
from repro.lint.project import ModuleInfo

REPO_ROOT = Path(__file__).resolve().parents[2]
RACEPROJ = Path(__file__).resolve().parent / "fixtures" / "raceproj"


def _build(paths):
    engine = LintEngine(LintConfig(root=REPO_ROOT, select=["DET002"]))
    modules = []
    for path in engine.collect_files([Path(p) for p in paths]):
        module, syntax = engine._parse_module(path)
        assert syntax is None
        modules.append(module)
    return ProjectModel.build(modules)


@pytest.fixture(scope="module")
def project():
    return _build([RACEPROJ])


class TestModuleNames:
    def test_src_prefix_dropped(self):
        assert ProjectModel.module_name("src/repro/runtime/pool.py") == (
            "repro.runtime.pool"
        )

    def test_package_init_names_the_package(self):
        assert ProjectModel.module_name("src/repro/trace/__init__.py") == (
            "repro.trace"
        )

    def test_fixture_tree_names(self, project):
        assert any(name.endswith("raceproj.jobs") for name in project.modules)

    def test_suffix_resolution_matches_import_syntax(self, project):
        info = project.resolve_module("raceproj.state")
        assert info is not None
        assert info.name.endswith("raceproj.state")


class TestSymbolTables:
    def test_import_bindings_recorded(self, project):
        jobs = project.resolve_module("raceproj.jobs")
        binding = jobs.imports["CACHE"]
        assert binding.module == "raceproj.state"
        assert binding.symbol == "CACHE"

    def test_module_alias_recorded(self, project):
        worker = project.resolve_module("raceproj.worker")
        binding = worker.imports["mp"]
        assert binding.module == "multiprocessing"
        assert binding.symbol is None

    def test_functions_keyed_project_wide(self, project):
        jobs = project.resolve_module("raceproj.jobs")
        assert set(jobs.functions) == {"run_job", "record", "helper_total"}
        assert jobs.functions["run_job"].key.endswith("raceproj.jobs.run_job")

    def test_mutable_global_inventory_and_kinds(self, project):
        state = project.resolve_module("raceproj.state")
        assert set(state.mutable_globals) == {"CACHE", "RESULTS", "_SETTINGS"}
        assert state.mutable_globals["CACHE"].kind == "container"
        resources = project.resolve_module("raceproj.resources")
        assert resources.mutable_globals["LOG_HANDLE"].kind == "file"
        assert resources.mutable_globals["LOG_HANDLE"].fork_unsafe
        assert resources.mutable_globals["STATE_LOCK"].kind == "lock"

    def test_immutable_global_not_inventoried(self, project):
        state = project.resolve_module("raceproj.state")
        assert "LIMIT" not in state.mutable_globals
        assert "LIMIT" in state.module_assigns

    def test_resolve_global_follows_imports(self, project):
        jobs = project.resolve_module("raceproj.jobs")
        resolved = project.resolve_global(jobs, "CACHE")
        assert resolved is not None
        assert resolved.module.name.endswith("raceproj.state")


class TestCallGraph:
    def test_worker_entrypoint_detected(self, project):
        (key,) = project.worker_entrypoints
        assert key.endswith("raceproj.worker._worker_main")
        assert project.worker_entrypoints[key] == "Process target"

    def test_reachability_crosses_modules(self, project):
        reachable = {k.rsplit(".", 1)[-1] for k in project.worker_reachable}
        assert {"_worker_main", "run_job", "record", "helper_total"} <= reachable

    def test_dispatcher_side_not_reachable(self, project):
        assert not any(
            key.endswith("dispatcher_side_mutation")
            for key in project.worker_reachable
        )

    def test_reverse_closure(self, project):
        graph = project.call_graph
        (record_key,) = [k for k in graph.nodes if k.endswith("jobs.record")]
        callers = graph.reaches({record_key})
        assert any(k.endswith("_worker_main") for k in callers)


class TestLocalResolution:
    def test_relative_import_climbs_packages(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("VALUE = {}\n", encoding="utf-8")
        (pkg / "b.py").write_text(
            "from .a import VALUE\n\n\ndef touch():\n    return VALUE\n",
            encoding="utf-8",
        )
        module = Module(pkg / "b.py", "pkg/b.py", (pkg / "b.py").read_text())
        info = ModuleInfo("pkg.b", module)
        assert info.imports["VALUE"].module == "pkg.a"

    def test_function_at_maps_nested_defs_to_outer(self, tmp_path):
        source = "def outer():\n    def inner():\n        pass\n    return inner\n"
        path = tmp_path / "m.py"
        path.write_text(source, encoding="utf-8")
        module = Module(path, "m.py", source)
        info = ModuleInfo("m", module)
        inner = info.functions["outer.inner"]
        assert info.function_at(inner.node).qualname == "outer"
