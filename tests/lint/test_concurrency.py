"""The RACE rule family and the interprocedural ROB001/OBS001 passes."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _run(paths, select, root=REPO_ROOT, scopes=None):
    config = LintConfig(root=root, select=list(select))
    if scopes:
        config.scopes = scopes
    return LintEngine(config).run([Path(p) for p in paths])


def _triples(findings):
    return [(f.rule_id, f.path.rsplit("/", 1)[-1], f.line) for f in findings]


class TestRace001WorkerGlobalMutation:
    def test_worker_reachable_mutations_flagged(self):
        findings = _run([FIXTURES / "raceproj"], ["RACE001"])
        assert _triples(findings) == [
            ("RACE001", "jobs.py", 8),
            ("RACE001", "jobs.py", 14),
        ]
        assert all(f.severity == "error" for f in findings)

    def test_messages_name_state_owner_and_entrypoint(self):
        by_line = {f.line: f.message for f in _run([FIXTURES / "raceproj"], ["RACE001"])}
        assert "`CACHE`" in by_line[8] and "raceproj.state" in by_line[8]
        assert "_worker_main" in by_line[8]
        assert "`.append()`" in by_line[14] and "`RESULTS`" in by_line[14]

    def test_dispatcher_side_mutation_not_flagged(self):
        findings = _run([FIXTURES / "raceproj"], ["RACE001"])
        assert all(f.symbol != "dispatcher_side_mutation" for f in findings)

    def test_local_state_never_flagged(self):
        findings = _run([FIXTURES / "raceproj"], ["RACE001"])
        assert all(f.symbol != "helper_total" for f in findings)

    def test_no_findings_without_project_phase(self):
        config = LintConfig(root=REPO_ROOT, select=["RACE001"], project=False)
        assert LintEngine(config).run([FIXTURES / "raceproj"]) == []


class TestRace002UnpicklablePayloads:
    def test_exact_findings(self):
        findings = _run(
            [FIXTURES / "runtime" / "race002_case.py"], ["RACE002"]
        )
        assert _triples(findings) == [
            ("RACE002", "race002_case.py", 5),
            ("RACE002", "race002_case.py", 6),
            ("RACE002", "race002_case.py", 14),
            ("RACE002", "race002_case.py", 19),
            ("RACE002", "race002_case.py", 24),
        ]
        assert all(f.severity == "error" for f in findings)

    def test_clean_payload_shapes_pass(self):
        findings = _run(
            [FIXTURES / "runtime" / "race002_case.py"], ["RACE002"]
        )
        # Plain dicts, materialized lists, locally-called helpers and
        # non-channel receivers all stay silent.
        assert {f.symbol for f in findings} == {
            "dispatch", "submit_all", "stream_results", "spawn"
        }
        assert all(f.symbol != "unrelated_send" for f in findings)

    def test_out_of_scope_module_not_checked(self):
        findings = _run([FIXTURES / "raceproj" / "jobs.py"], ["RACE002"])
        assert findings == []


class TestRace003ForkUnsafeImportResources:
    def test_import_time_handle_flagged_at_creation_site(self):
        findings = _run([FIXTURES / "raceproj"], ["RACE003"])
        assert _triples(findings) == [
            ("RACE003", "resources.py", 5),
        ]
        finding = findings[0]
        assert finding.severity == "warning"
        assert "`LOG_HANDLE`" in finding.message
        assert "jobs.record" in finding.message

    def test_unused_lock_not_flagged(self):
        # STATE_LOCK exists at import time but no worker-reachable code
        # touches it: creation alone is not the violation.
        findings = _run([FIXTURES / "raceproj"], ["RACE003"])
        assert all("STATE_LOCK" not in f.message for f in findings)


class TestPartitionedFixtureProject:
    """``partitionedproj`` mirrors the shard engine's message-send
    entrypoints: a ``Process(target=shard_main)`` fork boundary, a racy
    module-state send path, the clean per-process ``Outbox``, and pipe
    payload shapes — the RACE family must split them exactly."""

    def test_shard_reachable_module_state_flagged(self):
        findings = _run([FIXTURES / "partitionedproj"], ["RACE001"])
        assert _triples(findings) == [
            ("RACE001", "exchange.py", 9),
            ("RACE001", "exchange.py", 10),
        ]
        by_line = {f.line: f.message for f in findings}
        assert "`SEQ_COUNTERS`" in by_line[9] and "shard_main" in by_line[9]
        assert "`.append()`" in by_line[10] and "`OUTBOX`" in by_line[10]

    def test_per_process_outbox_and_coordinator_side_stay_clean(self):
        # Outbox.send mutates only instance state, and
        # drain_coordinator_side mutates OUTBOX on the dispatcher side
        # of the fork: neither is a finding.
        findings = _run([FIXTURES / "partitionedproj"], ["RACE001"])
        assert {f.symbol for f in findings} == {"send_shared"}

    def test_pipe_payloads_must_be_plain_data(self):
        findings = _run([FIXTURES / "partitionedproj"], ["RACE002"])
        assert _triples(findings) == [
            ("RACE002", "shard.py", 18),
            ("RACE002", "shard.py", 22),
        ]
        assert {f.symbol for f in findings} == {
            "stream_batches", "send_progress_callback"
        }
        # The shard loop's plain-dict result send stays silent.
        assert all(f.symbol != "shard_main" for f in findings)

    def test_no_import_time_fork_unsafe_resources(self):
        assert _run([FIXTURES / "partitionedproj"], ["RACE003"]) == []

    def test_live_partitioned_engine_passes_the_family(self):
        findings = _run(
            [REPO_ROOT / "src" / "repro" / "engines" / "partitioned"],
            ["RACE001", "RACE002", "RACE003"],
        )
        assert findings == []


class TestRob001Interprocedural:
    @pytest.fixture
    def miniproject(self, tmp_path):
        # ROB001's scope includes the "lint" path segment, so every
        # fixture under tests/lint/ would be in scope; the helper must
        # live in a genuinely out-of-scope module, hence tmp_path.
        (tmp_path / "harness").mkdir()
        (tmp_path / "util").mkdir()
        (tmp_path / "util" / "disk.py").write_text(
            "def dump(path, data):\n"
            "    with open(path, 'w', encoding='utf-8') as handle:\n"
            "        handle.write(data)\n",
            encoding="utf-8",
        )
        (tmp_path / "harness" / "writer.py").write_text(
            "from util.disk import dump\n"
            "\n"
            "\n"
            "def save_report(path, data):\n"
            "    dump(path, data)\n",
            encoding="utf-8",
        )
        return tmp_path

    def test_helper_indirected_write_flagged_at_call_site(self, miniproject):
        findings = _run([miniproject], ["ROB001"], root=miniproject)
        assert _triples(findings) == [
            ("ROB001", "writer.py", 5),
        ]
        message = findings[0].message
        assert "util.disk.dump" in message
        assert "atomic_write" in message

    def test_old_syntactic_pass_misses_it(self, miniproject):
        config = LintConfig(root=miniproject, select=["ROB001"], project=False)
        assert LintEngine(config).run([miniproject]) == []


class TestObs001Interprocedural:
    def test_aliased_and_rebound_clocks_flagged(self):
        findings = _run([FIXTURES / "obsproj"], ["OBS001"])
        assert _triples(findings) == [
            ("OBS001", "clockmod.py", 14),
            ("OBS001", "clockmod.py", 18),
            ("OBS001", "meter.py", 7),
            ("OBS001", "meter.py", 9),
        ]
        by_line = {(f.path.rsplit("/", 1)[-1], f.line): f.message for f in findings}
        assert "import alias `_clk`" in by_line[("clockmod.py", 14)]
        assert "time.perf_counter" in by_line[("meter.py", 7)]

    def test_sleep_through_alias_not_flagged(self):
        findings = _run([FIXTURES / "obsproj"], ["OBS001"])
        assert all(f.symbol != "wait" for f in findings)

    def test_old_syntactic_pass_misses_all_of_it(self):
        config = LintConfig(root=REPO_ROOT, select=["OBS001"], project=False)
        assert LintEngine(config).run([FIXTURES / "obsproj"]) == []


class TestLiveTreeIsClean:
    def test_src_repro_has_no_unbaselined_race_findings(self):
        findings = _run(
            [REPO_ROOT / "src" / "repro"],
            ["RACE001", "RACE002", "RACE003"],
        )
        assert findings == []
