"""Shared helpers for the lint test suite."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture
def lint_fixture():
    """Run the engine over one fixture module; returns its findings."""

    def run(relative, select=None):
        config = LintConfig(root=REPO_ROOT, select=list(select or []))
        engine = LintEngine(config)
        return engine.run([FIXTURES / relative])

    return run
