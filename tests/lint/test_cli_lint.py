"""The ``graphalytics lint`` subcommand, end to end."""

import json

from repro.cli import main

BAD_SOURCE = """\
import random


def jitter():
    return random.random()
"""


class TestCleanTree:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_on_clean_tree(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] == 0
        assert payload["findings"] == []

    def test_explicit_path_argument(self, capsys):
        assert main(["lint", "src/repro"]) == 0


class TestViolations:
    def test_injected_violation_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "1 new finding" in out

    def test_json_format_reports_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] == 1
        assert payload["findings"][0]["rule"] == "DET002"
        assert payload["findings"][0]["line"] == 5

    def test_select_limits_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        assert main(["lint", str(bad), "--select", "CON002"]) == 0


class TestBaselineFlow:
    def test_write_then_pass_then_regress(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"

        assert main([
            "lint", str(bad), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.is_file()
        capsys.readouterr()

        # Grandfathered: the same finding no longer fails the run.
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        # A second, new violation still fails.
        bad.write_text(BAD_SOURCE + "\n\nx = random.shuffle([])\n",
                       encoding="utf-8")
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 1
        assert "shuffle" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", str(bad), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        capsys.readouterr()
        assert main([
            "lint", str(bad), "--baseline", str(baseline), "--no-baseline",
        ]) == 1

    def test_show_baselined_prints_covered_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad), "--baseline", str(baseline),
              "--write-baseline"])
        capsys.readouterr()
        assert main([
            "lint", str(bad), "--baseline", str(baseline), "--show-baselined",
        ]) == 0
        assert "(baselined)" in capsys.readouterr().out

    def test_fixed_baselined_finding_reported_stale(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad), "--baseline", str(baseline),
              "--write-baseline"])
        capsys.readouterr()

        # Fix the violation: the run passes but flags the dead entry.
        bad.write_text("import random\n\n\ndef jitter():\n    return 4\n",
                       encoding="utf-8")
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "--write-baseline" in out

    def test_stale_entries_in_json_payload(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad), "--baseline", str(baseline),
              "--write-baseline"])
        capsys.readouterr()
        bad.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", "--format", "json", str(bad),
                     "--baseline", str(baseline)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["stale"]) == 1
        assert "DET002" in payload["stale"][0]

    def test_v1_baseline_still_accepted(self, tmp_path, capsys):
        # A pre-migration baseline (fingerprints without occurrence
        # indices) is expanded on read; the run still passes.
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_SOURCE, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad), "--baseline", str(baseline),
              "--write-baseline"])
        capsys.readouterr()
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        legacy = {
            "version": 1,
            "fingerprints": {
                fp.rsplit("::", 1)[0]: count
                for fp, count in payload["fingerprints"].items()
            },
        }
        baseline.write_text(json.dumps(legacy), encoding="utf-8")
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0


class TestProjectPhaseFlag:
    # The committed raceproj fixture is excluded by pyproject's lint
    # excludes (the CLI loads them); a tmp copy of the same shape isn't.
    def _miniproject(self, tmp_path):
        (tmp_path / "state.py").write_text("CACHE = {}\n", encoding="utf-8")
        (tmp_path / "worker.py").write_text(
            "import multiprocessing as mp\n"
            "\n"
            "from state import CACHE\n"
            "\n"
            "\n"
            "def _worker_main(conn):\n"
            "    CACHE[1] = conn.recv()\n"
            "\n"
            "\n"
            "def spawn(conn):\n"
            "    mp.Process(target=_worker_main, args=(conn,)).start()\n",
            encoding="utf-8",
        )
        return tmp_path

    def test_project_rules_fire_by_default(self, tmp_path, capsys):
        project = self._miniproject(tmp_path)
        assert main([
            "lint", str(project), "--no-baseline", "--select", "RACE001",
        ]) == 1
        assert "RACE001" in capsys.readouterr().out

    def test_no_project_skips_whole_program_phase(self, tmp_path, capsys):
        project = self._miniproject(tmp_path)
        assert main([
            "lint", str(project), "--no-baseline", "--select", "RACE001",
            "--no-project",
        ]) == 0
        assert "clean" in capsys.readouterr().out


class TestListRules:
    def test_rule_table_printed(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "CON001",
                        "CON002", "EXC001", "REG001", "REP001"):
            assert rule_id in out
