"""ROB002: service/runtime writes must ride the fault-injection plane."""

from pathlib import Path

from repro.lint import LintConfig, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _run(paths, select, project=True):
    config = LintConfig(root=REPO_ROOT, select=list(select), project=project)
    return LintEngine(config).run([Path(p) for p in paths])


def _triples(findings):
    return sorted(
        (f.rule_id, f.path.rsplit("/", 1)[-1], f.line) for f in findings
    )


class TestRob002:
    def test_exact_findings(self):
        findings = _run([FIXTURES / "robproj"], ["ROB002"])
        assert _triples(findings) == [
            ("ROB002", "spool.py", 9),   # open(..., "w")
            ("ROB002", "spool.py", 14),  # .write_text()
            ("ROB002", "spool.py", 18),  # append open — not exempt here
            ("ROB002", "spool.py", 23),  # helper-indirected write
        ]
        assert all(f.severity == "error" for f in findings)

    def test_messages_point_at_the_plane(self):
        by_line = {
            f.line: f.message
            for f in _run([FIXTURES / "robproj"], ["ROB002"])
        }
        assert "fault-injection plane" in by_line[9]
        assert "atomic_write" in by_line[9]
        # The interprocedural finding names the tainted helper.
        assert "util.disk.dump" in by_line[23]
        assert "chaos plan" in by_line[23]

    def test_append_flagged_unlike_rob001(self):
        # ROB001 exempts appends (they never tear prior records);
        # ROB002 does not (an unreachable append is untested I/O).
        rob1 = {f.line for f in _run([FIXTURES / "robproj"], ["ROB001"])}
        rob2 = {f.line for f in _run([FIXTURES / "robproj"], ["ROB002"])}
        assert 18 in rob2
        assert 18 not in rob1

    def test_journal_module_is_exempt(self):
        findings = _run([FIXTURES / "robproj"], ["ROB002"])
        assert all("journal.py" not in f.path for f in findings)

    def test_reads_dynamic_modes_and_atomic_write_pass(self):
        lines = {f.line for f in _run([FIXTURES / "robproj"], ["ROB002"])}
        assert not lines & {27, 33, 38}

    def test_out_of_scope_helper_not_flagged_directly(self):
        findings = _run([FIXTURES / "robproj"], ["ROB002"])
        assert all("disk.py" not in f.path for f in findings)

    def test_interprocedural_needs_project_phase(self):
        lines = {
            f.line
            for f in _run([FIXTURES / "robproj"], ["ROB002"], project=False)
        }
        assert 23 not in lines
        assert {9, 14, 18} <= lines

    def test_shipped_service_and_runtime_are_clean(self):
        findings = _run(
            [REPO_ROOT / "src" / "repro" / "service",
             REPO_ROOT / "src" / "repro" / "runtime"],
            ["ROB002"],
        )
        assert findings == []
