"""Text and JSON reporters."""

import json

from repro.lint import Finding, render_json, render_text


def _finding(rule="DET001", message="msg"):
    return Finding(rule, "error", "a/b.py", 10, 5, message, "fn")


class TestTextReport:
    def test_clean_run(self):
        assert render_text([], []) == "lint: clean (0 findings)"

    def test_finding_line_format(self):
        text = render_text([_finding()])
        assert "a/b.py:10:5: DET001 msg [fn]" in text
        assert "lint: 1 new finding (DET001: 1)" in text

    def test_summary_counts_per_rule(self):
        text = render_text([_finding(), _finding(), _finding(rule="CON002")])
        assert "lint: 3 new findings (CON002: 1, DET001: 2)" in text

    def test_baselined_hidden_unless_verbose(self):
        quiet = render_text([], [_finding()])
        assert "a/b.py" not in quiet
        verbose = render_text([], [_finding()], verbose_baseline=True)
        assert "(baselined)" in verbose


class TestJsonReport:
    def test_document_shape(self):
        payload = json.loads(render_json([_finding()], [_finding("CON002")]))
        assert payload["version"] == 1
        assert payload["new"] == 1
        assert payload["baselined"] == 1
        assert payload["counts"] == {"DET001": 1}
        flags = [row["baselined"] for row in payload["findings"]]
        assert flags == [False, True]

    def test_empty_document(self):
        payload = json.loads(render_json([], []))
        assert payload["new"] == 0 and payload["findings"] == []
