"""SRV001: blocking calls inside registered async request handlers."""

from pathlib import Path

from repro.lint import LintConfig, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _run(paths, select, project=True):
    config = LintConfig(root=REPO_ROOT, select=list(select), project=project)
    return LintEngine(config).run([Path(p) for p in paths])


def _triples(findings):
    return [(f.rule_id, f.path.rsplit("/", 1)[-1], f.line) for f in findings]


class TestSrv001:
    def test_exact_findings(self):
        findings = _run([FIXTURES / "serviceproj"], ["SRV001"])
        assert _triples(findings) == [
            ("SRV001", "app.py", 21),  # time.sleep in _handle_status
            ("SRV001", "app.py", 26),  # open() in _handle_report
            ("SRV001", "app.py", 27),  # un-awaited .read()
            ("SRV001", "app.py", 43),  # worker.join() in _settle
        ]
        assert all(f.severity == "error" for f in findings)

    def test_messages_name_handler_and_registration(self):
        by_line = {
            f.line: f.message
            for f in _run([FIXTURES / "serviceproj"], ["SRV001"])
        }
        assert "time.sleep" in by_line[21]
        assert "_handle_status" in by_line[21]
        assert "open" in by_line[26]
        # _settle is not itself registered; the finding names the
        # registered handler it is reachable from.
        assert "_settle" in by_line[43]
        assert "_handle_submit" in by_line[43]

    def test_async_sleep_is_not_flagged(self):
        findings = _run([FIXTURES / "serviceproj"], ["SRV001"])
        assert 22 not in {f.line for f in findings}

    def test_to_thread_thunk_is_exempt(self):
        # The nested def's open/read (lines 31-32) run off the loop.
        lines = {f.line for f in _run([FIXTURES / "serviceproj"], ["SRV001"])}
        assert not lines & {31, 32}

    def test_awaited_stream_read_is_exempt(self):
        lines = {f.line for f in _run([FIXTURES / "serviceproj"], ["SRV001"])}
        assert 36 not in lines

    def test_str_join_with_argument_is_exempt(self):
        lines = {f.line for f in _run([FIXTURES / "serviceproj"], ["SRV001"])}
        assert 44 not in lines

    def test_sync_and_unregistered_functions_are_exempt(self):
        lines = {f.line for f in _run([FIXTURES / "serviceproj"], ["SRV001"])}
        # sync_report's sleep/open/read and unregistered_helper's sleep.
        assert not lines & {54, 55, 56, 61}

    def test_no_findings_without_project_phase(self):
        assert _run([FIXTURES / "serviceproj"], ["SRV001"], project=False) == []

    def test_real_service_package_is_clean(self):
        findings = _run([REPO_ROOT / "src" / "repro" / "service"], ["SRV001"])
        assert findings == []
