"""ROB003: SQLite connections belong to ``repro.resultsdb`` alone."""

from pathlib import Path

from repro.lint import LintConfig, LintEngine

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"


def _run(paths, select, project=True):
    config = LintConfig(root=REPO_ROOT, select=list(select), project=project)
    return LintEngine(config).run([Path(p) for p in paths])


def _triples(findings):
    return sorted(
        (f.rule_id, f.path.rsplit("/", 1)[-1], f.line) for f in findings
    )


class TestRob003:
    def test_exact_findings(self):
        findings = _run([FIXTURES / "resultsdbproj"], ["ROB003"])
        assert _triples(findings) == [
            ("ROB003", "state.py", 12),  # sqlite3.connect(...)
            ("ROB003", "state.py", 16),  # aliased: sq.connect(...)
            ("ROB003", "state.py", 20),  # from sqlite3 import connect
            ("ROB003", "state.py", 24),  # helper-indirected connection
        ]
        assert all(f.severity == "error" for f in findings)

    def test_messages_point_at_the_store(self):
        by_line = {
            f.line: f.message
            for f in _run([FIXTURES / "resultsdbproj"], ["ROB003"])
        }
        assert "repro.resultsdb" in by_line[12]
        assert "ResultsStore" in by_line[12]
        assert "resultsdb.commit" in by_line[12]
        # The interprocedural finding names the tainted helper.
        assert "util.db.open_db" in by_line[24]
        assert "ResultsStore" in by_line[24]

    def test_resultsdb_module_is_exempt(self):
        findings = _run([FIXTURES / "resultsdbproj"], ["ROB003"])
        assert all("store.py" not in f.path for f in findings)

    def test_sanctioned_call_into_resultsdb_is_clean(self):
        # ``sanctioned`` calls resultsdb's own opener: the store layer
        # never taints its callers — calling into it IS the fix.
        lines = {f.line for f in _run([FIXTURES / "resultsdbproj"], ["ROB003"])}
        assert 28 not in lines

    def test_non_sqlite_connect_attribute_is_clean(self):
        lines = {f.line for f in _run([FIXTURES / "resultsdbproj"], ["ROB003"])}
        assert 32 not in lines

    def test_out_of_scope_helper_not_flagged_directly(self):
        findings = _run([FIXTURES / "resultsdbproj"], ["ROB003"])
        assert all("db.py" not in f.path for f in findings)

    def test_interprocedural_needs_project_phase(self):
        lines = {
            f.line
            for f in _run(
                [FIXTURES / "resultsdbproj"], ["ROB003"], project=False
            )
        }
        assert 24 not in lines
        assert {12, 16, 20} <= lines

    def test_shipped_tree_is_clean(self):
        findings = _run([REPO_ROOT / "src" / "repro"], ["ROB003"])
        assert findings == []
