"""Core machinery: suppressions, fingerprints, scoping, engine set-up."""

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import Finding, LintConfig, LintEngine
from repro.lint.core import _parse_suppressions


class TestSuppressions:
    def test_inline_and_standalone_directives(self, lint_fixture):
        assert lint_fixture("algorithms/suppressed_case.py") == []

    def test_parse_inline_rule_list(self):
        parsed = _parse_suppressions("x = 1  # lint: disable=DET001,CON002\n")
        assert parsed == {1: {"DET001", "CON002"}}

    def test_parse_bare_disable_means_all(self):
        parsed = _parse_suppressions("x = 1  # lint: disable\n")
        assert parsed == {1: None}

    def test_standalone_comment_covers_next_line(self):
        parsed = _parse_suppressions("# lint: disable=DET001\nx = 1\n")
        assert parsed == {1: {"DET001"}, 2: {"DET001"}}

    def test_unrelated_comments_ignored(self):
        assert _parse_suppressions("x = 1  # noqa: BLE001\n") == {}


class TestFinding:
    def test_fingerprint_excludes_line_numbers(self):
        a = Finding("DET001", "error", "a/b.py", 10, 5, "msg", "fn")
        b = Finding("DET001", "error", "a/b.py", 99, 1, "msg", "fn")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_symbol_message(self):
        base = Finding("DET001", "error", "a/b.py", 1, 1, "msg", "fn")
        for variant in (
            Finding("DET002", "error", "a/b.py", 1, 1, "msg", "fn"),
            Finding("DET001", "error", "a/c.py", 1, 1, "msg", "fn"),
            Finding("DET001", "error", "a/b.py", 1, 1, "other", "fn"),
            Finding("DET001", "error", "a/b.py", 1, 1, "msg", "gn"),
        ):
            assert variant.fingerprint != base.fingerprint

    def test_as_dict_round_trips_fields(self):
        f = Finding("DET001", "error", "a/b.py", 10, 5, "msg", "fn")
        d = f.as_dict()
        assert d["rule"] == "DET001"
        assert d["path"] == "a/b.py"
        assert d["line"] == 10 and d["col"] == 5
        assert d["symbol"] == "fn"


class TestEngineSetup:
    def test_unknown_selected_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="NOPE01"):
            LintEngine(LintConfig(select=["NOPE01"]))

    def test_unknown_ignored_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="NOPE01"):
            LintEngine(LintConfig(ignore=["NOPE01"]))

    def test_ignore_removes_rule(self):
        engine = LintEngine(LintConfig(ignore=["DET001"]))
        assert "DET001" not in [r.rule_id for r in engine.rules]

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        findings = LintEngine(LintConfig()).run([bad])
        assert len(findings) == 1
        assert findings[0].rule_id == "SYNTAX"
        assert findings[0].severity == "error"

    def test_exclude_patterns_filter_files(self, tmp_path):
        (tmp_path / "keep.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "skip.py").write_text("import random\nrandom.random()\n")
        config = LintConfig(root=tmp_path, exclude=["skip.py"])
        findings = LintEngine(config).run([tmp_path])
        assert [f.path for f in findings] == ["keep.py"]

    def test_scope_override_from_config(self, tmp_path):
        # DET001 normally skips modules outside algorithms/engines;
        # an override widens it to this tmp module's stem.
        source = "s = {1, 2}\nfor v in s:\n    print(v)\n"
        target = tmp_path / "custom.py"
        target.write_text(source, encoding="utf-8")
        scoped = LintConfig(root=tmp_path, select=["DET001"])
        assert LintEngine(scoped).run([target]) == []
        widened = LintConfig(
            root=tmp_path, select=["DET001"], scopes={"DET001": ["custom"]}
        )
        findings = LintEngine(widened).run([target])
        assert [(f.rule_id, f.line) for f in findings] == [("DET001", 2)]
