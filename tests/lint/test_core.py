"""Core machinery: suppressions, fingerprints, scoping, engine set-up."""

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import Finding, LintConfig, LintEngine
from repro.lint.core import _parse_suppressions


class TestSuppressions:
    def test_inline_and_standalone_directives(self, lint_fixture):
        assert lint_fixture("algorithms/suppressed_case.py") == []

    def test_parse_inline_rule_list(self):
        parsed = _parse_suppressions("x = 1  # lint: disable=DET001,CON002\n")
        assert parsed == {1: {"DET001", "CON002"}}

    def test_parse_bare_disable_means_all(self):
        parsed = _parse_suppressions("x = 1  # lint: disable\n")
        assert parsed == {1: None}

    def test_standalone_comment_covers_next_line(self):
        parsed = _parse_suppressions("# lint: disable=DET001\nx = 1\n")
        assert parsed == {1: {"DET001"}, 2: {"DET001"}}

    def test_unrelated_comments_ignored(self):
        assert _parse_suppressions("x = 1  # noqa: BLE001\n") == {}


class TestSuppressionSpans:
    """A directive on a statement's first line (or a decorator) covers
    the statement's full ``end_lineno`` span."""

    def _module(self, tmp_path, source):
        from repro.lint.core import Module

        path = tmp_path / "m.py"
        path.write_text(source, encoding="utf-8")
        return Module(path, "m.py", source)

    def test_multiline_statement_covered_from_first_line(self, tmp_path):
        module = self._module(
            tmp_path,
            "value = make(  # lint: disable=DET002\n"
            "    1,\n"
            "    2,\n"
            ")\n",
        )
        for line in (1, 2, 3, 4):
            assert module.suppressions.get(line) == {"DET002"}

    def test_decorator_directive_covers_the_whole_def(self, tmp_path):
        module = self._module(
            tmp_path,
            "@wrap  # lint: disable=DET001\n"
            "def fn():\n"
            "    x = 1\n"
            "    return x\n",
        )
        for line in (1, 2, 3, 4):
            assert module.suppressions.get(line) == {"DET001"}

    def test_bare_disable_wins_over_rule_list(self, tmp_path):
        module = self._module(
            tmp_path,
            "with ctx(  # lint: disable\n"
            "    arg,  # lint: disable=DET001\n"
            "):\n"
            "    pass\n",
        )
        assert module.suppressions.get(1) is None
        assert module.suppressions.get(4) is None

    def test_unrelated_statements_not_covered(self, tmp_path):
        module = self._module(
            tmp_path,
            "x = 1  # lint: disable=DET002\n"
            "y = 2\n",
        )
        assert module.suppressions.get(1) == {"DET002"}
        assert 2 not in module.suppressions

    def test_suppression_inside_span_silences_rule(self, tmp_path):
        # End-to-end: the DET002 finding anchors on the *second*
        # physical line of the statement; a directive on the first
        # line must now cover it.
        from repro.lint import LintConfig, LintEngine

        source = (
            "import random\n"
            "\n"
            "value = list(\n"
            "    random.random()\n"
            "    for _ in range(3)\n"
            ")\n"
        )
        target = tmp_path / "case.py"
        target.write_text(source, encoding="utf-8")
        config = LintConfig(root=tmp_path, select=["DET002"])
        findings = LintEngine(config).run([target])
        assert [f.line for f in findings] == [4]
        suppressed = source.replace(
            "value = list(",
            "value = list(  # lint: disable=DET002",
        )
        target.write_text(suppressed, encoding="utf-8")
        assert LintEngine(config).run([target]) == []


class TestFinding:
    def test_fingerprint_excludes_line_numbers(self):
        a = Finding("DET001", "error", "a/b.py", 10, 5, "msg", "fn")
        b = Finding("DET001", "error", "a/b.py", 99, 1, "msg", "fn")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_path_symbol_message(self):
        base = Finding("DET001", "error", "a/b.py", 1, 1, "msg", "fn")
        for variant in (
            Finding("DET002", "error", "a/b.py", 1, 1, "msg", "fn"),
            Finding("DET001", "error", "a/c.py", 1, 1, "msg", "fn"),
            Finding("DET001", "error", "a/b.py", 1, 1, "other", "fn"),
            Finding("DET001", "error", "a/b.py", 1, 1, "msg", "gn"),
        ):
            assert variant.fingerprint != base.fingerprint

    def test_as_dict_round_trips_fields(self):
        f = Finding("DET001", "error", "a/b.py", 10, 5, "msg", "fn")
        d = f.as_dict()
        assert d["rule"] == "DET001"
        assert d["path"] == "a/b.py"
        assert d["line"] == 10 and d["col"] == 5
        assert d["symbol"] == "fn"
        assert d["occurrence"] == 0

    def test_fingerprint_distinguishes_occurrences(self):
        first = Finding("DET001", "error", "a/b.py", 1, 1, "msg", "fn")
        second = Finding(
            "DET001", "error", "a/b.py", 2, 1, "msg", "fn", occurrence=1
        )
        assert first.fingerprint != second.fingerprint

    def test_engine_assigns_occurrences_in_source_order(self, tmp_path):
        # Two identical violations in one function: distinct
        # fingerprints, so the baseline can track them independently.
        source = (
            "import random\n"
            "\n"
            "\n"
            "def jitter():\n"
            "    a = random.random()\n"
            "    b = random.random()\n"
            "    return a + b\n"
        )
        target = tmp_path / "case.py"
        target.write_text(source, encoding="utf-8")
        config = LintConfig(root=tmp_path, select=["DET002"])
        findings = LintEngine(config).run([target])
        assert [(f.line, f.occurrence) for f in findings] == [(5, 0), (6, 1)]
        assert len({f.fingerprint for f in findings}) == 2


class TestEngineSetup:
    def test_unknown_selected_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="NOPE01"):
            LintEngine(LintConfig(select=["NOPE01"]))

    def test_unknown_ignored_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="NOPE01"):
            LintEngine(LintConfig(ignore=["NOPE01"]))

    def test_ignore_removes_rule(self):
        engine = LintEngine(LintConfig(ignore=["DET001"]))
        assert "DET001" not in [r.rule_id for r in engine.rules]

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        findings = LintEngine(LintConfig()).run([bad])
        assert len(findings) == 1
        assert findings[0].rule_id == "SYNTAX"
        assert findings[0].severity == "error"

    def test_exclude_patterns_filter_files(self, tmp_path):
        (tmp_path / "keep.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "skip.py").write_text("import random\nrandom.random()\n")
        config = LintConfig(root=tmp_path, exclude=["skip.py"])
        findings = LintEngine(config).run([tmp_path])
        assert [f.path for f in findings] == ["keep.py"]

    def test_scope_override_from_config(self, tmp_path):
        # DET001 normally skips modules outside algorithms/engines;
        # an override widens it to this tmp module's stem.
        source = "s = {1, 2}\nfor v in s:\n    print(v)\n"
        target = tmp_path / "custom.py"
        target.write_text(source, encoding="utf-8")
        scoped = LintConfig(root=tmp_path, select=["DET001"])
        assert LintEngine(scoped).run([target]) == []
        widened = LintConfig(
            root=tmp_path, select=["DET001"], scopes={"DET001": ["custom"]}
        )
        findings = LintEngine(widened).run([target])
        assert [(f.rule_id, f.line) for f in findings] == [("DET001", 2)]
