"""Baseline persistence and new/grandfathered partitioning."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import Finding, load_baseline, partition_findings, write_baseline


def _finding(message="msg", line=1):
    return Finding("DET001", "error", "a/b.py", line, 1, message, "fn")


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(), _finding("other")])
        baseline = load_baseline(path)
        assert baseline == {
            _finding().fingerprint: 2,
            _finding("other").fingerprint: 1,
        }

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}
        assert load_baseline(None) == {}

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_baseline(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="version"):
            load_baseline(path)

    def test_written_file_is_stable_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding("b"), _finding("a")])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert list(payload["fingerprints"]) == sorted(payload["fingerprints"])


class TestPartitioning:
    def test_baselined_findings_survive_line_drift(self):
        baseline = {_finding(line=10).fingerprint: 1}
        new, old = partition_findings([_finding(line=99)], baseline)
        assert new == [] and len(old) == 1

    def test_budget_consumed_per_occurrence(self):
        baseline = {_finding().fingerprint: 1}
        new, old = partition_findings([_finding(), _finding()], baseline)
        assert len(old) == 1 and len(new) == 1

    def test_unknown_fingerprints_are_new(self):
        new, old = partition_findings([_finding()], {})
        assert len(new) == 1 and old == []
