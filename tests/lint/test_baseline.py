"""Baseline persistence, v1 migration, and new/grandfathered partitioning."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Finding,
    load_baseline,
    partition_findings,
    stale_entries,
    write_baseline,
)


def _finding(message="msg", line=1, occurrence=0):
    return Finding(
        "DET001", "error", "a/b.py", line, 1, message, "fn", occurrence
    )


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding(), _finding(), _finding("other")])
        baseline = load_baseline(path)
        assert baseline == {
            _finding().fingerprint: 2,
            _finding("other").fingerprint: 1,
        }

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}
        assert load_baseline(None) == {}

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unreadable"):
            load_baseline(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="version"):
            load_baseline(path)

    def test_written_file_is_stable_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding("b"), _finding("a")])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert list(payload["fingerprints"]) == sorted(payload["fingerprints"])

    def test_v1_baseline_migrates_counts_to_occurrences(self, tmp_path):
        # A v1 entry without the occurrence index and count 2 becomes
        # two indexed entries — matching the fingerprints the engine
        # now assigns to the first and second identical finding.
        path = tmp_path / "baseline.json"
        v1_fp = "DET001::a/b.py::fn::msg"
        path.write_text(
            json.dumps({"version": 1, "fingerprints": {v1_fp: 2, "x::y::z::m": 1}}),
            encoding="utf-8",
        )
        baseline = load_baseline(path)
        assert baseline == {
            f"{v1_fp}::0": 1,
            f"{v1_fp}::1": 1,
            "x::y::z::m::0": 1,
        }
        first, second = _finding(), _finding(occurrence=1)
        new, old = partition_findings([first, second], baseline)
        assert new == [] and len(old) == 2


class TestPartitioning:
    def test_baselined_findings_survive_line_drift(self):
        baseline = {_finding(line=10).fingerprint: 1}
        new, old = partition_findings([_finding(line=99)], baseline)
        assert new == [] and len(old) == 1

    def test_budget_consumed_per_occurrence(self):
        baseline = {_finding().fingerprint: 1}
        new, old = partition_findings([_finding(), _finding()], baseline)
        assert len(old) == 1 and len(new) == 1

    def test_unknown_fingerprints_are_new(self):
        new, old = partition_findings([_finding()], {})
        assert len(new) == 1 and old == []

    def test_occurrence_index_separates_identical_findings(self):
        # Fixing the first of two identical findings must NOT let the
        # survivor hide behind the other's budget: the remaining
        # finding keeps occurrence 0 and only the ::1 entry goes stale.
        baseline = {
            _finding().fingerprint: 1,
            _finding(occurrence=1).fingerprint: 1,
        }
        new, old = partition_findings([_finding()], baseline)
        assert new == [] and len(old) == 1
        assert stale_entries([_finding()], baseline) == [
            _finding(occurrence=1).fingerprint
        ]


class TestStaleEntries:
    def test_no_stale_when_all_budget_consumed(self):
        baseline = {_finding().fingerprint: 1}
        assert stale_entries([_finding()], baseline) == []

    def test_fixed_finding_reported_stale(self):
        baseline = {_finding().fingerprint: 1, _finding("gone").fingerprint: 1}
        assert stale_entries([_finding()], baseline) == [
            _finding("gone").fingerprint
        ]

    def test_empty_baseline_never_stale(self):
        assert stale_entries([_finding()], {}) == []
