"""OBS001 fixture: bare standard-library clock calls in timed paths."""

import time
from time import perf_counter  # line 4: clock import -> OBS001


def measure(work):
    started = time.perf_counter()            # line 8: OBS001
    work()
    return time.perf_counter() - started     # line 10: OBS001


def stamp():
    return time.time()                       # line 14: OBS001


def steady():
    return time.monotonic_ns()               # line 18: OBS001


def wait(seconds):
    time.sleep(seconds)                      # waiting, not measuring: clean


def traced(tracer, work):
    with tracer.span("work") as span:        # the sanctioned path: clean
        work()
    return span.duration


def clock_read(tracer):
    return tracer.clock.now()                # injectable clock: clean
