"""RACE002 fixture: payloads that cannot (or must not) cross the pipe."""


def dispatch(task_conn, payload):
    task_conn.send(lambda: payload)          # line 5: lambda payload
    task_conn.send(open("data.txt"))         # line 6: open handle payload
    task_conn.send({"plain": payload})       # clean: plain data


def submit_all(pool, items):
    def helper(item):
        return item

    pool.submit(helper, items)               # line 14: nested-function payload
    return helper(items[0])                  # clean: called locally, not shipped


def stream_results(result_conn, items):
    result_conn.send(x * 2 for x in items)   # line 19: generator payload
    result_conn.send([x * 2 for x in items])  # clean: materialized list


def spawn(ctx, worker, queue):
    proc = ctx.Process(target=worker, args=(queue, lambda x: x))  # line 24
    return proc


def unrelated_send(socketless, payload):
    # Receiver name has no channel token: not a pipe, not checked.
    socketless.deliver(lambda: payload)
