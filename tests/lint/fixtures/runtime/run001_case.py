"""RUN001 fixture: exception handling in runtime worker/job entrypoints."""


def _worker_main(queue):            # entrypoint name: "worker"
    while True:
        task = queue.get()
        try:
            task()
        except Exception:
            continue                # line 9: swallowed -> RUN001


def dispatch_job(job, failures):    # entrypoint: "dispatch"/"job"
    try:
        return job()
    except Exception as exc:
        failures.append(make_failure_record(exc))  # converted: clean
        return None


def run_task(task):                 # entrypoint: "task"
    try:
        return task()
    except Exception:
        raise                       # re-raised: clean


def run_job_spec(spec):             # entrypoint: "job"
    try:
        return spec()
    except KeyError:
        return None                 # narrow handler: not a job outcome


def helper(value):                  # not an entrypoint name
    try:
        return int(value)
    except Exception:
        return 0                    # out of RUN001's reach (EXC001 scope
                                    # does not include runtime either)


def make_failure_record(exc):
    return {"detail": str(exc)}
