"""Import-time resources for the RACE fixture project."""

import threading

LOG_HANDLE = open("/tmp/raceproj.log", "a")   # fork-unsafe: shared offset
STATE_LOCK = threading.Lock()                  # fork-unsafe: inherited held
