"""Job functions dispatched into workers: the mutation sites."""

from raceproj.resources import LOG_HANDLE
from raceproj.state import CACHE, RESULTS


def run_job(payload):
    CACHE[payload["key"]] = payload["value"]   # RACE001: item assignment
    record(payload)
    return helper_total(payload)


def record(payload):
    RESULTS.append(payload)                    # RACE001: mutating method
    LOG_HANDLE.write(str(payload))             # RACE003: fork-shared handle


def helper_total(payload):
    # Locals are process-private: never flagged.
    totals = {}
    totals["sum"] = sum(payload.get("values", ()))
    return totals
