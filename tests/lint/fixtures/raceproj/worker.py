"""The fork boundary: Process(target=...) marks the entrypoint."""

import multiprocessing as mp

from raceproj.jobs import run_job


def _worker_main(conn):
    while True:
        payload = conn.recv()
        if payload is None:
            return
        conn.send(run_job(payload))


def spawn_worker(conn):
    ctx = mp.get_context("fork")
    process = ctx.Process(target=_worker_main, args=(conn,), daemon=True)
    process.start()
    return process


def dispatcher_side_mutation(payload):
    # NOT worker-reachable (nothing dispatches this): the same mutation
    # shape must stay unflagged on the dispatcher side of the fork.
    from raceproj.state import CACHE

    CACHE[payload["key"]] = payload["value"]
