"""Module-level state for the RACE fixture project."""

CACHE = {}          # mutable container: RACE001 territory when workers touch it
RESULTS = []        # same
LIMIT = 8           # immutable: never flagged
_SETTINGS = dict()  # factory-constructed container
