"""Out-of-scope helper: the raw connection ROB003 must trace through."""

import sqlite3


def open_db(path):
    return sqlite3.connect(str(path))                   # tainted opener


def row_count(conn, table):
    return conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
