"""The sanctioned layer: SQLite connections live here and only here."""

import sqlite3


def open_store(path):
    conn = sqlite3.connect(str(path))                   # exempt: the store
    conn.execute("PRAGMA journal_mode=WAL")
    return conn
