"""ROB003 fixture: every way service code can open SQLite directly."""

import sqlite3
import sqlite3 as sq
from sqlite3 import connect

from resultsdb.store import open_store
from util.db import open_db


def direct(path):
    return sqlite3.connect(path)                        # line 12: ROB003


def aliased(path):
    return sq.connect(str(path))                        # line 16: ROB003


def from_imported(path):
    return connect(path)                                # line 20: ROB003


def via_helper(path):
    return open_db(path)                                # line 24: ROB003


def sanctioned(path):
    return open_store(path)                             # clean: resultsdb


def unrelated_connect(client):
    return client.connect()                             # clean: not sqlite
