"""Message-send entrypoints: a racy module-state path and the clean
per-process ``Outbox`` shape the real engine uses."""

from partitioned.state import OUTBOX, SEQ_COUNTERS


def send_shared(sender, target, message):
    seq = SEQ_COUNTERS.get(sender, 0)
    SEQ_COUNTERS[sender] = seq + 1
    OUTBOX.append((target, sender, seq, message))


class Outbox:
    """Per-process buffers: instance state is invisible to RACE001."""

    def __init__(self):
        self.batches = []
        self._seq = {}

    def send(self, sender, target, message):
        seq = self._seq.get(sender, 0)
        self._seq[sender] = seq + 1
        self.batches.append((target, sender, seq, message))
