"""Module-level exchange state shared by the fixture's shard modules."""

OUTBOX = []
SEQ_COUNTERS = {}
NUM_SHARDS = 4
