"""The fork boundary: ``Process(target=shard_main)`` marks shard workers."""

import multiprocessing as mp

from partitioned.shard import shard_main
from partitioned.state import OUTBOX


def launch_shard(task_conn, result_conn):
    ctx = mp.get_context("fork")
    process = ctx.Process(
        target=shard_main, args=(task_conn, result_conn), daemon=True
    )
    process.start()
    return process


def drain_coordinator_side():
    # Dispatcher-side mutation of the same module state: nothing on the
    # worker side of the fork calls this, so it must stay unflagged.
    batches = list(OUTBOX)
    OUTBOX.clear()
    return batches
