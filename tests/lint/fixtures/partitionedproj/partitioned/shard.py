"""The shard worker loop: recv commands, send batches back over pipes."""

from partitioned.exchange import Outbox, send_shared


def shard_main(task_conn, result_conn):
    outbox = Outbox()
    while True:
        command = task_conn.recv()
        if command is None:
            return
        send_shared(0, command["target"], command["message"])
        outbox.send(1, command["target"], command["message"])
        result_conn.send({"shard": 0, "batches": list(outbox.batches)})


def stream_batches(result_conn, batches):
    result_conn.send(batch for batch in batches)


def send_progress_callback(result_conn):
    result_conn.send(lambda batch: len(batch))
