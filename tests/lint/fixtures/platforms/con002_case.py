"""CON002 fixture: a driver running kernels outside the lifecycle."""

from repro.algorithms import pagerank
from repro.algorithms.registry import get_algorithm


class RogueDriver:
    def execute(self, graph, params):
        direct = pagerank(graph)
        spec = get_algorithm("bfs")
        bound = spec.run(graph, params)
        chained = get_algorithm("wcc").run(graph, params)
        return direct, bound, chained

    def _run_algorithm(self, algorithm, graph, params):
        return pagerank(graph)  # inside the lifecycle hook: ok
