"""ROB001 fixture: run-artifact writes that must go through atomic_write."""

from repro.ioutil import atomic_write


def save_report(path, text):
    with open(path, "w", encoding="utf-8") as handle:   # line 7: ROB001
        handle.write(text)


def save_json(path, payload):
    path.write_text(payload, encoding="utf-8")          # line 12: ROB001


def save_binary(path):
    with path.open("wb") as handle:                     # line 16: ROB001
        handle.write(b"\x00")


def append_journal(path, line):
    with open(path, "ab") as handle:                    # append: clean
        handle.write(line)


def load_results(path):
    with open(path, "r", encoding="utf-8") as handle:   # read: clean
        return handle.read()


def save_atomically(path, text):
    atomic_write(path, text)                            # the sanctioned way


def dynamic_mode(path, mode, text):
    with open(path, mode) as handle:                    # undecidable: clean
        handle.write(text)
