"""REP001 fixture: a reporter computing rates inline."""


def render(job):
    eps = job.num_edges / job.processing_seconds
    metered = job.eps
    return eps, metered
