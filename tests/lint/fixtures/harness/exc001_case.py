"""EXC001 fixture: broad exception handlers in harness paths."""


def run_with_retry(job):
    try:
        return job()
    except Exception:
        return None


def rethrowing(job):
    try:
        return job()
    except Exception:
        raise


def narrow(job):
    try:
        return job()
    except ValueError:
        return None
