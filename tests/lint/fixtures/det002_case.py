"""DET002 fixture: unseeded RNG construction and global-state use."""
import random

import numpy as np


def make_rngs(seed):
    bad_stdlib = random.Random()
    bad_numpy = np.random.default_rng()
    bad_global = random.random()
    good_stdlib = random.Random(seed)
    good_numpy = np.random.default_rng(seed)
    return bad_stdlib, bad_numpy, bad_global, good_stdlib, good_numpy
