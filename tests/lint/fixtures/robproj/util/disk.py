"""Out-of-scope helper: the raw write ROB002 must trace through."""


def dump(path, data):
    with open(path, "w", encoding="utf-8") as handle:   # tainted writer
        handle.write(data)


def describe(path):
    with open(path, "r", encoding="utf-8") as handle:   # read-only: clean
        return len(handle.read())
