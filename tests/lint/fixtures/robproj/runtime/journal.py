"""Journal look-alike: the plane module ROB002 must leave alone."""


class MiniJournal:
    def open_handle(self, path):
        # In scope ("runtime" segment) and append-mode, but journal
        # modules ARE the fault-point plumbing: exempt by stem.
        self._handle = open(path, "ab")

    def append(self, line):
        self._handle.write(line)
