"""ROB002 fixture: every write shape the service layer can get wrong."""

from util.disk import dump

from repro.ioutil import atomic_write


def spool_request(path, payload):
    with open(path, "w", encoding="utf-8") as handle:   # line 9: ROB002
        handle.write(payload)


def spool_outcome(path, payload):
    path.write_text(payload)                            # line 14: ROB002


def spool_ledger(path, line):
    with open(path, "ab") as handle:                    # line 18: ROB002
        handle.write(line)                              # (appends too)


def spool_via_helper(path, payload):
    dump(path, payload)                                 # line 23: ROB002


def spool_atomically(path, payload):
    atomic_write(                                       # sanctioned way
        path, payload, fault_point="service.spool.request"
    )


def read_request(path):
    with open(path, "r", encoding="utf-8") as handle:   # read: clean
        return handle.read()


def dynamic_mode(path, mode, payload):
    with open(path, mode) as handle:                    # undecidable: clean
        handle.write(payload)
