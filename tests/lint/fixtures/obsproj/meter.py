"""Cross-module use of a rebound clock: the helper-indirected case."""

from obsproj.clockmod import _now


def measure(fn):
    start = _now()                    # imported rebind: project pass only
    fn()
    return _now() - start
