"""Clock access hidden from the per-file OBS001 pass.

Every pattern here defeats the syntactic ``time.``/``_time.`` root
check: the module alias renames the root, and the module-level rebind
erases the dotted call entirely.
"""

import time as _clk

_now = _clk.perf_counter          # module-level clock rebind


def elapsed(start):
    return _clk.monotonic() - start   # aliased module: project pass only


def stamp():
    return _now()                     # rebound clock: project pass only


def wait(seconds):
    _clk.sleep(seconds)               # sleep is never a measurement
