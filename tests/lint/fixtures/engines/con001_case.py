"""CON001 fixture: vertex program leaking state past the contract."""

SHARED = {}


def compute(ctx, messages):
    SHARED[ctx.vertex] = ctx.value
    total = sum(messages)
    ctx.value = total


def gather(ctx, edge):
    acc = []
    SHARED.setdefault("order", []).append(ctx.vertex)
    acc.append(edge)
    return acc
