"""DET003 fixture: float accumulation over a set."""


def total_mass():
    masses = {0.1, 0.2, 0.3}
    bad = sum(masses)
    also_bad = sum(m * 2.0 for m in masses)
    fine = sum(sorted(masses))
    return bad, also_bad, fine
