"""Suppression fixture: violations silenced with lint directives."""


def kernel():
    frontier = {1, 0}
    out = []
    for v in frontier:  # lint: disable=DET001
        out.append(v)
    # lint: disable
    for v in frontier:
        out.append(v)
    return out
