"""Clean fixture: deterministic patterns the linter must accept."""


def kernel(graph, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    frontier = {0, 1}
    order = [v for v in sorted(frontier)]
    total = sum(sorted(frontier))
    return rng, order, total
