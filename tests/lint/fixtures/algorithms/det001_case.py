"""DET001 fixture: unordered iteration feeding kernel order."""


def kernel():
    frontier = {2, 0, 1}
    visited = []
    for v in frontier:
        visited.append(v)
    labels = [v + 1 for v in frontier]
    smallest = min(v for v in frontier)  # order-insensitive consumer: ok
    for v in sorted(frontier):  # explicitly ordered: ok
        visited.append(v)
    return visited, labels, smallest
