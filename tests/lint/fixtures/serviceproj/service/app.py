"""SRV001 fixture: a miniature async service with route registration."""

import asyncio
import time


class MiniService:
    def __init__(self):
        self.routes = []
        self._add_route("GET", "/status", self._handle_status)
        self._add_route("GET", "/report", self._handle_report)
        self.add_route("POST", "/submit", handler=self._handle_submit)

    def _add_route(self, method, pattern, handler):
        self.routes.append((method, pattern, handler))

    def add_route(self, method, pattern, handler=None):
        self.routes.append((method, pattern, handler))

    async def _handle_status(self, request):
        time.sleep(0.5)  # SRV001: blocks the loop
        await asyncio.sleep(0.1)  # fine: the async form
        return {"ok": True}

    async def _handle_report(self, request):
        handle = open("report.json")  # SRV001: sync open on the loop
        data = handle.read()  # SRV001: un-awaited sync read
        return data

    async def _handle_submit(self, request):
        def load():
            with open("spool.json") as handle:  # fine: off-loop thunk
                return handle.read()

        payload = await asyncio.to_thread(load)
        body = await request.reader.read()  # fine: awaited stream API
        await self._settle(payload)
        return body

    async def _settle(self, payload):
        # Reachable from a registered handler: still on the loop.
        worker = make_worker(payload)
        worker.join()  # SRV001: parks the loop on a process exit
        parts = ",".join(["a", "b"])  # fine: str.join takes an argument
        return parts


def make_worker(payload):
    return payload


def sync_report():
    # Not async: SRV001 does not apply off the event loop.
    time.sleep(0.1)
    with open("report.json") as handle:
        return handle.read()


async def unregistered_helper():
    # Async but never registered as (or reached from) a handler.
    time.sleep(0.2)
    return None
