"""One exact-match test per lint rule, against the fixture modules.

Each test pins the precise (rule id, file, line) triples a fixture must
produce — both that the violations are caught and that the surrounding
clean patterns are not.
"""

from repro.lint import all_rules
from repro.lint.rules.consistency import registry_gaps


def _triples(findings):
    return [(f.rule_id, f.path.rsplit("/", 1)[-1], f.line) for f in findings]


class TestRuleRegistry:
    def test_all_seventeen_rules_registered(self):
        assert sorted(all_rules()) == [
            "CON001", "CON002", "DET001", "DET002", "DET003",
            "EXC001", "OBS001", "RACE001", "RACE002", "RACE003",
            "REG001", "REP001", "ROB001", "ROB002", "ROB003",
            "RUN001", "SRV001",
        ]

    def test_rules_have_descriptions_and_severities(self):
        for rule in all_rules().values():
            assert rule.description
            assert rule.severity in ("error", "warning", "info")


class TestDet001UnorderedIteration:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("algorithms/det001_case.py")
        assert _triples(findings) == [
            ("DET001", "det001_case.py", 7),
            ("DET001", "det001_case.py", 9),
        ]
        assert all(f.severity == "error" for f in findings)
        assert all(f.symbol == "kernel" for f in findings)

    def test_clean_patterns_not_flagged(self, lint_fixture):
        assert lint_fixture("algorithms/clean_case.py") == []

    def test_out_of_scope_module_not_checked(self, lint_fixture):
        # The same set iteration outside algorithms/engines is fine:
        # DET001 is scoped, DET002 is not — only DET002-class findings
        # may appear for modules at the fixture root.
        findings = lint_fixture("det002_case.py", select=["DET001"])
        assert findings == []


class TestDet002UnseededRng:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("det002_case.py")
        assert _triples(findings) == [
            ("DET002", "det002_case.py", 8),
            ("DET002", "det002_case.py", 9),
            ("DET002", "det002_case.py", 10),
        ]

    def test_seeded_constructors_pass(self, lint_fixture):
        messages = " ".join(
            f.message for f in lint_fixture("det002_case.py")
        )
        assert "Random()" in messages
        assert "default_rng()" in messages
        assert "random.random()" in messages


class TestDet003UnorderedAccumulation:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("algorithms/det003_case.py", select=["DET003"])
        assert _triples(findings) == [
            ("DET003", "det003_case.py", 6),
            ("DET003", "det003_case.py", 7),
        ]
        assert all(f.severity == "warning" for f in findings)


class TestCon001VertexProgramState:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("engines/con001_case.py")
        assert _triples(findings) == [
            ("CON001", "con001_case.py", 7),
            ("CON001", "con001_case.py", 14),
        ]
        assert "SHARED" in findings[0].message
        assert ".setdefault()" in findings[1].message

    def test_live_engines_are_contract_clean(self, lint_fixture):
        from pathlib import Path

        import repro

        engines = Path(repro.__file__).parent / "engines"
        assert lint_fixture(engines, select=["CON001"]) == []


class TestCon002DriverBypass:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("platforms/con002_case.py")
        assert _triples(findings) == [
            ("CON002", "con002_case.py", 9),
            ("CON002", "con002_case.py", 11),
            ("CON002", "con002_case.py", 12),
        ]

    def test_lifecycle_hook_is_exempt(self, lint_fixture):
        findings = lint_fixture("platforms/con002_case.py")
        assert all(f.line != 16 for f in findings)


class TestExc001SwallowedException:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("harness/exc001_case.py")
        assert _triples(findings) == [
            ("EXC001", "exc001_case.py", 7),
        ]
        assert findings[0].symbol == "run_with_retry"


class TestRun001RuntimeFailureRecords:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("runtime/run001_case.py")
        assert _triples(findings) == [
            ("RUN001", "run001_case.py", 9),
        ]
        assert findings[0].severity == "error"
        assert findings[0].symbol == "_worker_main"

    def test_converting_reraising_and_narrow_handlers_pass(self, lint_fixture):
        findings = lint_fixture("runtime/run001_case.py")
        assert all(f.symbol == "_worker_main" for f in findings)

    def test_out_of_scope_module_not_checked(self, lint_fixture):
        # The same swallowing pattern outside repro.runtime is EXC001's
        # territory (different scope), not RUN001's.
        findings = lint_fixture("harness/exc001_case.py", select=["RUN001"])
        assert findings == []


class TestRob001AtomicArtifactWrites:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture(
            "harness/rob001_case.py", select=["ROB001"]
        )
        assert _triples(findings) == [
            ("ROB001", "rob001_case.py", 7),
            ("ROB001", "rob001_case.py", 12),
            ("ROB001", "rob001_case.py", 16),
        ]
        assert all(f.severity == "error" for f in findings)
        assert all("atomic_write" in f.message for f in findings)

    def test_append_read_and_dynamic_modes_pass(self, lint_fixture):
        findings = lint_fixture(
            "harness/rob001_case.py", select=["ROB001"]
        )
        assert {f.symbol for f in findings} == {
            "save_report", "save_json", "save_binary"
        }

    def test_out_of_scope_module_not_checked(self, lint_fixture):
        # Graph-data exporters (repro.graph, repro.algorithms) stream
        # large files and are not run artifacts; ROB001 leaves them be.
        findings = lint_fixture(
            "algorithms/clean_case.py", select=["ROB001"]
        )
        assert findings == []


class TestObs001BareClockCalls:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture(
            "runtime/obs001_case.py", select=["OBS001"]
        )
        assert _triples(findings) == [
            ("OBS001", "obs001_case.py", 4),
            ("OBS001", "obs001_case.py", 8),
            ("OBS001", "obs001_case.py", 10),
            ("OBS001", "obs001_case.py", 14),
            ("OBS001", "obs001_case.py", 18),
        ]
        assert all(f.severity == "error" for f in findings)
        assert all("tracer clock" in f.message for f in findings)

    def test_sleep_and_tracer_paths_pass(self, lint_fixture):
        findings = lint_fixture(
            "runtime/obs001_case.py", select=["OBS001"]
        )
        assert {f.symbol for f in findings} == {"", "measure", "stamp", "steady"}

    def test_trace_package_exempt(self):
        # The MonotonicClock wrapper is the one sanctioned call site.
        from pathlib import Path

        from repro.lint.core import LintEngine
        from repro.lint.config import LintConfig

        root = Path(__file__).resolve().parents[2]
        clock = root / "src" / "repro" / "trace" / "clock.py"
        engine = LintEngine(LintConfig(root=root, select=["OBS001"]))
        assert engine.run([clock]) == []


class TestRep001UnmeteredRate:
    def test_exact_findings(self, lint_fixture):
        findings = lint_fixture("harness/report.py")
        assert _triples(findings) == [
            ("REP001", "report.py", 5),
        ]
        assert "harness.metrics" in findings[0].message


class TestReg001RegistryConsistency:
    def test_no_gaps_when_fully_wired(self):
        gaps = registry_gaps(
            ["bfs", "pr"],
            {"bfs": object(), "pr": object()},
            ["bfs", "pr", "wcc"],
            {"bfs": None, "pr": None},
        )
        assert gaps == []

    def test_missing_validator_reported(self):
        gaps = registry_gaps(["bfs"], {}, ["bfs"])
        assert len(gaps) == 1
        assert "no validation rule" in gaps[0]

    def test_unwired_algorithm_reported(self):
        gaps = registry_gaps(["bfs"], {"bfs": object()}, [])
        assert len(gaps) == 1
        assert "wired into no experiment" in gaps[0]

    def test_unresolvable_parameters_reported(self):
        gaps = registry_gaps(
            ["bfs"], {"bfs": object()}, ["bfs"], {"bfs": "no source vertex"}
        )
        assert len(gaps) == 1
        assert "no source vertex" in gaps[0]

    def test_live_registry_is_consistent(self, lint_fixture):
        from pathlib import Path

        import repro

        registry = Path(repro.__file__).parent / "algorithms" / "registry.py"
        assert lint_fixture(registry, select=["REG001"]) == []
