"""Tests for the results database."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.results import BenchmarkResult, ResultsDatabase


def make_result(**overrides):
    defaults = dict(
        platform="GraphMat",
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=0.3,
        sla_compliant=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults)


class TestDatabase:
    def test_add_and_len(self):
        db = ResultsDatabase()
        db.add(make_result())
        assert len(db) == 1

    def test_extend_and_iterate(self):
        db = ResultsDatabase()
        db.extend([make_result(), make_result(algorithm="pr")])
        assert {r.algorithm for r in db} == {"bfs", "pr"}

    def test_query_by_platform_case_insensitive(self):
        db = ResultsDatabase([make_result()])
        assert len(db.query(platform="graphmat")) == 1

    def test_query_multiple_filters(self):
        db = ResultsDatabase(
            [
                make_result(),
                make_result(algorithm="pr"),
                make_result(machines=4),
            ]
        )
        assert len(db.query(algorithm="bfs", machines=1)) == 1

    def test_query_by_status(self):
        db = ResultsDatabase(
            [make_result(), make_result(status="failed-memory")]
        )
        assert len(db.query(status="failed-memory")) == 1

    def test_one(self):
        db = ResultsDatabase([make_result()])
        assert db.one(platform="GraphMat").dataset == "D300"

    def test_one_rejects_ambiguity(self):
        db = ResultsDatabase([make_result(), make_result()])
        with pytest.raises(ConfigurationError, match="exactly one"):
            db.one(platform="GraphMat")

    def test_processing_times_only_successful(self):
        db = ResultsDatabase(
            [
                make_result(modeled_processing_time=1.0),
                make_result(status="crashed", modeled_processing_time=2.0),
            ]
        )
        assert db.processing_times(dataset="D300") == [1.0]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        db = ResultsDatabase([make_result(), make_result(algorithm="pr")])
        path = db.save(tmp_path / "results.json")
        loaded = ResultsDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.query(algorithm="pr")[0] == db.query(algorithm="pr")[0]

    def test_save_creates_directories(self, tmp_path):
        db = ResultsDatabase([make_result()])
        path = db.save(tmp_path / "deep" / "dir" / "results.json")
        assert path.exists()


class TestBenchmarkResult:
    def test_succeeded_property(self):
        assert make_result().succeeded
        assert not make_result(status="crashed").succeeded

    def test_as_dict(self):
        d = make_result().as_dict()
        assert d["platform"] == "GraphMat"
        assert d["sla_compliant"] is True
