"""Tests for scale computation and T-shirt classes (Table 2)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.scale import (
    class_order,
    classes_up_to,
    graph_scale,
    scale_class,
)


class TestScaleClass:
    @pytest.mark.parametrize(
        "scale,label",
        [
            (6.9, "2XS"),
            (5.0, "2XS"),
            (7.0, "XS"),
            (7.3, "XS"),
            (7.5, "S"),
            (7.8, "S"),
            (8.0, "M"),
            (8.4, "M"),
            (8.5, "L"),
            (8.7, "L"),
            (9.0, "XL"),
            (9.3, "XL"),
            (9.5, "2XL"),
            (11.0, "2XL"),
        ],
    )
    def test_table2_mapping(self, scale, label):
        assert scale_class(scale) == label

    def test_boundaries_are_half_open(self):
        assert scale_class(7.4999) == "XS"
        assert scale_class(7.5) == "S"

    @pytest.mark.parametrize(
        "dataset,scale,label",
        [
            ("wiki-talk", 6.9, "2XS"),
            ("dota-league", 7.7, "S"),
            ("datagen-300", 8.5, "L"),
            ("graph500-26", 9.0, "XL"),
            ("com-friendster", 9.3, "XL"),
        ],
    )
    def test_paper_dataset_labels(self, dataset, scale, label):
        assert scale_class(scale) == label


class TestClassOrder:
    def test_ordering(self):
        assert class_order("2XS") < class_order("XS") < class_order("S")
        assert class_order("L") < class_order("XL") < class_order("2XL")

    def test_unknown_label(self):
        with pytest.raises(ConfigurationError, match="unknown scale class"):
            class_order("3XL")

    def test_classes_up_to_l(self):
        assert classes_up_to("L") == ["2XS", "XS", "S", "M", "L"]

    def test_classes_up_to_smallest(self):
        assert classes_up_to("2XS") == ["2XS"]


class TestGraphScale:
    def test_matches_dataset_catalog(self):
        from repro.harness.datasets import DATASETS

        for ds in DATASETS.values():
            p = ds.profile
            assert graph_scale(p.num_vertices, p.num_edges) == p.scale
