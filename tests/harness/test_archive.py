"""Tests for the on-disk workload archive."""

import json

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.harness.archive import (
    archive_manifest,
    load_archived_graph,
    materialize_archive,
)
from repro.harness.datasets import get_dataset


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("archive")
    materialize_archive(
        root, dataset_ids=["R1", "R4"], algorithms=["bfs", "wcc", "sssp"]
    )
    return root


class TestMaterialize:
    def test_layout(self, archive):
        assert (archive / "R4" / "dota-league.v").exists()
        assert (archive / "R4" / "dota-league.e").exists()
        assert (archive / "R4" / "dota-league.properties").exists()
        assert (archive / "R4" / "dota-league-BFS").exists()
        assert (archive / "R4" / "dota-league-WCC").exists()

    def test_weighted_only_algorithms_skipped(self, archive):
        # R1 (wiki-talk) is unweighted: no SSSP reference output.
        assert not (archive / "R1" / "wiki-talk-SSSP").exists()
        assert (archive / "R4" / "dota-league-SSSP").exists()

    def test_properties_content(self, archive):
        props = json.loads(
            (archive / "R4" / "dota-league.properties").read_text()
        )
        assert props["directed"] is False
        assert props["weighted"] is True
        assert props["full_scale"]["class"] == "S"

    def test_reference_output_is_valid(self, archive):
        from repro.algorithms.output_io import validate_output_file
        from repro.algorithms.registry import run_reference

        dataset = get_dataset("R4")
        graph = dataset.materialize(0)
        reference = run_reference(
            "bfs", graph, dataset.algorithm_parameters("bfs", 0)
        )
        validate_output_file(
            graph, archive / "R4" / "dota-league-BFS", reference,
            algorithm="bfs",
        )

    def test_unknown_algorithm_rejected(self, tmp_path):
        from repro.exceptions import UnsupportedAlgorithmError

        with pytest.raises(UnsupportedAlgorithmError):
            materialize_archive(
                tmp_path, dataset_ids=["R1"], algorithms=["dfs"]
            )


class TestManifest:
    def test_manifest_lists_datasets(self, archive):
        manifest = archive_manifest(archive)
        assert set(manifest) == {"R1", "R4"}
        assert manifest["R4"]["reference_outputs"] == ["bfs", "sssp", "wcc"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(DatasetError):
            archive_manifest(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(DatasetError, match="no archived datasets"):
            archive_manifest(tmp_path)


class TestRoundTrip:
    def test_load_archived_graph(self, archive):
        original = get_dataset("R4").materialize(0)
        reloaded = load_archived_graph(archive, "R4")
        assert reloaded.num_vertices == original.num_vertices
        assert reloaded.num_edges == original.num_edges
        assert np.allclose(
            np.sort(reloaded.edge_weights), np.sort(original.edge_weights)
        )

    def test_unknown_dataset(self, archive):
        with pytest.raises(DatasetError, match="no archived dataset"):
            load_archived_graph(archive, "G22")
