"""Tests for the statistical results analysis."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.analysis import (
    compare_platforms,
    speedup_matrix,
    summarize_measurements,
)
from repro.harness.results import BenchmarkResult, ResultsDatabase


def make_result(platform, tproc, run_index=0, **overrides):
    defaults = dict(
        platform=platform,
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=tproc,
        run_index=run_index,
        sla_compliant=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize_measurements([10.0, 12.0, 11.0, 13.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(11.5)
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_cv_matches_paper_definition(self):
        # Paper: CV = std / mean. (Sample std here, n-1.)
        summary = summarize_measurements([1.0, 3.0])
        assert summary.cv == pytest.approx(summary.std / summary.mean)

    def test_tight_samples_tight_interval(self):
        loose = summarize_measurements([10, 20, 15, 12, 18])
        tight = summarize_measurements([14.9, 15.1, 15.0, 15.05, 14.95])
        assert tight.ci_halfwidth < loose.ci_halfwidth

    def test_confidence_widens_interval(self):
        narrow = summarize_measurements([10, 12, 11, 13], confidence=0.80)
        wide = summarize_measurements([10, 12, 11, 13], confidence=0.99)
        assert wide.ci_halfwidth > narrow.ci_halfwidth

    def test_one_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_measurements([1.0])

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            summarize_measurements([1.0, 2.0], confidence=1.5)


class TestSpeedupMatrix:
    @pytest.fixture
    def database(self):
        return ResultsDatabase(
            [
                make_result("GraphMat", 0.3),
                make_result("Giraph", 22.3),
                make_result("PowerGraph", 2.1),
                make_result("GraphX", None, status="failed-memory",
                            sla_compliant=False),
            ]
        )

    def test_diagonal_is_one(self, database):
        matrix = speedup_matrix(database, algorithm="bfs", dataset="D300")
        assert matrix[("Giraph", "Giraph")] == pytest.approx(1.0)

    def test_table8_ratio(self, database):
        matrix = speedup_matrix(database, algorithm="bfs", dataset="D300")
        # Giraph / GraphMat ~ 74x: the "two orders of magnitude" finding.
        assert matrix[("Giraph", "GraphMat")] == pytest.approx(74.3, rel=0.01)

    def test_failed_platform_omitted(self, database):
        matrix = speedup_matrix(database, algorithm="bfs", dataset="D300")
        assert not any("GraphX" in key for key in matrix)

    def test_antisymmetry(self, database):
        matrix = speedup_matrix(database, algorithm="bfs", dataset="D300")
        assert matrix[("Giraph", "PowerGraph")] == pytest.approx(
            1.0 / matrix[("PowerGraph", "Giraph")]
        )


class TestComparePlatforms:
    def _repeated(self, platform, base, jitter, n=8):
        return [
            make_result(platform, base * (1 + jitter * ((-1) ** i) * (i % 3) / 10),
                        run_index=i)
            for i in range(n)
        ]

    def test_clear_difference_significant(self):
        db = ResultsDatabase(
            self._repeated("A", 1.0, 0.05) + self._repeated("B", 10.0, 0.05)
        )
        comparison = compare_platforms(db, "A", "B", algorithm="bfs",
                                       dataset="D300")
        assert comparison.faster == "A"
        assert comparison.speedup == pytest.approx(10.0, rel=0.1)
        assert comparison.significant
        assert comparison.p_value < 0.01

    def test_identical_platforms_not_significant(self):
        db = ResultsDatabase(
            self._repeated("A", 5.0, 0.2) + self._repeated("B", 5.0, 0.2)
        )
        comparison = compare_platforms(db, "A", "B", algorithm="bfs",
                                       dataset="D300")
        assert not comparison.significant

    def test_single_runs_fall_back_to_point_estimate(self):
        db = ResultsDatabase([make_result("A", 1.0), make_result("B", 2.0)])
        comparison = compare_platforms(db, "A", "B", algorithm="bfs",
                                       dataset="D300")
        assert comparison.faster == "A"
        assert not comparison.significant
        assert comparison.p_value is None

    def test_missing_measurements_rejected(self):
        db = ResultsDatabase([make_result("A", 1.0)])
        with pytest.raises(ConfigurationError):
            compare_platforms(db, "A", "B", algorithm="bfs", dataset="D300")

    def test_end_to_end_with_real_variability(self):
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner

        config = BenchmarkConfig(
            platforms=["graphmat", "giraph"], datasets=["D300"],
            algorithms=["bfs"], repetitions=6,
        )
        db = BenchmarkRunner(config).run()
        comparison = compare_platforms(
            db, "GraphMat", "Giraph", algorithm="bfs", dataset="D300"
        )
        assert comparison.faster == "GraphMat"
        assert comparison.significant
        assert comparison.speedup > 30
