"""Tests for the benchmark metrics (paper §2.3)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.metrics import (
    coefficient_of_variation,
    edges_and_vertices_per_second,
    edges_per_second,
    slowdown,
    speedup,
)


class TestThroughput:
    def test_eps(self):
        assert edges_per_second(1000, 2.0) == 500.0

    def test_evps(self):
        assert edges_and_vertices_per_second(100, 900, 2.0) == 500.0

    def test_evps_is_ten_to_scale_over_tproc(self):
        # Paper: EVPS = 10^scale / Tproc.
        v, e, t = 4_350_000, 304_000_000, 2.1
        evps = edges_and_vertices_per_second(v, e, t)
        assert evps == pytest.approx((v + e) / t)

    def test_zero_time_rejected(self):
        with pytest.raises(ConfigurationError):
            edges_per_second(10, 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            edges_and_vertices_per_second(1, 1, -1.0)


class TestSpeedup:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_slowdown_is_inverse(self):
        assert slowdown(10.0, 2.0) == pytest.approx(0.2)

    def test_paper_example(self):
        # §4.3: PGX.D speedup 15.0 means T(1)/T(32) = 15.
        assert speedup(15.0, 1.0) == 15.0

    def test_invalid_times(self):
        with pytest.raises(ConfigurationError):
            speedup(0.0, 1.0)


class TestCoefficientOfVariation:
    def test_constant_samples(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # std of [1,3] (population) is 1, mean is 2 -> CV 0.5.
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_scale_independent(self):
        # The paper chooses CV for "its independence of the scale of the
        # results".
        samples = [1.0, 1.2, 0.9, 1.1]
        scaled = [s * 1000 for s in samples]
        assert coefficient_of_variation(samples) == pytest.approx(
            coefficient_of_variation(scaled)
        )

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation([1.0])

    def test_needs_positive_mean(self):
        with pytest.raises(ConfigurationError):
            coefficient_of_variation([0.0, 0.0])
