"""Tests for the experiment suite (Table 6 + §4.1–4.8 behaviors)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.harness.experiments import EXPERIMENTS, get_experiment
from repro.harness.runner import BenchmarkRunner


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(BenchmarkConfig(seed=0))


@pytest.fixture(scope="module")
def reports(runner):
    """Run every experiment once; share across tests (they are pure)."""
    return {
        exp_id: EXPERIMENTS[exp_id].run(runner) for exp_id in EXPERIMENTS
    }


class TestCatalog:
    def test_eight_experiments(self):
        assert len(EXPERIMENTS) == 8

    def test_table6_sections(self):
        sections = {e.section for e in EXPERIMENTS.values()}
        assert sections == {"4.1", "4.2", "4.3", "4.4", "4.5", "4.6", "4.7", "4.8"}

    def test_categories(self):
        categories = [e.category for e in EXPERIMENTS.values()]
        assert categories.count("Baseline") == 2
        assert categories.count("Scalability") == 3
        assert categories.count("Robustness") == 2
        assert categories.count("Self-test") == 1

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            get_experiment("4.9")

    def test_table6_parameters(self):
        vertical = get_experiment("vertical-scalability")
        assert vertical.threads == (1, 2, 4, 8, 16, 32)
        assert vertical.datasets == ("D300",)
        strong = get_experiment("strong-scalability")
        assert strong.nodes == (1, 2, 4, 8, 16)
        assert strong.datasets == ("D1000",)


class TestDatasetVariety(object):
    def test_covers_all_platforms_and_datasets(self, reports):
        report = reports["dataset-variety"]
        platforms = {r["platform"] for r in report.rows}
        assert len(platforms) == 6
        datasets = {r["dataset"] for r in report.rows}
        assert "D300" in datasets and "D1000" not in datasets  # up to L

    def test_throughput_metrics_present(self, reports):
        ok_rows = [r for r in reports["dataset-variety"].rows if r["status"] == "ok"]
        assert ok_rows
        assert all(r["eps"] > 0 and r["evps"] > r["eps"] for r in ok_rows)


class TestAlgorithmVariety:
    def test_pgxd_lcc_na(self, reports):
        rows = reports["algorithm-variety"].rows_for(
            platform="PGX.D", algorithm="lcc"
        )
        assert rows and all(r["status"] == "NA" for r in rows)

    def test_graphx_cdlp_fails_even_on_r4(self, reports):
        rows = reports["algorithm-variety"].rows_for(
            platform="GraphX", algorithm="cdlp", dataset="R4"
        )
        assert rows[0]["status"] == "F"

    def test_lcc_failures_match_paper(self, reports):
        report = reports["algorithm-variety"]
        for dataset in ("R4", "D300"):
            ok = {
                r["platform"]
                for r in report.rows_for(algorithm="lcc", dataset=dataset)
                if r["status"] == "ok"
            }
            assert ok == {"PowerGraph", "OpenG"}

    def test_graphmat_sssp_uses_d_backend(self, reports):
        rows = reports["algorithm-variety"].rows_for(
            platform="GraphMat", algorithm="sssp"
        )
        assert rows and all(r["backend"] == "D" for r in rows)


class TestVerticalScalability:
    def test_speedup_reported_per_thread_count(self, reports):
        rows = reports["vertical-scalability"].rows_for(
            platform="PGX.D", algorithm="bfs"
        )
        assert [r["threads"] for r in rows] == [1, 2, 4, 8, 16, 32]
        assert rows[-1]["speedup"] > 10

    def test_notes_summarize_max_speedups(self, reports):
        notes = reports["vertical-scalability"].notes
        assert len(notes) == 12  # 6 platforms x 2 algorithms


class TestStrongScalability:
    def test_openg_excluded(self, reports):
        platforms = {r["platform"] for r in reports["strong-scalability"].rows}
        assert "OpenG" not in platforms
        assert len(platforms) == 5

    def test_pgxd_single_machine_fails(self, reports):
        rows = reports["strong-scalability"].rows_for(
            platform="PGX.D", algorithm="bfs", machines=1
        )
        assert rows[0]["status"] == "F"

    def test_giraph_pr_sla_fail_at_two(self, reports):
        rows = reports["strong-scalability"].rows_for(
            platform="Giraph", algorithm="pr", machines=2
        )
        assert rows[0]["status"] == "F"


class TestWeakScalability:
    def test_slowdown_computed_vs_first_success(self, reports):
        rows = reports["weak-scalability"].rows_for(
            platform="GraphX", algorithm="pr"
        )
        finite = [r["slowdown"] for r in rows if r["slowdown"]]
        assert finite[0] == pytest.approx(1.0)
        assert finite[-1] > 5


class TestStressTest:
    def test_summary_rows_match_table10(self, reports):
        report = reports["stress-test"]
        expected = {
            "Giraph": "G26",
            "GraphX": "G25",
            "PowerGraph": "R5",
            "GraphMat": "G26",
            "OpenG": "R5",
            "PGX.D": "G25",
        }
        # Platform keys in summary rows are the lowercase registry names.
        lookup = {
            "giraph": "Giraph", "graphx": "GraphX", "powergraph": "PowerGraph",
            "graphmat": "GraphMat", "openg": "OpenG", "pgxd": "PGX.D",
        }
        for row in report.rows_for(summary="stress-limit"):
            assert expected[lookup[row["platform"]]] == row["dataset"]


class TestVariability:
    def test_ten_runs_per_config(self, reports):
        rows = reports["variability"].rows
        assert all(r["runs"] == 10 for r in rows if r["mean"] is not None)

    def test_openg_absent_from_distributed(self, reports):
        d_rows = reports["variability"].rows_for(config="D")
        assert all(r["platform"] != "openg" for r in d_rows)

    def test_cv_at_most_ten_percent(self, reports):
        # §4.7 key finding. Sampled CVs (n=10) fluctuate, allow headroom.
        for row in reports["variability"].rows:
            if row["cv"] is not None:
                assert row["cv"] < 0.20


class TestDataGeneration:
    def test_old_vs_new_panel(self, reports):
        rows = reports["data-generation"].rows_for(panel="old-vs-new")
        assert [r["scale_factor"] for r in rows] == [30, 100, 300, 1000, 3000]
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)

    def test_cluster_size_panel(self, reports):
        rows = reports["data-generation"].rows_for(panel="cluster-size")
        machines = {r["machines"] for r in rows}
        assert machines == {4, 8, 16}
