"""Tests for the public results repository."""

import json
import multiprocessing

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.harness.repository import Regression, ResultsRepository, RunMetadata
from repro.harness.results import BenchmarkResult, ResultsDatabase


def make_result(**overrides):
    defaults = dict(
        platform="GraphMat",
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=0.3,
        sla_compliant=True,
        validated=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults)


@pytest.fixture
def repo(tmp_path):
    return ResultsRepository(tmp_path / "repo")


@pytest.fixture
def database():
    return ResultsDatabase([make_result()])


class TestMetadata:
    def test_valid(self):
        meta = RunMetadata("run-1", "GraphMat on DAS-5")
        assert meta.run_id == "run-1"

    def test_invalid_run_id(self):
        with pytest.raises(ConfigurationError, match="run id"):
            RunMetadata("bad/id", "sut")

    def test_empty_sut(self):
        with pytest.raises(ConfigurationError, match="system_under_test"):
            RunMetadata("run-1", "")


class TestSubmission:
    def test_submit_and_reload(self, repo, database):
        meta = RunMetadata("run-1", "GraphMat on DAS-5", submitter="intel")
        path = repo.submit(meta, database)
        assert path.exists()
        assert repo.run_ids() == ["run-1"]
        assert repo.metadata("run-1").submitter == "intel"
        loaded = repo.load("run-1")
        assert len(loaded) == 1
        assert loaded.one(platform="GraphMat").modeled_processing_time == 0.3

    def test_duplicate_rejected(self, repo, database):
        meta = RunMetadata("run-1", "sut")
        repo.submit(meta, database)
        with pytest.raises(ConfigurationError, match="already exists"):
            repo.submit(meta, database)

    def test_empty_run_rejected(self, repo):
        with pytest.raises(ConfigurationError, match="empty run"):
            repo.submit(RunMetadata("run-1", "sut"), ResultsDatabase())

    def test_unvalidated_results_rejected(self, repo):
        db = ResultsDatabase([make_result(validated=None)])
        with pytest.raises(ValidationError, match="lack output validation"):
            repo.submit(RunMetadata("run-1", "sut"), db)

    def test_unvalidated_allowed_when_opted_out(self, repo):
        db = ResultsDatabase([make_result(validated=None)])
        repo.submit(RunMetadata("run-1", "sut"), db, require_validation=False)
        assert repo.run_ids() == ["run-1"]

    def test_failed_jobs_do_not_need_validation(self, repo):
        db = ResultsDatabase(
            [make_result(), make_result(status="crashed", validated=None,
                                        sla_compliant=False)]
        )
        repo.submit(RunMetadata("run-1", "sut"), db)

    def test_unknown_run(self, repo):
        with pytest.raises(ConfigurationError, match="unknown run"):
            repo.load("nope")


def _submit_burst(root, prefix, count, barrier):
    """Child-process writer: submit ``count`` runs as fast as possible."""
    repo = ResultsRepository(root)
    database = ResultsDatabase([make_result()])
    barrier.wait(timeout=30)
    for index in range(count):
        repo.submit(RunMetadata(f"{prefix}-{index}", "sut"), database)


class TestConcurrentSubmission:
    """Two processes submitting at once must not lose index entries.

    The index file is read-modify-written on every submission; without
    the repository's ``flock``-guarded critical section, two concurrent
    writers interleave and one writer's entries vanish from the index
    (the classic lost-update). The submission lock makes the whole
    read-modify-write atomic; this is the regression test for it.
    """

    def test_two_writers_lose_no_index_entries(self, tmp_path):
        root = tmp_path / "repo"
        count = 20
        barrier = multiprocessing.Barrier(3)
        writers = [
            multiprocessing.Process(
                target=_submit_burst, args=(str(root), prefix, count, barrier)
            )
            for prefix in ("left", "right")
        ]
        for proc in writers:
            proc.start()
        barrier.wait(timeout=30)  # release both writers together
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        repo = ResultsRepository(root)
        expected = {f"{prefix}-{index}"
                    for prefix in ("left", "right") for index in range(count)}
        assert set(repo.run_ids()) == expected
        # Every indexed run is also loadable: no torn run files either.
        for run_id in expected:
            assert len(repo.load(run_id)) == 1

    def test_index_file_is_valid_json_after_the_race(self, tmp_path):
        root = tmp_path / "repo"
        barrier = multiprocessing.Barrier(3)
        writers = [
            multiprocessing.Process(
                target=_submit_burst, args=(str(root), prefix, 5, barrier)
            )
            for prefix in ("a", "b")
        ]
        for proc in writers:
            proc.start()
        barrier.wait(timeout=30)
        for proc in writers:
            proc.join(timeout=60)
        index_path = root / ".index.json"
        assert index_path.exists()
        index = json.loads(index_path.read_text())
        assert len(index) == 10


class TestCrossRunAnalysis:
    def test_best_platform(self, repo):
        repo.submit(
            RunMetadata("vendor-a", "A"),
            ResultsDatabase([make_result(platform="A", modeled_processing_time=2.0)]),
        )
        repo.submit(
            RunMetadata("vendor-b", "B"),
            ResultsDatabase([make_result(platform="B", modeled_processing_time=0.5)]),
        )
        best = repo.best_platform("bfs", "D300")
        assert best["platform"] == "B"
        assert best["run_id"] == "vendor-b"

    def test_best_platform_ignores_sla_breakers(self, repo):
        repo.submit(
            RunMetadata("r", "sut"),
            ResultsDatabase(
                [make_result(modeled_processing_time=0.1, sla_compliant=False)]
            ),
            require_validation=False,
        )
        assert repo.best_platform("bfs", "D300") is None

    def test_best_platform_no_match(self, repo, database):
        repo.submit(RunMetadata("r", "sut"), database)
        assert repo.best_platform("sssp", "R4") is None

    def test_regression_detection(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.5)]),
        )
        regressions = repo.regressions("v1", "v2")
        assert len(regressions) == 1
        assert regressions[0].slowdown == pytest.approx(1.5)

    def test_no_regression_below_threshold(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.05)]),
        )
        assert repo.regressions("v1", "v2") == []

    def test_improvements_are_not_regressions(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=0.5)]),
        )
        assert repo.regressions("v1", "v2") == []

    def test_regressions_sorted_by_slowdown(self, repo):
        old = ResultsDatabase(
            [
                make_result(dataset="D300", modeled_processing_time=1.0),
                make_result(dataset="G22", modeled_processing_time=1.0),
            ]
        )
        new = ResultsDatabase(
            [
                make_result(dataset="D300", modeled_processing_time=2.0),
                make_result(dataset="G22", modeled_processing_time=5.0),
            ]
        )
        repo.submit(RunMetadata("v1", "sut"), old)
        repo.submit(RunMetadata("v2", "sut"), new)
        regressions = repo.regressions("v1", "v2")
        assert [r.dataset for r in regressions] == ["G22", "D300"]
