"""Tests for the public results repository."""

import json
import multiprocessing

import pytest

from repro.exceptions import ConfigurationError, ValidationError
from repro.harness.repository import Regression, ResultsRepository, RunMetadata
from repro.harness.results import BenchmarkResult, ResultsDatabase


def make_result(**overrides):
    defaults = dict(
        platform="GraphMat",
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=0.3,
        sla_compliant=True,
        validated=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults)


@pytest.fixture
def repo(tmp_path):
    return ResultsRepository(tmp_path / "repo")


@pytest.fixture
def database():
    return ResultsDatabase([make_result()])


class TestMetadata:
    def test_valid(self):
        meta = RunMetadata("run-1", "GraphMat on DAS-5")
        assert meta.run_id == "run-1"

    def test_invalid_run_id(self):
        with pytest.raises(ConfigurationError, match="run id"):
            RunMetadata("bad/id", "sut")

    def test_empty_sut(self):
        with pytest.raises(ConfigurationError, match="system_under_test"):
            RunMetadata("run-1", "")


class TestSubmission:
    def test_submit_and_reload(self, repo, database):
        meta = RunMetadata("run-1", "GraphMat on DAS-5", submitter="intel")
        path = repo.submit(meta, database)
        assert path.exists()
        assert repo.run_ids() == ["run-1"]
        assert repo.metadata("run-1").submitter == "intel"
        loaded = repo.load("run-1")
        assert len(loaded) == 1
        assert loaded.one(platform="GraphMat").modeled_processing_time == 0.3

    def test_duplicate_rejected(self, repo, database):
        meta = RunMetadata("run-1", "sut")
        repo.submit(meta, database)
        with pytest.raises(ConfigurationError, match="already exists"):
            repo.submit(meta, database)

    def test_empty_run_rejected(self, repo):
        with pytest.raises(ConfigurationError, match="empty run"):
            repo.submit(RunMetadata("run-1", "sut"), ResultsDatabase())

    def test_unvalidated_results_rejected(self, repo):
        db = ResultsDatabase([make_result(validated=None)])
        with pytest.raises(ValidationError, match="lack output validation"):
            repo.submit(RunMetadata("run-1", "sut"), db)

    def test_unvalidated_allowed_when_opted_out(self, repo):
        db = ResultsDatabase([make_result(validated=None)])
        repo.submit(RunMetadata("run-1", "sut"), db, require_validation=False)
        assert repo.run_ids() == ["run-1"]

    def test_failed_jobs_do_not_need_validation(self, repo):
        db = ResultsDatabase(
            [make_result(), make_result(status="crashed", validated=None,
                                        sla_compliant=False)]
        )
        repo.submit(RunMetadata("run-1", "sut"), db)

    def test_unknown_run(self, repo):
        with pytest.raises(ConfigurationError, match="unknown run"):
            repo.load("nope")


def _submit_burst(root, prefix, count, barrier):
    """Child-process writer: submit ``count`` runs as fast as possible."""
    repo = ResultsRepository(root)
    database = ResultsDatabase([make_result()])
    barrier.wait(timeout=30)
    for index in range(count):
        repo.submit(RunMetadata(f"{prefix}-{index}", "sut"), database)


def _submit_same_run(root, run_id, barrier, queue):
    """Child-process writer: claim one fixed run id; report the verdict."""
    repo = ResultsRepository(root)
    database = ResultsDatabase([make_result()])
    barrier.wait(timeout=30)
    try:
        repo.submit(RunMetadata(run_id, "sut"), database)
        queue.put("stored")
    except ConfigurationError:
        queue.put("duplicate")


class TestConcurrentSubmission:
    """Concurrent submitters must not lose rows or share a run id.

    The legacy design serialized writers with an ``flock`` sidecar
    around a read-modify-write of ``.index.json`` — the lost-update
    these tests guarded against. The store inherits the obligation with
    SQLite transactions: every submission is a ``BEGIN IMMEDIATE``
    commit, so the same assertions must hold with no lock file and no
    index file at all.
    """

    WRITERS = 8

    def test_eight_writers_lose_no_runs(self, tmp_path):
        root = tmp_path / "repo"
        count = 5
        prefixes = [f"w{n}" for n in range(self.WRITERS)]
        barrier = multiprocessing.Barrier(self.WRITERS + 1)
        writers = [
            multiprocessing.Process(
                target=_submit_burst, args=(str(root), prefix, count, barrier)
            )
            for prefix in prefixes
        ]
        for proc in writers:
            proc.start()
        barrier.wait(timeout=30)  # release all writers together
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        repo = ResultsRepository(root)
        expected = {f"{prefix}-{index}"
                    for prefix in prefixes for index in range(count)}
        assert set(repo.run_ids()) == expected
        # Every stored run is also loadable in full: no torn rows.
        for run_id in expected:
            assert len(repo.load(run_id)) == 1

    def test_duplicate_run_id_rejected_exactly_once(self, tmp_path):
        """Of N processes claiming one run id, exactly one wins."""
        root = tmp_path / "repo"
        barrier = multiprocessing.Barrier(self.WRITERS + 1)
        queue = multiprocessing.Queue()
        writers = [
            multiprocessing.Process(
                target=_submit_same_run,
                args=(str(root), "contested", barrier, queue),
            )
            for _ in range(self.WRITERS)
        ]
        for proc in writers:
            proc.start()
        barrier.wait(timeout=30)
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        verdicts = [queue.get(timeout=10) for _ in range(self.WRITERS)]
        assert verdicts.count("stored") == 1
        assert verdicts.count("duplicate") == self.WRITERS - 1
        repo = ResultsRepository(root)
        assert repo.run_ids() == ["contested"]
        assert len(repo.load("contested")) == 1

    def test_no_sidecar_files(self, tmp_path, repo, database):
        """The flock sidecar and shadow index are gone for good."""
        repo.submit(RunMetadata("run-1", "sut"), database)
        names = {p.name for p in repo.root.iterdir()}
        assert ".lock" not in names
        assert ".index.json" not in names

    def test_safe_without_fcntl(self, tmp_path, monkeypatch):
        """Mutual exclusion survives platforms with no ``fcntl`` at all.

        The legacy locking degraded to a no-op where ``fcntl`` failed
        to import; the store's transactions must not care. Hide the
        module, reload the repository module against the hidden world,
        and check both duplicate rejection and that nothing in the
        module references fcntl anymore.
        """
        import importlib
        import sys

        import repro.harness.repository as repository_module

        monkeypatch.setitem(sys.modules, "fcntl", None)
        reloaded = importlib.reload(repository_module)
        try:
            assert not hasattr(reloaded, "fcntl")
            repo = reloaded.ResultsRepository(tmp_path / "repo")
            database = ResultsDatabase([make_result()])
            repo.submit(reloaded.RunMetadata("run-1", "sut"), database)
            with pytest.raises(ConfigurationError, match="already exists"):
                repo.submit(reloaded.RunMetadata("run-1", "sut"), database)
            assert repo.run_ids() == ["run-1"]
        finally:
            monkeypatch.delitem(sys.modules, "fcntl")
            importlib.reload(repository_module)


class TestLegacyAbsorption:
    """A directory of pre-store JSON archives answers through the facade."""

    def _write_legacy_archive(self, root, run_id, tproc=0.3):
        payload = {
            "metadata": {
                "run_id": run_id,
                "system_under_test": "legacy sut",
                "submitter": "",
                "description": "",
            },
            "results": [make_result(modeled_processing_time=tproc).as_dict()],
        }
        root.mkdir(parents=True, exist_ok=True)
        (root / f"{run_id}.json").write_text(json.dumps(payload, indent=1))

    def test_legacy_archives_absorbed(self, tmp_path):
        root = tmp_path / "repo"
        self._write_legacy_archive(root, "old-1")
        self._write_legacy_archive(root, "old-2", tproc=0.1)
        repo = ResultsRepository(root)
        assert repo.run_ids() == ["old-1", "old-2"]
        assert repo.load("old-1").one(platform="GraphMat").validated is True
        best = repo.best_platform("bfs", "D300")
        assert best["run_id"] == "old-2"
        # The archives stay in place; absorption is read-only.
        assert (root / "old-1.json").exists()

    def test_absorption_is_idempotent_and_mixes_eras(self, tmp_path):
        root = tmp_path / "repo"
        self._write_legacy_archive(root, "old-1")
        repo = ResultsRepository(root)
        repo.submit(
            RunMetadata("new-1", "sut"), ResultsDatabase([make_result()])
        )
        again = ResultsRepository(root)  # re-opening must not re-import
        assert again.run_ids() == ["new-1", "old-1"]

    def test_foreign_json_ignored(self, tmp_path):
        root = tmp_path / "repo"
        root.mkdir(parents=True)
        (root / "notes.json").write_text(json.dumps({"hello": "world"}))
        (root / "torn.json").write_text('{"metadata": {')
        repo = ResultsRepository(root)
        assert repo.run_ids() == []


class TestCrossRunAnalysis:
    def test_best_platform(self, repo):
        repo.submit(
            RunMetadata("vendor-a", "A"),
            ResultsDatabase([make_result(platform="A", modeled_processing_time=2.0)]),
        )
        repo.submit(
            RunMetadata("vendor-b", "B"),
            ResultsDatabase([make_result(platform="B", modeled_processing_time=0.5)]),
        )
        best = repo.best_platform("bfs", "D300")
        assert best["platform"] == "B"
        assert best["run_id"] == "vendor-b"

    def test_best_platform_ignores_sla_breakers(self, repo):
        repo.submit(
            RunMetadata("r", "sut"),
            ResultsDatabase(
                [make_result(modeled_processing_time=0.1, sla_compliant=False)]
            ),
            require_validation=False,
        )
        assert repo.best_platform("bfs", "D300") is None

    def test_best_platform_no_match(self, repo, database):
        repo.submit(RunMetadata("r", "sut"), database)
        assert repo.best_platform("sssp", "R4") is None

    def test_regression_detection(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.5)]),
        )
        regressions = repo.regressions("v1", "v2")
        assert len(regressions) == 1
        assert regressions[0].slowdown == pytest.approx(1.5)

    def test_no_regression_below_threshold(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.05)]),
        )
        assert repo.regressions("v1", "v2") == []

    def test_improvements_are_not_regressions(self, repo):
        repo.submit(
            RunMetadata("v1", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=1.0)]),
        )
        repo.submit(
            RunMetadata("v2", "sut"),
            ResultsDatabase([make_result(modeled_processing_time=0.5)]),
        )
        assert repo.regressions("v1", "v2") == []

    def test_regressions_sorted_by_slowdown(self, repo):
        old = ResultsDatabase(
            [
                make_result(dataset="D300", modeled_processing_time=1.0),
                make_result(dataset="G22", modeled_processing_time=1.0),
            ]
        )
        new = ResultsDatabase(
            [
                make_result(dataset="D300", modeled_processing_time=2.0),
                make_result(dataset="G22", modeled_processing_time=5.0),
            ]
        )
        repo.submit(RunMetadata("v1", "sut"), old)
        repo.submit(RunMetadata("v2", "sut"), new)
        regressions = repo.regressions("v1", "v2")
        assert [r.dataset for r in regressions] == ["G22", "D300"]
