"""Tests for the installation self-check."""

from repro.harness.selfcheck import CHECKS, run_selfcheck


class TestSelfcheck:
    def test_all_checks_pass_here(self):
        results = run_selfcheck()
        failed = [r for r in results if not r.passed]
        assert not failed, failed

    def test_seven_checks_defined(self):
        assert len(CHECKS) == 7
        names = [name for name, _ in CHECKS]
        assert "calibration" in names and "determinism" in names
        assert "lint" in names

    def test_details_are_informative(self):
        for result in run_selfcheck():
            assert result.detail

    def test_failures_are_captured_not_raised(self, monkeypatch):
        import repro.harness.selfcheck as sc

        def broken():
            raise AssertionError("intentionally broken")

        monkeypatch.setattr(
            sc, "CHECKS", [("broken", broken)] + sc.CHECKS[:1]
        )
        results = sc.run_selfcheck()
        assert results[0].passed is False
        assert "intentionally broken" in results[0].detail
        assert results[1].passed is True
