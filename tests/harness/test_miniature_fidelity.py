"""Miniature fidelity: do the replicas preserve what the models read?

The performance models consume the *catalog metadata* (skew, degree
moments); the miniatures exist to execute algorithms on structurally
similar graphs. These tests verify the two layers tell the same story:
where the catalog says a dataset is more skewed / denser / more
clustered than another, the materialized miniatures agree.
"""

import numpy as np
import pytest

from repro.graph.stats import compute_statistics, degree_skewness
from repro.harness.datasets import get_dataset


def mini(dataset_id):
    return get_dataset(dataset_id).materialize()


class TestSkewOrdering:
    def test_graph500_more_skewed_than_datagen(self):
        # The §4.6 split rests on this ordering; it must hold in the
        # miniatures too, not just in the metadata.
        g500 = degree_skewness(mini("G23").degrees())
        datagen = degree_skewness(mini("D300").degrees())
        assert g500 > 1.5 * datagen

    def test_metadata_agrees(self):
        assert (
            get_dataset("G23").profile.memory_skew
            > get_dataset("D300").profile.memory_skew
        )

    def test_wiki_talk_is_hub_dominated(self):
        graph = mini("R1")
        in_skew = degree_skewness(graph.in_degrees())
        assert in_skew > 2.0  # talk pages: a few celebrity targets

    def test_dota_league_is_dense(self):
        # dota-league has the highest mean degree of the real graphs
        # (167 at full scale); its miniature must also be the densest
        # real-graph miniature.
        density = {
            d: compute_statistics(mini(d)).mean_degree
            for d in ("R1", "R2", "R3", "R4")
        }
        assert max(density, key=density.get) == "R4"


class TestStructuralClasses:
    def test_citation_miniature_is_acyclic(self):
        graph = mini("R3")
        assert graph.directed
        assert all(s > d for s, d in graph.edges())

    def test_social_replicas_have_giant_component(self):
        for dataset_id in ("R5", "R6"):
            stats = compute_statistics(mini(dataset_id))
            assert stats.largest_component_fraction > 0.6

    def test_coplay_miniatures_clustered(self):
        # Match-based graphs (kgs, dota-league) carry strong triangle
        # structure; their miniatures must beat the datagen baseline.
        kgs = compute_statistics(mini("R2")).mean_clustering_coefficient
        assert kgs > 0.2

    def test_datagen_variants_share_size(self):
        base = mini("D100")
        for variant in ("D100'", "D100\""):
            graph = mini(variant)
            assert graph.num_vertices == base.num_vertices
            # Same catalog row except the CC target: sizes stay close.
            assert graph.num_edges == pytest.approx(base.num_edges, rel=0.25)


class TestBfsCoverageMetadata:
    def test_kgs_low_coverage_is_metadata_only(self):
        # The paper's 10%-coverage finding is a full-scale property of
        # the pinned benchmark root; the model consumes the metadata.
        assert get_dataset("R2").profile.bfs_coverage == pytest.approx(0.10)

    def test_miniature_roots_reach_most_of_their_component(self):
        from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search

        for dataset_id in ("D100", "G22", "R4"):
            ds = get_dataset(dataset_id)
            graph = ds.materialize()
            source = ds.algorithm_parameters("bfs")["source_vertex"]
            depths = breadth_first_search(graph, source)
            reached = np.count_nonzero(depths != BFS_UNREACHABLE)
            assert reached > 0.5 * graph.num_vertices, dataset_id


class TestWeightConventions:
    def test_weighted_miniatures_have_positive_finite_weights(self):
        for dataset_id in ("R4", "D100", "D300", "D1000"):
            graph = mini(dataset_id)
            assert graph.is_weighted
            assert np.all(graph.edge_weights > 0)
            assert np.all(np.isfinite(graph.edge_weights))

    def test_unweighted_miniatures_have_no_weights(self):
        for dataset_id in ("R1", "R2", "G22", "G26"):
            assert not mini(dataset_id).is_weighted
