"""Tests for benchmark configuration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.platforms.cluster import ClusterResources


class TestDefaults:
    def test_full_selection(self):
        config = BenchmarkConfig()
        assert len(config.platforms) == 6
        assert len(config.datasets) == 16
        assert len(config.algorithms) == 6
        assert config.repetitions == 1
        assert config.sla_seconds == 3600.0

    def test_platform_names_normalized(self):
        config = BenchmarkConfig(platforms=["GiRaPh"])
        assert config.platforms == ["giraph"]


class TestValidation:
    def test_unknown_platform(self):
        with pytest.raises(ConfigurationError, match="unknown platforms"):
            BenchmarkConfig(platforms=["neo4j"])

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError, match="unknown datasets"):
            BenchmarkConfig(datasets=["R99"])

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError, match="unknown algorithms"):
            BenchmarkConfig(algorithms=["dfs"])

    def test_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(repetitions=0)

    def test_nonpositive_sla(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig(sla_seconds=0)


class TestSubset:
    def test_subset_overrides(self):
        base = BenchmarkConfig()
        small = base.subset(platforms=["openg"], algorithms=["bfs"])
        assert small.platforms == ["openg"]
        assert small.algorithms == ["bfs"]
        assert small.datasets == base.datasets

    def test_subset_does_not_mutate_base(self):
        base = BenchmarkConfig()
        base.subset(platforms=["openg"])
        assert len(base.platforms) == 6

    def test_subset_resources(self):
        small = BenchmarkConfig().subset(
            resources=ClusterResources(machines=4)
        )
        assert small.resources.machines == 4

    def test_subset_validates(self):
        with pytest.raises(ConfigurationError):
            BenchmarkConfig().subset(platforms=["bad"])
