"""Tests for the full-benchmark orchestration."""

import pytest

from repro.harness.full_run import run_full_benchmark
from repro.harness.repository import ResultsRepository


class TestSelectedExperiments:
    def test_two_experiments_share_a_database(self):
        result = run_full_benchmark(
            experiment_ids=["algorithm-variety", "variability"]
        )
        assert set(result.reports) == {"algorithm-variety", "variability"}
        assert result.job_count > 100  # 72 + 110 jobs

    def test_notes_prefixed_with_experiment(self):
        result = run_full_benchmark(experiment_ids=["stress-test"])
        assert result.notes
        assert all(note.startswith("[stress-test]") for note in result.notes)

    def test_render(self):
        result = run_full_benchmark(experiment_ids=["algorithm-variety"])
        text = result.render()
        assert "# Graphalytics full benchmark run" in text
        assert "## LCC" in text

    def test_report_written(self, tmp_path):
        path = tmp_path / "report.md"
        run_full_benchmark(
            experiment_ids=["variability"], report_path=path
        )
        assert "## BFS" in path.read_text()


class TestRepositorySubmission:
    def test_validated_run_submitted(self, tmp_path):
        repo = ResultsRepository(tmp_path / "repo")
        run_full_benchmark(
            experiment_ids=["algorithm-variety"],
            repository=repo,
            seed=3,
        )
        assert repo.run_ids() == ["full-run-seed3"]
        stored = repo.load("full-run-seed3")
        assert len(stored) > 0


@pytest.mark.slow
class TestCompleteSuite:
    def test_all_eight_experiments(self):
        result = run_full_benchmark()
        assert len(result.reports) == 8
        assert result.job_count > 500
