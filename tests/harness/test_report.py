"""Tests for the Markdown report generator."""

import pytest

from repro.harness.report import render_report, save_report, summarize
from repro.harness.results import BenchmarkResult, ResultsDatabase


def make_result(**overrides):
    defaults = dict(
        platform="GraphMat",
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=0.3,
        evps=1.0e9,
        sla_compliant=True,
        validated=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults)


@pytest.fixture
def database():
    return ResultsDatabase(
        [
            make_result(),
            make_result(platform="Giraph", modeled_processing_time=22.3,
                        evps=1.4e7),
            make_result(platform="PGX.D", algorithm="lcc",
                        status="not-supported", sla_compliant=False,
                        modeled_processing_time=None, evps=None,
                        validated=None),
            make_result(platform="GraphX", dataset="G25",
                        status="failed-memory", sla_compliant=False,
                        modeled_processing_time=None, evps=None,
                        validated=None),
        ]
    )


class TestSummarize:
    def test_counts(self, database):
        summary = summarize(database)
        assert summary["jobs"] == 4
        assert summary["succeeded"] == 2
        assert summary["sla_compliant"] == 2
        assert summary["validated"] == 2

    def test_failures_by_status(self, database):
        summary = summarize(database)
        assert summary["failures"] == {
            "not-supported": 1,
            "failed-memory": 1,
        }

    def test_dimension_lists(self, database):
        summary = summarize(database)
        assert "GraphMat" in summary["platforms"]
        assert "bfs" in summary["algorithms"]


class TestRenderReport:
    def test_header_and_sections(self, database):
        text = render_report(database, title="My run")
        assert text.startswith("# My run")
        assert "## BFS" in text
        assert "## LCC" in text

    def test_cells(self, database):
        text = render_report(database)
        assert "300.0 ms" in text      # GraphMat BFS
        assert "NA" in text            # PGX.D LCC
        assert "FAIL" in text          # GraphX memory failure

    def test_throughput_leader(self, database):
        text = render_report(database)
        assert "Fastest (EVPS): D300: GraphMat" in text

    def test_empty_database(self):
        text = render_report(ResultsDatabase())
        assert "0 jobs" in text

    def test_mean_over_repetitions(self):
        db = ResultsDatabase(
            [
                make_result(run_index=0, modeled_processing_time=1.0),
                make_result(run_index=1, modeled_processing_time=3.0),
            ]
        )
        assert "2.00 s" in render_report(db)

    def test_save_report(self, database, tmp_path):
        path = save_report(database, tmp_path / "report.md")
        assert path.read_text().startswith("# Graphalytics benchmark report")


class TestEndToEnd:
    def test_report_from_real_run(self, tmp_path):
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner

        config = BenchmarkConfig(
            platforms=["openg", "graphmat"],
            datasets=["R1"],
            algorithms=["bfs", "pr"],
        )
        db = BenchmarkRunner(config).run()
        text = render_report(db)
        assert "## BFS" in text and "## PR" in text
        assert "OpenG" in text and "GraphMat" in text
