"""Tests for the benchmark runner (orchestration, validation, metrics)."""

import pytest

from repro.harness.config import BenchmarkConfig
from repro.harness.datasets import get_dataset
from repro.harness.runner import BenchmarkRunner
from repro.platforms.cluster import ClusterResources


@pytest.fixture
def runner():
    return BenchmarkRunner(BenchmarkConfig(seed=0))


class TestSingleJob:
    def test_successful_job_recorded(self, runner):
        result = runner.run_job("graphmat", "D100", "bfs")
        assert result.succeeded
        assert result.sla_compliant
        assert result.validated is True
        assert result.eps > 0
        assert result.evps > result.eps
        assert len(runner.database) == 1

    def test_evps_uses_full_scale_counts(self, runner):
        result = runner.run_job("graphmat", "D100", "bfs")
        profile = get_dataset("D100").profile
        assert result.evps == pytest.approx(
            profile.elements / result.modeled_processing_time
        )

    def test_tproc_comes_from_granula_archive(self, runner):
        # The runner extracts Tproc from the Granula archive of the job's
        # event log; for a successful job this equals the driver's number.
        result = runner.run_job("powergraph", "D100", "wcc")
        assert result.modeled_processing_time is not None

    def test_memory_failure_recorded(self, runner):
        result = runner.run_job("pgxd", "G25", "bfs")
        assert result.status == "failed-memory"
        assert not result.sla_compliant
        assert result.validated is None

    def test_not_supported_recorded(self, runner):
        result = runner.run_job("pgxd", "D100", "lcc")
        assert result.status == "not-supported"

    def test_crash_recorded(self, runner):
        result = runner.run_job("graphx", "R4", "cdlp")
        assert result.status == "crashed"

    def test_resources_override(self, runner):
        result = runner.run_job(
            "powergraph", "D100", "bfs",
            resources=ClusterResources(machines=4),
        )
        assert result.machines == 4

    def test_measured_seconds_positive(self, runner):
        result = runner.run_job("openg", "D100", "pr")
        assert result.measured_processing_seconds > 0


class TestCaching:
    def test_upload_reused_across_jobs(self, runner):
        runner.run_job("graphmat", "D100", "bfs")
        handle1 = runner._handles[("graphmat", "D100")]
        runner.run_job("graphmat", "D100", "pr")
        assert runner._handles[("graphmat", "D100")] is handle1

    def test_driver_reused(self, runner):
        assert runner.driver("giraph") is runner.driver("giraph")


class TestCanRun:
    def test_sssp_needs_weights(self, runner):
        assert runner.can_run("graphmat", get_dataset("R4"), "sssp")
        assert not runner.can_run("graphmat", get_dataset("G22"), "sssp")

    def test_openg_single_machine_only(self):
        config = BenchmarkConfig(resources=ClusterResources(machines=2))
        runner = BenchmarkRunner(config)
        assert not runner.can_run("openg", get_dataset("D100"), "bfs")
        assert runner.can_run("giraph", get_dataset("D100"), "bfs")


class TestBatchRun:
    def test_small_sweep(self):
        config = BenchmarkConfig(
            platforms=["openg", "graphmat"],
            datasets=["R1", "R4"],
            algorithms=["bfs", "sssp"],
        )
        db = BenchmarkRunner(config).run()
        # sssp skipped on R1 (unweighted): 2 platforms x (2 bfs + 1 sssp).
        assert len(db) == 6
        assert all(r.validated for r in db if r.succeeded)

    def test_repetitions(self):
        config = BenchmarkConfig(
            platforms=["openg"], datasets=["R1"], algorithms=["bfs"],
            repetitions=3,
        )
        db = BenchmarkRunner(config).run()
        assert len(db) == 3
        assert {r.run_index for r in db} == {0, 1, 2}
        times = db.processing_times(dataset="R1")
        assert len(set(times)) == 3  # jitter differs per repetition

    def test_validation_can_be_disabled(self):
        config = BenchmarkConfig(
            platforms=["openg"], datasets=["R1"], algorithms=["bfs"],
            validate_outputs=False,
        )
        db = BenchmarkRunner(config).run()
        assert all(r.validated is None for r in db)


class TestSlaOverride:
    def test_tighter_sla_flips_compliance(self):
        # Giraph BFS on D300 has a ~278 s makespan: compliant under the
        # 1-hour SLA, non-compliant under a 100-second budget.
        relaxed = BenchmarkRunner(BenchmarkConfig(seed=0))
        assert relaxed.run_job("giraph", "D300", "bfs").sla_compliant

        strict = BenchmarkRunner(BenchmarkConfig(seed=0, sla_seconds=100.0))
        assert not strict.run_job("giraph", "D300", "bfs").sla_compliant

    def test_strict_sla_changes_stress_limit(self):
        # Under a 10-second SLA even mid-size datasets "fail" for slow
        # loaders, moving the stress-test limit far below Table 10.
        strict = BenchmarkRunner(BenchmarkConfig(seed=0, sla_seconds=10.0))
        result = strict.run_job("pgxd", "R4", "bfs")
        assert result.succeeded
        assert not result.sla_compliant  # loading alone exceeds 10 s
