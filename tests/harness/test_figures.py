"""Tests for the ASCII figure renderer."""

import pytest

from repro.harness.experiments import ExperimentReport
from repro.harness.figures import LogScatter, render_dataset_variety, render_scaling


class TestLogScatter:
    def test_basic_render(self):
        scatter = LogScatter(width=40)
        scatter.add_row("D300", {"G": 22.3, "M": 0.3})
        text = scatter.render()
        assert "D300" in text
        assert "G" in text and "M" in text
        assert "1e" in text  # axis ticks

    def test_log_positions_ordered(self):
        scatter = LogScatter(width=40)
        scatter.add_row("row", {"A": 0.1, "B": 100.0})
        line = scatter.render().splitlines()[0]
        assert line.index("A") < line.index("B")

    def test_overlap_marker(self):
        scatter = LogScatter(width=40)
        scatter.add_row("row", {"A": 1.0, "B": 1.0})
        assert "*" in scatter.render()

    def test_failure_marker(self):
        scatter = LogScatter(width=40)
        scatter.add_row("row", {"A": None, "B": 5.0})
        assert "F" in scatter.render().splitlines()[0]

    def test_no_data(self):
        scatter = LogScatter()
        scatter.add_row("row", {"A": None})
        assert scatter.render() == "(no data)"

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            LogScatter(width=5)

    def test_single_decade_padded(self):
        scatter = LogScatter(width=40)
        scatter.add_row("row", {"A": 5.0})
        assert "1e0" in scatter.render()


def _fake_variety_report():
    report = ExperimentReport("dataset-variety", "Dataset variety")
    for dataset, values in (
        ("R1", {"Giraph": 5.5, "GraphMat": 0.06}),
        ("D300", {"Giraph": 22.3, "GraphMat": 0.3}),
    ):
        for platform, tproc in values.items():
            report.rows.append(
                {
                    "platform": platform,
                    "dataset": dataset,
                    "algorithm": "bfs",
                    "tproc": tproc,
                    "status": "ok",
                }
            )
    return report


class TestFigureRenderers:
    def test_dataset_variety(self):
        text = render_dataset_variety(_fake_variety_report(), "bfs")
        assert "Tproc for BFS" in text
        assert "R1" in text and "D300" in text
        assert "legend:" in text

    def test_scaling(self):
        report = ExperimentReport("strong-scalability", "Strong")
        for machines, tproc in ((1, 10.0), (2, 30.0), (4, 12.0)):
            report.rows.append(
                {
                    "platform": "Giraph",
                    "algorithm": "bfs",
                    "machines": machines,
                    "tproc": tproc,
                    "status": "ok",
                }
            )
        text = render_scaling(report, "bfs", x_values=(1, 2, 4))
        assert "machines=1" in text and "machines=4" in text

    def test_real_experiment_renders(self):
        from repro.harness.experiments import get_experiment
        from repro.harness.runner import BenchmarkRunner
        from repro.harness.config import BenchmarkConfig

        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        report = get_experiment("algorithm-variety").run(runner)
        # Reuse the variety renderer on the R4/D300 rows.
        report.rows = [
            {**row, "dataset": row["dataset"]}
            for row in report.rows
            if row.get("tproc") is not None
        ]
        text = render_dataset_variety(report, "bfs")
        assert "legend:" in text
