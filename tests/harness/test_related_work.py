"""Tests for the Table 12 related-work matrix."""

from repro.harness.related_work import RELATED_WORK, related_work_table


class TestTable12:
    def test_fourteen_rows(self):
        assert len(RELATED_WORK) == 14

    def test_graphalytics_is_last_and_unique(self):
        this_work = RELATED_WORK[-1]
        assert "Graphalytics" in this_work.name
        # "There is no alternative to Graphalytics in covering R1-R4":
        # it is the only row with robustness + renewal + 2-stage selection.
        assert this_work.robustness and this_work.renewal
        for other in RELATED_WORK[:-1]:
            assert not other.robustness
            assert not other.renewal
            assert other.datasets != "2-stage"

    def test_graph500_row(self):
        row = next(w for w in RELATED_WORK if w.name == "Graph500")
        assert row.kind == "B"
        assert row.scalability_tests == "No"

    def test_prior_work_covers_scalability_but_not_robustness(self):
        row = next(w for w in RELATED_WORK if "prior work" in w.name)
        assert row.scalability_tests == "W/S/V/H"
        assert not row.robustness

    def test_table_rows_render(self):
        rows = related_work_table()
        assert len(rows) == 14
        assert rows[-1]["robustness"] == "Yes"
        assert rows[0]["renewal"] == "No"

    def test_benchmarks_vs_studies(self):
        kinds = [w.kind for w in RELATED_WORK]
        assert kinds.count("B") == 8
        assert kinds.count("S") == 6
