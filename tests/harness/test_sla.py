"""Tests for the service-level agreement (paper §2.3)."""

from repro.harness.sla import SLA_MAKESPAN_SECONDS, job_successful, sla_compliant
from repro.platforms.base import JobResult, JobStatus
from repro.platforms.cluster import ClusterResources


def make_result(status=JobStatus.SUCCEEDED, makespan=100.0):
    return JobResult(
        platform="X",
        algorithm="bfs",
        dataset="D300",
        resources=ClusterResources(),
        status=status,
        modeled_makespan=makespan,
    )


class TestSLA:
    def test_budget_is_one_hour(self):
        assert SLA_MAKESPAN_SECONDS == 3600.0

    def test_fast_success_compliant(self):
        assert sla_compliant(make_result())

    def test_exactly_one_hour_compliant(self):
        assert sla_compliant(make_result(makespan=3600.0))

    def test_over_one_hour_breaks_sla(self):
        assert not sla_compliant(make_result(makespan=3600.1))

    def test_crash_breaks_sla(self):
        assert not sla_compliant(make_result(status=JobStatus.CRASHED))

    def test_memory_failure_breaks_sla(self):
        assert not sla_compliant(make_result(status=JobStatus.FAILED_MEMORY))

    def test_not_supported_breaks_sla(self):
        assert not sla_compliant(make_result(status=JobStatus.NOT_SUPPORTED))

    def test_custom_budget(self):
        assert not sla_compliant(make_result(makespan=100.0), budget=50.0)

    def test_missing_makespan_treated_as_compliant(self):
        assert sla_compliant(make_result(makespan=None))

    def test_job_successful_alias(self):
        assert job_successful(make_result())
        assert not job_successful(make_result(makespan=9999.0))
