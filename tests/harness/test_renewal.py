"""Tests for the renewal process (paper §2.4)."""

from repro.harness.renewal import RenewalProcess
from repro.harness.survey import SurveyClass


CORE = ("bfs", "pr", "wcc", "cdlp", "lcc", "sssp")


class TestAlgorithmReselection:
    def test_stable_with_same_surveys(self):
        process = RenewalProcess(CORE)
        selected, added, obsoleted = process.reselect_algorithms()
        assert set(selected) == set(CORE)
        assert added == ()
        assert obsoleted == ()

    def test_new_class_adds_algorithm(self):
        # A fresh survey where Traversal has faded and a new class rose.
        fresh = (
            SurveyClass("Statistics", 30, ("pr", "lcc")),
            SurveyClass("Traversal", 30, ("bfs",)),
            SurveyClass("Components", 25, ("wcc", "cdlp")),
            SurveyClass("Embeddings", 25, ("emb",)),
        )
        process = RenewalProcess(CORE)
        selected, added, obsoleted = process.reselect_algorithms(
            unweighted_survey=fresh, weighted_survey=(),
        )
        assert "emb" in added
        assert "sssp" in obsoleted  # weighted survey empty this round

    def test_faded_class_marks_obsolete(self):
        fresh = (
            SurveyClass("Traversal", 95, ("bfs",)),
            SurveyClass("Statistics", 5, ("pr", "lcc")),
        )
        process = RenewalProcess(CORE)
        _, _, obsoleted = process.reselect_algorithms(
            unweighted_survey=fresh, weighted_survey=(),
        )
        assert "pr" in obsoleted


class TestClassLRecalibration:
    def test_all_fast_largest_class_wins(self):
        makespans = {7.8: 100.0, 8.5: 900.0, 9.0: 3000.0}
        label = RenewalProcess.recalibrate_reference_class(makespans)
        assert label == "XL"

    def test_slow_class_excluded(self):
        makespans = {7.8: 100.0, 8.5: 900.0, 9.0: 5000.0}
        label = RenewalProcess.recalibrate_reference_class(makespans)
        assert label == "L"

    def test_one_slow_graph_disqualifies_class(self):
        # Class L holds only if *all* graphs in the class finish in time.
        makespans = {8.5: 900.0, 8.7: 4000.0}
        label = RenewalProcess.recalibrate_reference_class(makespans)
        assert label != "L"

    def test_integrates_with_stress_results(self):
        # Drive recalibration from the modeled best-platform makespans.
        from repro.harness.datasets import DATASETS
        from repro.platforms.cluster import ClusterResources
        from repro.platforms.registry import PLATFORMS, create_driver

        makespans = {}
        for ds in DATASETS.values():
            best = None
            for name in PLATFORMS:
                model = create_driver(name).model
                r = ClusterResources()
                if not model.fits_in_memory("bfs", ds.profile, r):
                    continue
                m = model.makespan("bfs", ds.profile, r)
                best = m if best is None else min(best, m)
            if best is not None:
                makespans[ds.profile.scale] = best
        label = RenewalProcess.recalibrate_reference_class(makespans)
        # With 2016-era platforms, the largest hour-feasible class
        # includes the XL graphs (G26/D1000 complete on PowerGraph/OpenG).
        assert label in ("L", "XL")


class TestFullRenewal:
    def test_renew_produces_decision(self):
        process = RenewalProcess(CORE, version=1)
        decision = process.renew({8.5: 900.0})
        assert decision.version == 2
        assert set(decision.algorithms) == set(CORE)
        assert decision.reference_class == "L"
        assert any("recalibrated" in note for note in decision.notes)

    def test_obsolete_noted(self):
        process = RenewalProcess(CORE + ("pagerank2",))
        decision = process.renew({8.5: 100.0})
        assert "pagerank2" in decision.obsoleted_algorithms
        assert any("obsolete" in note for note in decision.notes)
