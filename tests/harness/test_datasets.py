"""Tests for the dataset catalog (Tables 3 and 4)."""

import pytest

from repro.exceptions import DatasetError
from repro.harness.datasets import (
    DATASETS,
    REAL_DATASETS,
    SYNTHETIC_DATASETS,
    dataset_ids,
    datasets_up_to_class,
    get_dataset,
)


class TestCatalog:
    def test_six_real_ten_synthetic(self):
        assert len(REAL_DATASETS) == 6
        assert len(SYNTHETIC_DATASETS) == 10
        assert len(DATASETS) == 16

    @pytest.mark.parametrize(
        "dataset_id,name,scale,tshirt",
        [
            ("R1", "wiki-talk", 6.9, "2XS"),
            ("R2", "kgs", 7.3, "XS"),
            ("R3", "cit-patents", 7.3, "XS"),
            ("R4", "dota-league", 7.7, "S"),
            ("R5", "com-friendster", 9.3, "XL"),
            ("R6", "twitter_mpi", 9.3, "XL"),
            ("D100", "datagen-100", 8.0, "M"),
            ("D300", "datagen-300", 8.5, "L"),
            ("D1000", "datagen-1000", 9.0, "XL"),
            ("G22", "graph500-22", 7.8, "S"),
            ("G23", "graph500-23", 8.1, "M"),
            ("G24", "graph500-24", 8.4, "M"),
            ("G25", "graph500-25", 8.7, "L"),
            ("G26", "graph500-26", 9.0, "XL"),
        ],
    )
    def test_paper_catalog_rows(self, dataset_id, name, scale, tshirt):
        ds = get_dataset(dataset_id)
        assert ds.name == name
        assert ds.profile.scale == scale
        assert ds.tshirt == tshirt

    def test_labels(self):
        assert get_dataset("R4").label == "R4(S)"
        assert get_dataset("D300").label == "D300(L)"

    def test_lookup_by_name(self):
        assert get_dataset("dota-league").dataset_id == "R4"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_dataset("R99")

    def test_directedness(self):
        for dataset_id in ("R1", "R3", "R6"):
            assert get_dataset(dataset_id).profile.directed
        for dataset_id in ("R2", "R4", "R5", "D300", "G22"):
            assert not get_dataset(dataset_id).profile.directed

    def test_weighted_datasets(self):
        # SSSP needs weights: dota-league and the Datagen graphs have them.
        assert get_dataset("R4").weighted
        assert get_dataset("D300").weighted
        assert not get_dataset("G22").weighted

    def test_kgs_bfs_coverage_is_ten_percent(self):
        # §4.1: "The BFS on this graph covers approximately 10% of the
        # vertices in the graph."
        assert get_dataset("R2").profile.bfs_coverage == pytest.approx(0.10)

    def test_graph500_more_skewed_than_datagen(self):
        assert (
            get_dataset("G26").profile.memory_skew
            > get_dataset("D1000").profile.memory_skew
        )

    def test_dataset_ids_order(self):
        ids = dataset_ids()
        assert ids[:6] == ["R1", "R2", "R3", "R4", "R5", "R6"]
        assert ids[-1] == "G26"


class TestUpToClass:
    def test_up_to_l_excludes_xl(self):
        ids = {ds.dataset_id for ds in datasets_up_to_class("L")}
        assert "D300" in ids and "G25" in ids
        assert "D1000" not in ids and "R5" not in ids

    def test_up_to_2xs(self):
        ids = {ds.dataset_id for ds in datasets_up_to_class("2XS")}
        assert ids == {"R1"}

    def test_up_to_2xl_is_everything(self):
        assert len(datasets_up_to_class("2XL")) == len(DATASETS)


class TestMaterialization:
    def test_miniature_matches_profile_shape(self):
        for dataset_id in ("R1", "R4", "D100", "G22"):
            ds = get_dataset(dataset_id)
            g = ds.materialize()
            assert g.directed == ds.profile.directed
            assert g.is_weighted == ds.profile.weighted

    def test_materialization_cached(self):
        ds = get_dataset("G22")
        assert ds.materialize() is ds.materialize()

    def test_different_seeds_differ(self):
        ds = get_dataset("D100")
        a, b = ds.materialize(0), ds.materialize(1)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_cc_variants_ordered(self):
        # D100' targets cc 0.05, D100'' targets cc 0.15: the measured
        # miniature clustering must be ordered accordingly.
        from repro.graph.stats import compute_statistics

        low = compute_statistics(get_dataset("D100'").materialize())
        high = compute_statistics(get_dataset("D100\"").materialize())
        assert low.mean_clustering_coefficient < high.mean_clustering_coefficient


class TestAlgorithmParameters:
    def test_bfs_source_present_in_miniature(self):
        for dataset_id in ("R1", "D300", "G23"):
            ds = get_dataset(dataset_id)
            params = ds.algorithm_parameters("bfs")
            assert ds.materialize().has_vertex(params["source_vertex"])

    def test_source_is_max_degree_vertex(self):
        import numpy as np

        ds = get_dataset("G22")
        g = ds.materialize()
        source = ds.algorithm_parameters("bfs")["source_vertex"]
        assert g.degrees()[g.index_of(source)] == g.degrees().max()

    def test_pr_iterations(self):
        assert get_dataset("D300").algorithm_parameters("pr") == {"iterations": 30}

    def test_cdlp_iterations(self):
        assert get_dataset("D300").algorithm_parameters("cdlp") == {
            "iterations": 10
        }

    def test_wcc_no_parameters(self):
        assert get_dataset("D300").algorithm_parameters("wcc") == {}
