"""Tests for the survey data and two-stage selection (Table 1)."""

import pytest

from repro.harness.survey import (
    CORE_ALGORITHM_SELECTION,
    SURVEY_UNWEIGHTED,
    SURVEY_WEIGHTED,
    survey_table,
    two_stage_selection,
)


class TestSurveyData:
    def test_unweighted_totals(self):
        # Table 1: percentages are relative to 141 algorithm occurrences.
        total = sum(c.count for c in SURVEY_UNWEIGHTED)
        assert total == 141

    def test_weighted_totals(self):
        assert sum(c.count for c in SURVEY_WEIGHTED) == 50

    @pytest.mark.parametrize(
        "name,count,pct",
        [
            ("Statistics", 24, 17.0),
            ("Traversal", 69, 48.9),
            ("Components", 20, 14.2),
            ("Graph Evolution", 6, 4.3),
            ("Other", 22, 15.6),
        ],
    )
    def test_unweighted_rows(self, name, count, pct):
        cls = next(c for c in SURVEY_UNWEIGHTED if c.name == name)
        assert cls.count == count
        total = sum(c.count for c in SURVEY_UNWEIGHTED)
        assert cls.percentage(total) == pytest.approx(pct, abs=0.15)

    @pytest.mark.parametrize(
        "name,count,pct",
        [
            ("Distances/Paths", 17, 34.0),
            ("Clustering", 7, 14.0),
            ("Partitioning", 5, 10.0),
            ("Routing", 5, 10.0),
            ("Other", 16, 32.0),
        ],
    )
    def test_weighted_rows(self, name, count, pct):
        cls = next(c for c in SURVEY_WEIGHTED if c.name == name)
        assert cls.count == count
        total = sum(c.count for c in SURVEY_WEIGHTED)
        assert cls.percentage(total) == pytest.approx(pct, abs=0.1)

    def test_survey_table_rows(self):
        rows = survey_table()
        assert len(rows) == 10
        assert {r["survey"] for r in rows} == {"Unweighted", "Weighted"}


class TestTwoStageSelection:
    def test_reproduces_six_core_algorithms(self):
        # The paper's two-stage process lands on exactly these six.
        assert two_stage_selection() == ["pr", "lcc", "bfs", "wcc", "cdlp", "sssp"]

    def test_selection_matches_registry(self):
        from repro.algorithms.registry import ALGORITHMS

        assert set(two_stage_selection()) == set(ALGORITHMS)

    def test_min_share_filters_small_classes(self):
        # Raising the representativeness bar above Traversal's 48.9%
        # leaves only BFS from the unweighted survey.
        selected = two_stage_selection(min_class_share=0.40)
        assert "bfs" in selected
        assert "pr" not in selected

    def test_other_class_never_selected(self):
        # "Other" is a catch-all, not a coherent class.
        selected = two_stage_selection(min_class_share=0.0)
        assert all(a in CORE_ALGORITHM_SELECTION for a in selected)

    def test_diversity_rationale_for_every_algorithm(self):
        assert set(CORE_ALGORITHM_SELECTION) == {
            "bfs", "pr", "wcc", "cdlp", "lcc", "sssp",
        }
