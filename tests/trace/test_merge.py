"""Tests for cross-process rebase and span-tree analysis (repro.trace.merge)."""

from repro.trace import (
    FakeClock,
    Span,
    Tracer,
    rebase_spans,
    render_tree,
    span_paths,
    span_tree,
    validate_tree,
)


def worker_spans():
    """A little worker trace: task > (load, kernel), on the worker clock."""
    tracer = Tracer(clock=FakeClock(start=100.0, tick=1.0), process="worker-0")
    with tracer.span("task"):
        with tracer.span("load"):
            pass
        with tracer.span("kernel"):
            pass
    return tracer.finished_spans()


class TestRebase:
    def test_offset_applied(self):
        spans = worker_spans()
        rebased = rebase_spans(spans, -100.0)
        by_name = {s.name: s for s in rebased}
        assert by_name["task"].start == 0.0
        assert by_name["load"].start == 1.0

    def test_originals_untouched(self):
        spans = worker_spans()
        starts = [s.start for s in spans]
        rebase_spans(spans, -50.0)
        assert [s.start for s in spans] == starts

    def test_roots_reparented(self):
        parent = Span(
            name="attempt", span_id="main:7", trace_id="main",
            start=0.0, end=50.0,
        )
        rebased = rebase_spans(worker_spans(), -100.0, parent=parent)
        by_name = {s.name: s for s in rebased}
        assert by_name["task"].parent_id == "main:7"
        # Non-root spans keep their in-batch parents.
        assert by_name["load"].parent_id == by_name["task"].span_id

    def test_clamped_into_parent_window(self):
        parent = Span(
            name="attempt", span_id="main:7", trace_id="main",
            start=2.0, end=4.0,
        )
        rebased = rebase_spans(worker_spans(), -100.0, parent=parent)
        for span in rebased:
            assert span.start >= 2.0
            assert span.end <= 4.0
            assert span.end >= span.start
        assert validate_tree([parent, *rebased]) == []


class TestTreeAnalysis:
    def test_span_tree_structure(self):
        roots = span_tree(worker_spans())
        assert [r.name for r in roots] == ["task"]
        assert [c.name for c in roots[0].children] == ["load", "kernel"]

    def test_span_paths(self):
        assert span_paths(worker_spans()) == [
            "task", "task/kernel", "task/load",
        ]

    def test_validate_clean_tree(self):
        assert validate_tree(worker_spans()) == []

    def test_validate_negative_duration(self):
        bad = Span(
            name="x", span_id="m:0", trace_id="m", start=5.0, end=4.0
        )
        violations = validate_tree([bad])
        assert len(violations) == 1
        assert "negative" in violations[0]

    def test_validate_child_outside_parent(self):
        parent = Span(
            name="p", span_id="m:0", trace_id="m", start=1.0, end=2.0
        )
        child = Span(
            name="c", span_id="m:1", trace_id="m", parent_id="m:0",
            start=0.5, end=3.0,
        )
        violations = validate_tree([parent, child])
        assert len(violations) == 2  # starts early AND ends late

    def test_render_tree(self):
        text = render_tree(worker_spans())
        lines = text.splitlines()
        assert lines[0].startswith("task")
        assert lines[1].startswith("  load")
        assert lines[2].startswith("  kernel")

    def test_render_respects_depth_and_duration(self):
        text = render_tree(worker_spans(), max_depth=1)
        assert "task" in text and "load" not in text
        # Short leaves are hidden; parents with children survive.
        text = render_tree(worker_spans(), min_duration=2.0)
        assert "task" in text and "kernel" not in text
