"""Tests for the injectable clocks (repro.trace.clock)."""

import pytest

from repro.trace import FakeClock, MonotonicClock


class TestMonotonicClock:
    def test_nondecreasing(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(100)]
        assert readings == sorted(readings)

    def test_sleep_advances(self):
        clock = MonotonicClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.009


class TestFakeClock:
    def test_starts_at_origin(self):
        assert FakeClock().now() == 0.0
        assert FakeClock(start=5.0).now() == 5.0

    def test_tick_advances_per_reading(self):
        clock = FakeClock(tick=0.5)
        assert [clock.now() for _ in range(4)] == [0.0, 0.5, 1.0, 1.5]

    def test_sleep_is_virtual(self):
        clock = FakeClock(start=1.0)
        clock.sleep(10.0)
        assert clock.now() == 11.0

    def test_advance(self):
        clock = FakeClock()
        clock.advance(2.5)
        assert clock.now() == 2.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_deterministic_replay(self):
        a = FakeClock(start=3.0, tick=0.25)
        b = FakeClock(start=3.0, tick=0.25)
        assert [a.now() for _ in range(10)] == [b.now() for _ in range(10)]
