"""Tests for spans, the tracer, and JSONL export (repro.trace.tracer)."""

import pytest

from repro.trace import (
    FakeClock,
    Span,
    Tracer,
    current_tracer,
    read_trace,
    set_tracer,
    use_tracer,
    write_trace,
)


def make_tracer(**kwargs):
    kwargs.setdefault("clock", FakeClock(tick=1.0))
    kwargs.setdefault("process", "test")
    return Tracer(**kwargs)


class TestSpanLifecycle:
    def test_context_manager_nesting(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_deterministic_ids(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        names = {s.span_id: s.name for s in tracer.finished_spans()}
        assert names == {"test:0": "a", "test:1": "b"}

    def test_attributes_recorded(self):
        tracer = make_tracer()
        with tracer.span("work", dataset="G22", index=3) as span:
            span.attributes["extra"] = True
        done = tracer.finished_spans()[0]
        assert done.attributes == {"dataset": "G22", "index": 3, "extra": True}

    def test_error_status_on_exception(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        done = tracer.finished_spans()[0]
        assert done.status == "error"
        assert done.end is not None

    def test_manual_start_end(self):
        tracer = make_tracer()
        span = tracer.start_span("interval", attributes={"k": 1})
        assert span.end is None
        assert span.duration == 0.0
        tracer.end_span(span, status="timeout")
        assert span.status == "timeout"
        assert span.duration == 1.0

    def test_push_makes_span_current(self):
        tracer = make_tracer()
        parent = tracer.start_span("parent", push=True)
        with tracer.span("child") as child:
            pass
        tracer.end_span(parent)
        assert child.parent_id == parent.span_id

    def test_finish_order_is_recorded(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished_spans()] == ["outer", "inner"][::-1]


class TestBoundedBuffer:
    def test_oldest_spans_dropped(self):
        tracer = make_tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.finished_spans()] == ["s2", "s3", "s4"]
        assert tracer.dropped_spans == 2

    def test_marks_survive_drops(self):
        tracer = make_tracer(max_spans=2)
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        for index in range(3):
            with tracer.span(f"after{index}"):
                pass
        names = [s.name for s in tracer.spans_since(mark)]
        assert names == ["after1", "after2"]  # after0 fell off the buffer

    def test_drain_empties_buffer(self):
        tracer = make_tracer()
        with tracer.span("a"):
            pass
        taken = tracer.drain()
        assert [s.name for s in taken] == ["a"]
        assert tracer.finished_spans() == []


class TestCounters:
    def test_accumulate(self):
        tracer = make_tracer()
        tracer.counter("cache.miss")
        tracer.counter("cache.miss")
        tracer.counter("bytes", 512.0)
        assert tracer.counters == {"cache.miss": 2.0, "bytes": 512.0}

    def test_merge(self):
        tracer = make_tracer()
        tracer.counter("a")
        tracer.merge_counters({"a": 2.0, "b": 1.0})
        assert tracer.counters == {"a": 3.0, "b": 1.0}

    def test_take_drains(self):
        tracer = make_tracer()
        tracer.counter("a")
        assert tracer.take_counters() == {"a": 1.0}
        assert tracer.counters == {}


class TestDisabledTracer:
    def test_records_nothing(self):
        tracer = make_tracer(enabled=False)
        with tracer.span("ghost") as span:
            tracer.counter("ghost.count")
        assert span.span_id == ""
        assert tracer.finished_spans() == []
        assert tracer.counters == {}

    def test_no_clock_reads(self):
        clock = FakeClock(tick=1.0)
        tracer = make_tracer(clock=clock, enabled=False)
        with tracer.span("ghost"):
            pass
        assert clock.now() == 0.0  # first real reading: clock untouched


class TestCurrentTracer:
    def test_always_exists(self):
        assert current_tracer() is not None

    def test_set_returns_previous(self):
        mine = make_tracer()
        previous = set_tracer(mine)
        try:
            assert current_tracer() is mine
        finally:
            set_tracer(previous)
        assert current_tracer() is previous

    def test_use_tracer_restores(self):
        before = current_tracer()
        with use_tracer(make_tracer()) as mine:
            assert current_tracer() is mine
        assert current_tracer() is before

    def test_use_tracer_restores_on_error(self):
        before = current_tracer()
        with pytest.raises(ValueError):
            with use_tracer(make_tracer()):
                raise ValueError("boom")
        assert current_tracer() is before


class TestSerialization:
    def test_as_dict_from_dict_roundtrip(self):
        span = Span(
            name="job", span_id="w:1", trace_id="w", parent_id="w:0",
            start=1.25, end=2.75, process="w", status="error",
            attributes={"dataset": "G22"},
        )
        assert Span.from_dict(span.as_dict()).as_dict() == span.as_dict()

    def test_jsonl_roundtrip_float_exact(self, tmp_path):
        tracer = make_tracer(clock=FakeClock(start=0.1, tick=1 / 3))
        with tracer.span("outer", ratio=2 / 7):
            with tracer.span("inner"):
                pass
        tracer.counter("c", 1 / 9)
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        spans, counters = read_trace(path)
        originals = tracer.finished_spans()
        assert [s.as_dict() for s in spans] == [s.as_dict() for s in originals]
        assert counters == {"c": 1 / 9}

    def test_write_trace_is_deterministic(self, tmp_path):
        def run(path):
            tracer = make_tracer()
            with use_tracer(tracer):
                with tracer.span("outer", a=1):
                    with tracer.span("inner"):
                        pass
                tracer.counter("n", 2.0)
            write_trace(path, tracer.finished_spans(), counters=tracer.counters)
            return path.read_text()

        first = run(tmp_path / "one.jsonl")
        second = run(tmp_path / "two.jsonl")
        assert first == second

    def test_open_span_exports_null_end(self, tmp_path):
        tracer = make_tracer()
        span = tracer.start_span("open")
        span.end = None
        tracer.record(span)
        write_trace(tmp_path / "t.jsonl", tracer.finished_spans())
        spans, _ = read_trace(tmp_path / "t.jsonl")
        assert spans[0].end is None
