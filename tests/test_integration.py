"""End-to-end integration tests across module boundaries."""

import numpy as np
import pytest

import repro
from repro.algorithms.validation import validate_output
from repro.granula.archiver import build_archive
from repro.granula.visualizer import render_text
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.platforms.cluster import ClusterResources


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert callable(repro.breadth_first_search)
        assert callable(repro.pagerank)
        assert len(repro.DATASETS) == 16
        assert len(repro.PLATFORMS) == 6
        assert len(repro.EXPERIMENTS) == 8

    def test_quickstart_flow(self):
        graph = repro.datagen.generate(200, seed=1)
        depths = repro.breadth_first_search(graph, 0)
        assert len(depths) == 200


class TestFullPipeline:
    def test_generate_write_read_benchmark(self, tmp_path):
        # Datagen -> EVL files -> reload -> driver -> validate -> Granula.
        graph = repro.datagen.generate(150, weighted=True, seed=2)
        repro.write_graph(graph, tmp_path / "net")
        reloaded = repro.read_graph(
            tmp_path / "net", directed=False, weighted=True
        )
        assert reloaded.num_edges == graph.num_edges

        driver = repro.create_driver("powergraph")
        handle = driver.upload(reloaded)
        job = driver.execute(handle, "sssp", {"source_vertex": 0})
        assert job.succeeded

        reference = repro.single_source_shortest_paths(reloaded, 0)
        validate_output("sssp", job.output, reference)

        archive = build_archive(job)
        assert "processing" in render_text(archive)

    def test_cross_platform_outputs_equivalent(self):
        # Every platform must produce validation-equivalent output for
        # the same workload (the core Graphalytics correctness notion).
        runner = BenchmarkRunner(BenchmarkConfig(seed=1))
        outputs = {}
        for platform in ("giraph", "powergraph", "graphmat", "openg"):
            result = runner.run_job(platform, "D100", "wcc")
            assert result.validated is True
        assert len(runner.database) == 4

    def test_database_persistence_roundtrip(self, tmp_path):
        config = BenchmarkConfig(
            platforms=["graphmat"], datasets=["R1"], algorithms=["bfs", "pr"]
        )
        runner = BenchmarkRunner(config)
        db = runner.run()
        path = db.save(tmp_path / "run.json")
        loaded = repro.ResultsDatabase.load(path)
        assert len(loaded) == len(db)

    def test_experiment_to_database(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        repro.EXPERIMENTS["algorithm-variety"].run(runner)
        failures = runner.database.query(status="failed-memory")
        assert failures  # GraphMat LCC on R4/D300 at least


class TestScalabilityStory:
    """The paper's scalability narrative end to end through the runner."""

    def test_vertical_speedup_through_runner(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        t1 = runner.run_job(
            "pgxd", "D300", "bfs", resources=ClusterResources(threads=1)
        ).modeled_processing_time
        t32 = runner.run_job(
            "pgxd", "D300", "bfs", resources=ClusterResources(threads=32)
        ).modeled_processing_time
        assert t1 / t32 > 10

    def test_modeled_and_measured_are_distinct(self):
        # The miniature wall-clock must not be conflated with the
        # full-scale model: GraphX's modeled D300 BFS takes ~100 s, but
        # the real miniature execution is milliseconds.
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        result = runner.run_job("graphx", "D300", "bfs")
        assert result.modeled_processing_time > 50
        assert result.measured_processing_seconds < 5


class TestDeterminism:
    def test_full_run_reproducible(self):
        config = BenchmarkConfig(
            platforms=["giraph"], datasets=["G22"], algorithms=["bfs", "wcc"]
        )
        a = BenchmarkRunner(config).run()
        b = BenchmarkRunner(config).run()
        times_a = [r.modeled_processing_time for r in a]
        times_b = [r.modeled_processing_time for r in b]
        assert times_a == times_b

    def test_seed_changes_jitter_not_structure(self):
        ta = (
            BenchmarkRunner(BenchmarkConfig(seed=1))
            .run_job("giraph", "G22", "bfs")
            .modeled_processing_time
        )
        tb = (
            BenchmarkRunner(BenchmarkConfig(seed=2))
            .run_job("giraph", "G22", "bfs")
            .modeled_processing_time
        )
        assert ta != tb
        assert ta == pytest.approx(tb, rel=0.5)
