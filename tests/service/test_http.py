"""The hand-rolled HTTP/1.1 + SSE layer, parsed and rendered in memory."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    EventStream,
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
)


def _run(coro):
    return asyncio.run(coro)


def _parse(data: bytes):
    """Run read_request over an in-memory stream fed with ``data``."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return _run(scenario())


class _CollectingWriter:
    """A StreamWriter stand-in capturing written bytes."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        pass

    @property
    def data(self):
        return b"".join(self.chunks)


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        raw = (
            b"POST /v1/runs?tenant=alice HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 13\r\n"
            b"\r\n"
            b'{"a": "b c"}\n'
        )
        request = _parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/runs"
        assert request.query == {"tenant": "alice"}
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"a": "b c"}

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_partial_head_raises(self):
        with pytest.raises(ProtocolError):
            _parse(b"GET /v1/status HT")

    def test_malformed_request_line_raises(self):
        with pytest.raises(ProtocolError):
            _parse(b"NONSENSE\r\n\r\n")

    def test_non_http_version_raises(self):
        with pytest.raises(ProtocolError):
            _parse(b"GET / SPDY/3\r\n\r\n")

    def test_malformed_header_raises(self):
        raw = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_header_names_are_case_insensitive(self):
        raw = b"GET / HTTP/1.1\r\nX-Tenant: bob\r\n\r\n"
        request = _parse(raw)
        assert request.headers["x-tenant"] == "bob"

    def test_body_over_cap_raises(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_truncated_body_raises(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_bad_content_length_raises(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        with pytest.raises(ProtocolError):
            _parse(raw)

    def test_json_on_empty_body_raises(self):
        request = Request(method="POST", path="/", query={}, headers={})
        with pytest.raises(ProtocolError):
            request.json()

    def test_json_on_invalid_body_raises(self):
        request = Request(
            method="POST", path="/", query={}, headers={}, body=b"{nope"
        )
        with pytest.raises(ProtocolError):
            request.json()


class TestResponseRender:
    def test_render_has_length_close_and_custom_headers(self):
        response = Response(
            status=429, body=b'{"error": "slow down"}',
            headers={"Retry-After": "2"},
        )
        raw = response.render()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Content-Length: 22" in head
        assert b"Connection: close" in head
        assert b"Retry-After: 2" in head
        assert body == b'{"error": "slow down"}'

    def test_json_response_round_trips(self):
        response = json_response({"state": "queued"}, status=202)
        assert response.status == 202
        assert json.loads(response.body) == {"state": "queued"}

    def test_error_response_shape(self):
        response = error_response(404, "no such run")
        assert response.status == 404
        assert json.loads(response.body) == {"error": "no such run"}


class TestEventStream:
    def test_sse_framing(self):
        async def scenario():
            writer = _CollectingWriter()
            stream = EventStream(writer)
            await stream.open()
            await stream.send("journal", {"type": "job-done", "seq": 1})
            await stream.ping()
            await stream.send("end", {"state": "done"})
            return writer.data, stream.events_sent

        data, sent = _run(scenario())
        head, _, frames = data.partition(b"\r\n\r\n")
        assert b"Content-Type: text/event-stream" in head
        assert b"Connection: close" in head
        lines = frames.decode("utf-8").split("\n\n")
        assert lines[0] == 'event: journal\ndata: {"seq":1,"type":"job-done"}'
        assert lines[1] == ": ping"
        assert lines[2] == 'event: end\ndata: {"state":"done"}'
        assert sent == 2  # pings are comments, not events
