"""In-process service tests: HTTP surface, fairness, restart recovery.

The server runs on a private event loop in a background thread; the
tests drive it through :class:`ServiceClient`, the same blocking client
the CLI uses. Runs execute for real (child process, journal, results)
against a deliberately tiny one-job matrix.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.service import BenchmarkService, ServiceClient, ServiceConfig, ServiceError
from repro.service.runs import OUTCOME_NAME, RunRegistry

#: One platform x one dataset x one algorithm: the fastest real run.
TINY_MATRIX = {
    "platforms": ["powergraph"],
    "datasets": ["R1"],
    "algorithms": ["bfs"],
    "repetitions": 1,
}

_DEADLINE = 60.0


@contextmanager
def running_service(tmp_path, **overrides):
    """Boot a service on a free port on a background event loop."""
    overrides.setdefault("spool", tmp_path / "spool")
    overrides.setdefault("port", 0)
    service = BenchmarkService(ServiceConfig(**overrides))
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        host, port = asyncio.run_coroutine_threadsafe(
            service.start(), loop
        ).result(timeout=_DEADLINE)
        yield service, ServiceClient(host, port, timeout=_DEADLINE)
    finally:
        asyncio.run_coroutine_threadsafe(
            service.stop(), loop
        ).result(timeout=_DEADLINE)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=_DEADLINE)
        loop.close()


def wait_terminal(client, run_id, deadline=_DEADLINE):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        payload = client.run(run_id)
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} did not settle within {deadline}s")


class TestHttpSurface:
    def test_unknown_path_is_404(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client._json("GET", "/v1/nope")
            assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client._json("DELETE", "/v1/runs")
            assert excinfo.value.status == 405

    def test_unknown_run_is_404(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client.run("r999999-ghost")
            assert excinfo.value.status == 404

    def test_invalid_matrix_is_400(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            for matrix in (
                {"platforms": ["not-a-platform"]},
                {"bogus_key": 1},
                {"platforms": "powergraph"},  # not a list
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client.submit("alice", matrix)
                assert excinfo.value.status == 400

    def test_bad_tenant_is_400(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client.submit("no spaces allowed", TINY_MATRIX)
            assert excinfo.value.status == 400

    def test_status_endpoint_reports_queue(self, tmp_path):
        with running_service(tmp_path, max_running=3) as (_service, client):
            status = client.status()
            assert status["max_running"] == 3
            assert status["queue"]["accepted"] == 0


class TestRunLifecycle:
    def test_submit_execute_fetch(self, tmp_path):
        with running_service(tmp_path) as (service, client):
            accepted = client.submit("alice", TINY_MATRIX)
            run_id = accepted["run_id"]
            assert accepted["state"] == "queued"
            assert run_id.endswith("-alice")
            final = wait_terminal(client, run_id)
            assert final["state"] == "done"
            assert final["jobs"] == 1
            assert final["failures"] == 0
            assert final["elapsed_seconds"] >= 0
            results = json.loads(client.fetch(run_id, "results"))
            assert len(results) == 1
            assert results[0]["status"] == "succeeded"
            archive = json.loads(client.fetch(run_id, "archive"))
            assert archive["phases"]
            trace = client.fetch(run_id, "trace")
            assert trace  # span export happened
            # The spool holds the durable request + outcome pair.
            run_dir = service.registry.run_dir(run_id)
            assert (run_dir / "request.json").exists()
            assert (run_dir / OUTCOME_NAME).exists()

    def test_artifact_for_queued_run_is_404(self, tmp_path):
        # max_running slots are busy forever (no dispatch without scan),
        # so keep it simple: ask for an artifact name that is not there.
        with running_service(tmp_path) as (_service, client):
            accepted = client.submit("alice", TINY_MATRIX)
            run_id = accepted["run_id"]
            try:
                client.fetch(run_id, "archive")
            except ServiceError as exc:
                assert exc.status == 404
            wait_terminal(client, run_id)

    def test_events_stream_to_completion(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            run_id = client.submit("alice", TINY_MATRIX)["run_id"]
            seen = {"run": 0, "journal": 0, "span": 0, "end": 0}
            journal_types = []
            for event, payload in client.events(run_id):
                seen[event] += 1
                if event == "journal":
                    journal_types.append(payload["type"])
            assert seen["run"] == 1
            assert seen["end"] == 1
            assert seen["span"] > 0
            assert journal_types[0] == "run-start"
            assert "run-complete" in journal_types
            # The one-job matrix expands to a 3-node DAG
            # (materialize, reference, benchmark).
            assert journal_types.count("job-done") == 3

    def test_list_filters_by_tenant(self, tmp_path):
        with running_service(tmp_path, max_running=2) as (_service, client):
            a = client.submit("alice", TINY_MATRIX)["run_id"]
            b = client.submit("bob", TINY_MATRIX)["run_id"]
            wait_terminal(client, a)
            wait_terminal(client, b)
            alice_runs = client.runs(tenant="alice")["runs"]
            assert [run["run_id"] for run in alice_runs] == [a]
            all_runs = client.runs()["runs"]
            assert {run["run_id"] for run in all_runs} == {a, b}


class TestQuotaAndFairness:
    def test_over_quota_submission_gets_429_with_retry_after(self, tmp_path):
        with running_service(
            tmp_path, per_tenant_depth=1, max_running=1
        ) as (service, client):
            first = client.submit("alice", TINY_MATRIX)["run_id"]
            # Flood: depth quota of 1 admits at most one queued run; the
            # run may dispatch quickly, so push until the queue is full.
            rejected = None
            accepted = [first]
            for _ in range(6):
                try:
                    accepted.append(client.submit("alice", TINY_MATRIX)["run_id"])
                except ServiceError as exc:
                    rejected = exc
                    break
            assert rejected is not None, "flood was never pushed back"
            assert rejected.status == 429
            assert rejected.retry_after == pytest.approx(
                service.config.retry_after
            )
            # The rejected run is terminal on disk: a restart must not
            # resurrect work the client was told to retry.
            rejected_dirs = [
                record for record in service.registry.records.values()
                if record.state == "failed" and "quota" in record.error
            ]
            assert rejected_dirs
            for record in rejected_dirs:
                outcome_path = (
                    service.registry.run_dir(record.run_id) / OUTCOME_NAME
                )
                assert outcome_path.exists()
            for run_id in accepted:
                wait_terminal(client, run_id)

    def test_flooding_tenant_does_not_starve_another(self, tmp_path):
        with running_service(
            tmp_path, per_tenant_depth=8, per_tenant_running=1, max_running=1
        ) as (_service, client):
            flood = [
                client.submit("flood", TINY_MATRIX)["run_id"] for _ in range(3)
            ]
            small = client.submit("small", TINY_MATRIX)["run_id"]
            for run_id in flood + [small]:
                wait_terminal(client, run_id)
            started = {
                run["run_id"]: run["started_at"]
                for run in client.runs()["runs"]
            }
            # The small tenant ran before the flood's backlog drained:
            # strictly earlier than the flood's last run.
            assert started[small] < started[flood[-1]]


class TestRestartRecovery:
    def test_boot_scan_reenqueues_and_completes_spooled_run(self, tmp_path):
        spool = tmp_path / "spool"
        # A submission that was spooled but never executed — the shape a
        # SIGKILLed server leaves behind (request.json, no outcome).
        registry = RunRegistry(spool)
        record = registry.create("alice", TINY_MATRIX, submitted_at=1.0)
        with running_service(tmp_path, spool=spool) as (_service, client):
            final = wait_terminal(client, record.run_id)
            assert final["state"] == "done"
            assert final["jobs"] == 1

    def test_boot_scan_skips_terminal_runs(self, tmp_path):
        spool = tmp_path / "spool"
        registry = RunRegistry(spool)
        record = registry.create("alice", TINY_MATRIX)
        (registry.run_dir(record.run_id) / OUTCOME_NAME).write_text(
            json.dumps({"ok": True, "jobs": 1, "failures": 0})
        )
        with running_service(tmp_path, spool=spool) as (service, client):
            payload = client.run(record.run_id)
            assert payload["state"] == "done"
            assert service.queue.pending() == 0


class TestExampleMatrixSubmission:
    def test_full_example_matrix_payload_is_accepted(self, tmp_path):
        # The CLI's `submit example` sends config_payload(example_matrix())
        # verbatim — every BenchmarkConfig field, including the
        # partitioned-engine knobs — and the validator must know them all.
        from repro.runtime.executor import example_matrix
        from repro.runtime.journal import config_payload

        payload = dict(config_payload(example_matrix()))
        payload.pop("resources", None)
        payload.update(TINY_MATRIX)
        with running_service(tmp_path) as (_service, client):
            accepted = client.submit("alice", payload)
            assert accepted["state"] == "queued"

    def test_explicit_partitions_survive_normalization(self, tmp_path):
        from repro.service.runs import normalize_matrix

        payload = dict(TINY_MATRIX)
        payload["partitions"] = 2
        payload["partition_strategy"] = "range"
        normalized = normalize_matrix(payload)
        assert normalized["partitions"] == 2
        assert normalized["partition_strategy"] == "range"
