"""Client-side resilience: bounded submit retries, SSE reconnection.

No sockets here — ``_json``/``events`` are stubbed and the clock is a
recorder, so the retry schedules (delays, budgets, Retry-After
handling) are asserted deterministically.
"""

from __future__ import annotations

import pytest

from repro.service.client import ServiceClient, ServiceError


class RecordingClock:
    def __init__(self):
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)


def make_client(**kwargs):
    kwargs.setdefault("clock", RecordingClock())
    kwargs.setdefault("retry_backoff", 0.25)
    return ServiceClient("127.0.0.1", 1, **kwargs)


def script_json(client, monkeypatch, outcomes):
    """Stub ``_json`` to raise/return each outcome in order."""
    remaining = list(outcomes)
    calls = []

    def fake_json(method, path, payload=None):
        calls.append((method, path))
        outcome = remaining.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    monkeypatch.setattr(client, "_json", fake_json)
    return calls


MATRIX = {"platforms": ["p"]}


class TestSubmitRetries:
    def test_no_retries_by_default(self, monkeypatch):
        client = make_client()
        script_json(client, monkeypatch, [ServiceError(429, "full",
                                                       retry_after=1.0)])
        with pytest.raises(ServiceError):
            client.submit("t", MATRIX)
        assert client._clock.sleeps == []

    def test_retry_after_hint_wins_then_backoff(self, monkeypatch):
        client = make_client()
        script_json(
            client,
            monkeypatch,
            [
                ServiceError(429, "full", retry_after=2.0),
                ServiceError(503, "breaker open"),  # no hint
                ConnectionResetError("reset"),
                {"run_id": "r1"},
            ],
        )
        assert client.submit("t", MATRIX, retries=3) == {"run_id": "r1"}
        # hint (2.0), then 0.25 * 2^1, then 0.25 * 2^2.
        assert client._clock.sleeps == [2.0, 0.5, 1.0]

    def test_hostile_retry_after_is_capped(self, monkeypatch):
        client = make_client()
        script_json(
            client,
            monkeypatch,
            [ServiceError(503, "open", retry_after=86400.0), {"run_id": "r"}],
        )
        client.submit("t", MATRIX, retries=1)
        assert client._clock.sleeps == [30.0]

    def test_budget_exhaustion_reraises(self, monkeypatch):
        client = make_client()
        script_json(
            client,
            monkeypatch,
            [ServiceError(503, "open"), ServiceError(503, "still open")],
        )
        with pytest.raises(ServiceError) as excinfo:
            client.submit("t", MATRIX, retries=1)
        assert excinfo.value.status == 503
        assert len(client._clock.sleeps) == 1

    def test_client_errors_never_retried(self, monkeypatch):
        client = make_client()
        calls = script_json(
            client, monkeypatch, [ServiceError(400, "bad matrix")]
        )
        with pytest.raises(ServiceError):
            client.submit("t", MATRIX, retries=5)
        assert len(calls) == 1  # retrying a malformed matrix is pointless

    def test_chaos_plan_rides_the_payload(self, monkeypatch):
        client = make_client()
        captured = {}

        def fake_json(method, path, payload=None):
            captured.update(payload)
            return {"run_id": "r"}

        monkeypatch.setattr(client, "_json", fake_json)
        chaos = {"seed": 7, "faults": []}
        client.submit("t", MATRIX, chaos=chaos)
        assert captured["chaos"] == chaos


def _stream(events_by_connect, offsets):
    """An ``events``-shaped stub: one scripted stream per connect."""
    scripts = list(events_by_connect)

    def fake_events(run_id, *, offset=0):
        offsets.append(offset)
        script = scripts.pop(0)
        for item in script:
            if isinstance(item, BaseException):
                raise item
            yield item

    return fake_events


RUN = ("run", {"run_id": "r", "state": "running"})
END = ("end", {"state": "done"})


def _journal(seq):
    return ("journal", {"type": "job-done", "seq": seq})


def _span(name):
    return ("span", {"name": name})


class TestWatchEvents:
    def test_single_clean_stream_passes_through(self, monkeypatch):
        client = make_client()
        offsets = []
        monkeypatch.setattr(
            client,
            "events",
            _stream([[RUN, _journal(0), _span("a"), END]], offsets),
        )
        events = list(client.watch_events("r"))
        assert events == [RUN, _journal(0), _span("a"), END]
        assert offsets == [0]

    def test_reconnect_resumes_at_offset_without_duplicates(self, monkeypatch):
        client = make_client()
        offsets = []
        monkeypatch.setattr(
            client,
            "events",
            _stream(
                [
                    # Stream 1 dies after two journal records + a span.
                    [RUN, _journal(0), _span("a"), _journal(1),
                     ConnectionResetError("gone")],
                    # Stream 2: the server honored offset=2; the span
                    # and run banner replay, the rest is new.
                    [RUN, _span("a"), _journal(2), _span("b"), END],
                ],
                offsets,
            ),
        )
        events = list(client.watch_events("r"))
        assert offsets == [0, 2]  # resumed from the last-seen offset
        assert events == [
            RUN, _journal(0), _span("a"), _journal(1),
            _journal(2), _span("b"), END,
        ]  # each event exactly once: no repeated banner, span, journal

    def test_reconnect_budget_resets_on_delivery(self, monkeypatch):
        # Four drops in a row, but two of the streams delivered events
        # first — each delivery resets the consecutive-drop count, so a
        # budget of 2 survives what would otherwise be 4 > 2 drops.
        client = make_client()
        offsets = []
        monkeypatch.setattr(
            client,
            "events",
            _stream(
                [
                    [RUN, ConnectionResetError("1")],   # delivered: drops=1
                    [ConnectionResetError("2")],        # dry: drops=2
                    [_journal(0), ConnectionResetError("3")],  # drops=1 again
                    [ConnectionResetError("4")],        # dry: drops=2
                    [_journal(1), END],
                ],
                offsets,
            ),
        )
        events = list(client.watch_events("r", reconnects=2))
        assert [e for e, _ in events] == ["run", "journal", "journal", "end"]

    def test_gives_up_after_consecutive_dry_drops(self, monkeypatch):
        client = make_client()
        offsets = []
        monkeypatch.setattr(
            client,
            "events",
            _stream(
                [[ConnectionResetError(str(i))] for i in range(4)], offsets
            ),
        )
        with pytest.raises(ServiceError) as excinfo:
            list(client.watch_events("r", reconnects=2))
        assert excinfo.value.status == 503
        assert "kept dropping" in str(excinfo.value)
        assert len(offsets) == 3  # initial connect + 2 reconnects

    def test_stream_closing_without_end_is_a_drop(self, monkeypatch):
        client = make_client()
        offsets = []
        monkeypatch.setattr(
            client,
            "events",
            _stream([[RUN, _journal(0)], [_journal(1), END]], offsets),
        )
        events = list(client.watch_events("r"))
        assert [e for e, _ in events] == ["run", "journal", "journal", "end"]
        assert offsets == [0, 1]
