"""End-to-end: a real ``graphalytics serve`` process, killed and revived.

The full acceptance scenario from the service design:

* two tenants submit the same matrix concurrently and stream events;
* the server process is SIGKILLed mid-run (children die via the
  parent-death watchdog, tearing the journals wherever they happened
  to be);
* a restarted server on the same spool resumes both runs from their
  journals and completes them;
* no journal carries a duplicate ``job-done`` per job key, and the two
  tenants' results databases are bit-identical in canonical form.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.results import ResultsDatabase
from repro.runtime.journal import RunJournal
from repro.service import ServiceClient

#: Large enough that a kill lands mid-run, small enough to stay fast.
MATRIX = {
    "platforms": ["powergraph", "graphmat"],
    "datasets": ["R1", "R2"],
    "algorithms": ["bfs", "pr", "sssp"],
    "repetitions": 2,
}

_DEADLINE = 120.0


def _spawn_server(spool: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--spool", str(spool), "--port", "0", "--max-running", "2",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(Path(__file__).resolve().parents[2]),
    )


def _read_address(proc: subprocess.Popen) -> ServiceClient:
    deadline = time.monotonic() + _DEADLINE
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("server exited before announcing its address")
        if "listening on http://" in line:
            address = line.rsplit("http://", 1)[1].strip()
            host, port = address.rsplit(":", 1)
            return ServiceClient(host, int(port), timeout=_DEADLINE)
    raise AssertionError("server never announced its address")


def _wait_for_job_done(run_dir: Path, deadline: float = _DEADLINE) -> None:
    """Block until the run's journal holds at least one job-done."""
    path = RunJournal.journal_path(run_dir)
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if path.exists():
            try:
                replay = RunJournal.load(run_dir)
            except Exception:
                replay = None
            if replay is not None and any(
                record["type"] == "job-done" for record in replay.records
            ):
                return
        time.sleep(0.05)
    raise AssertionError(f"no job-done appeared in {path}")


def _wait_terminal(client: ServiceClient, run_id: str) -> dict:
    limit = time.monotonic() + _DEADLINE
    while time.monotonic() < limit:
        payload = client.run(run_id)
        if payload["state"] in ("done", "failed"):
            return payload
        time.sleep(0.1)
    raise AssertionError(f"run {run_id} did not settle")


def _terminate(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    if proc.stdout is not None:
        proc.stdout.close()


@pytest.mark.slow
def test_two_tenants_sigkill_resume_bit_identical(tmp_path):
    spool = tmp_path / "spool"
    server = _spawn_server(spool)
    try:
        client = _read_address(server)
        run_a = client.submit("alice", MATRIX)["run_id"]
        run_b = client.submit("bob", MATRIX)["run_id"]

        # Both children must be genuinely mid-run before the kill: each
        # journal holds completed work, neither run has an outcome.
        _wait_for_job_done(spool / run_a)
        _wait_for_job_done(spool / run_b)
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)

        # The parent-death watchdog reaps the orphaned run children.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            held = [
                run_id for run_id in (run_a, run_b)
                if not (spool / run_id / "outcome.json").exists()
            ]
            if held:
                break  # at least one run is genuinely unfinished
            time.sleep(0.1)
        time.sleep(1.0)  # let watchdogs fire and journals settle
    finally:
        _terminate(server)

    # Restart on the same spool: the boot scan re-enqueues both runs.
    server = _spawn_server(spool)
    try:
        client = _read_address(server)
        final_a = _wait_terminal(client, run_a)
        final_b = _wait_terminal(client, run_b)
        assert final_a["state"] == "done", final_a
        assert final_b["state"] == "done", final_b

        # SSE on a finished run replays the journal to the end event.
        events = list(client.events(run_a))
        names = [event for event, _payload in events]
        assert names[0] == "run"
        assert names[-1] == "end"
        assert "journal" in names

        for run_id, final in ((run_a, final_a), (run_b, final_b)):
            replay = RunJournal.load(spool / run_id)
            done_keys = [
                record["key"] for record in replay.records
                if record["type"] == "job-done"
            ]
            # Resume restored finished jobs instead of re-recording
            # them: every job key completes exactly once.
            assert len(done_keys) == len(set(done_keys)), (
                f"duplicate job-done records in {run_id}"
            )
            assert final["jobs"] > 0

        # Both tenants ran the identical matrix expansion.
        assert final_a["jobs"] == final_b["jobs"]

        # The interrupted tenant(s) actually resumed prior journal work.
        restored = final_a.get("restored_jobs", 0) + final_b.get(
            "restored_jobs", 0
        )
        assert restored > 0, "neither run resumed from its journal"

        # Bit-identical canonical results across tenants.
        database_a = ResultsDatabase.load(spool / run_a / "results.json")
        database_b = ResultsDatabase.load(spool / run_b / "results.json")
        assert database_a.canonical_json() == database_b.canonical_json()
    finally:
        _terminate(server)


@pytest.mark.slow
def test_cli_submit_watch_fetch_round_trip(tmp_path):
    """The CLI client subcommands against a live server process."""
    spool = tmp_path / "spool"
    server = _spawn_server(spool)
    try:
        client = _read_address(server)
        host, port = client.host, str(client.port)
        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")

        matrix_path = tmp_path / "matrix.json"
        matrix_path.write_text(json.dumps(
            {
                "platforms": ["powergraph"],
                "datasets": ["R1"],
                "algorithms": ["bfs"],
                "repetitions": 1,
            }
        ))

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *args,
                 "--host", host, "--port", port],
                capture_output=True, text=True, env=env, cwd=str(repo_root),
                timeout=_DEADLINE,
            )

        submitted = cli("submit", str(matrix_path), "--tenant", "cli-test")
        assert submitted.returncode == 0, submitted.stdout + submitted.stderr
        run_id = next(
            token for token in submitted.stdout.split()
            if token.startswith("r") and "-cli-test" in token
        )

        watched = cli("watch", run_id)
        assert watched.returncode == 0, watched.stdout + watched.stderr
        assert "done" in watched.stdout

        out_path = tmp_path / "results.json"
        fetched = cli("fetch", run_id, "--artifact", "results",
                      "--output", str(out_path))
        assert fetched.returncode == 0, fetched.stdout + fetched.stderr
        rows = json.loads(out_path.read_text())
        assert rows and rows[0]["status"] == "succeeded"
    finally:
        _terminate(server)


# ---------------------------------------------------------------------------
# Chaos acceptance: seeded fault plans against real server processes.
# ---------------------------------------------------------------------------

#: Small enough to finish fast, big enough to write journal records.
CHAOS_MATRIX = {
    "platforms": ["powergraph"],
    "datasets": ["R1"],
    "algorithms": ["bfs", "pr"],
    "repetitions": 2,
}

#: SIGKILLs the run child after 3 journal appends — every attempt, since
#: fault counters are per process and each relaunch re-arms the plan.
KILL_PLAN = {
    "seed": 7,
    "faults": [{"point": "journal.append.write", "kind": "kill", "after": 3}],
}

#: Fails the journal's first group-commit fsync: the run completes with
#: a durability downgrade instead of dying.
FSYNC_PLAN = {
    "seed": 7,
    "faults": [{"point": "journal.append.fsync", "kind": "fsync-fail"}],
}

_SUPERVISION_FLAGS = (
    "--run-attempts", "3", "--run-backoff", "0.2",
    "--breaker-threshold", "10",  # keep the breaker out of this scenario
)


def _wait_ledger_attempts(run_dir: Path, minimum: int) -> None:
    """Block until the durable attempt ledger has counted ``minimum``."""
    path = run_dir / "supervise.json"
    limit = time.monotonic() + _DEADLINE
    while time.monotonic() < limit:
        try:
            ledger = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            ledger = {}
        if isinstance(ledger, dict) and ledger.get("attempts", 0) >= minimum:
            return
        time.sleep(0.05)
    raise AssertionError(f"ledger at {path} never reached {minimum} attempts")


def _wait_quarantined(client: ServiceClient, run_id: str) -> dict:
    limit = time.monotonic() + _DEADLINE
    while time.monotonic() < limit:
        payload = client.run(run_id)
        if payload["state"] in ("quarantined", "done", "failed"):
            return payload
        time.sleep(0.1)
    raise AssertionError(f"run {run_id} never settled: {payload['state']}")


@pytest.mark.slow
def test_chaos_quarantine_and_degradation_survive_restart(tmp_path):
    """The robustness acceptance scenario over real server processes.

    A poison run (chaos plan kills its child every attempt) burns its
    launch budget — counted in the durable ledger across a server
    SIGKILL + restart — and lands in quarantine, never relaunched
    again.  A run with an injected fsync failure *completes*, flagged,
    bit-identical in canonical form to an unfaulted run, with no
    duplicate ``job-done`` records; ``/v1/healthz`` and the CLI
    ``health`` subcommand report both degradations.
    """
    spool = tmp_path / "spool"
    server = _spawn_server(spool, *_SUPERVISION_FLAGS)
    try:
        client = _read_address(server)
        poison = client.submit("poison", CHAOS_MATRIX, chaos=KILL_PLAN)
        flaky = client.submit("fsync", CHAOS_MATRIX, chaos=FSYNC_PLAN)
        clean = client.submit("clean", CHAOS_MATRIX)
        poison_id = poison["run_id"]

        # The degraded and clean runs complete despite the chaos plan.
        final_flaky = _wait_terminal(client, flaky["run_id"])
        final_clean = _wait_terminal(client, clean["run_id"])
        assert final_flaky["state"] == "done", final_flaky
        assert final_flaky["degraded"] == ["journal-fsync-degraded"]
        assert final_clean["state"] == "done", final_clean
        assert "degraded" not in final_clean

        # The poison child killed itself at least twice (pre-launch
        # ledger writes make the count durable), then the server dies.
        _wait_ledger_attempts(spool / poison_id, 2)
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)
        time.sleep(1.0)  # parent-death watchdog reaps the orphan child
    finally:
        _terminate(server)

    server = _spawn_server(spool, *_SUPERVISION_FLAGS)
    try:
        client = _read_address(server)

        # The restarted supervisor reads the ledger: at most ONE more
        # launch (the third) before quarantine — never a fresh budget.
        payload = _wait_quarantined(client, poison_id)
        assert payload["state"] == "quarantined", payload
        assert payload["attempts"] == 3  # exactly the budget, not 2x it
        assert payload["quarantine"]["budget"] == 3
        ledger = json.loads(
            (spool / poison_id / "supervise.json").read_text(encoding="utf-8")
        )
        assert ledger["attempts"] == 3

        # Completed runs stayed terminal across the restart, and no
        # journal re-recorded finished work.
        for run_id in (flaky["run_id"], clean["run_id"]):
            assert client.run(run_id)["state"] == "done"
            replay = RunJournal.load(spool / run_id)
            done_keys = [
                record["key"] for record in replay.records
                if record["type"] == "job-done"
            ]
            assert len(done_keys) == len(set(done_keys)), (
                f"duplicate job-done records in {run_id}"
            )

        # Bit-identical canonical results: the fsync fault cost a
        # durability tier, not a bit of output.
        flaky_db = ResultsDatabase.load(
            spool / flaky["run_id"] / "results.json"
        )
        clean_db = ResultsDatabase.load(
            spool / clean["run_id"] / "results.json"
        )
        assert flaky_db.canonical_json() == clean_db.canonical_json()

        # healthz carries both degradations over real HTTP...
        health = client.healthz()
        assert health["status"] == "degraded"
        assert poison_id in health["quarantined"]
        assert health["degraded_runs"][flaky["run_id"]] == [
            "journal-fsync-degraded"
        ]

        # ...and the CLI health subcommand exits non-zero on it.
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        probe = subprocess.run(
            [sys.executable, "-m", "repro.cli", "health",
             "--host", client.host, "--port", str(client.port)],
            capture_output=True, text=True, env=env,
            cwd=str(Path(__file__).resolve().parents[2]),
            timeout=_DEADLINE,
        )
        assert probe.returncode == 1, probe.stdout + probe.stderr
        assert "degraded" in probe.stdout
    finally:
        _terminate(server)
