"""Fairness and quota semantics of the multi-tenant admission queue."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphalyticsError
from repro.service.queue import FairShareQueue, QuotaExceeded


def _drain(queue):
    """Acquire until empty, releasing each slot immediately."""
    order = []
    while True:
        item = queue.acquire()
        if item is None:
            break
        order.append(item)
        queue.release(item[0])
    return order


class TestAdmission:
    def test_submissions_within_quota_are_accepted(self):
        queue = FairShareQueue(per_tenant_depth=2)
        queue.submit("a", "r1")
        queue.submit("a", "r2")
        assert queue.pending("a") == 2
        assert queue.accepted == 2

    def test_over_depth_submission_raises_with_retry_after(self):
        queue = FairShareQueue(per_tenant_depth=1, retry_after=3.5)
        queue.submit("a", "r1")
        with pytest.raises(QuotaExceeded) as excinfo:
            queue.submit("a", "r2")
        assert excinfo.value.retry_after == 3.5
        assert queue.rejected == 1
        assert queue.pending("a") == 1  # rejected run was not buffered

    def test_quota_is_per_tenant_not_global(self):
        queue = FairShareQueue(per_tenant_depth=1)
        queue.submit("a", "r1")
        queue.submit("b", "r2")  # different tenant: own quota
        assert queue.pending() == 2

    def test_force_bypasses_depth_quota_for_boot_reenqueue(self):
        queue = FairShareQueue(per_tenant_depth=1)
        queue.submit("a", "r1")
        queue.submit("a", "r2", force=True)
        assert queue.pending("a") == 2

    def test_invalid_quotas_rejected(self):
        with pytest.raises(GraphalyticsError):
            FairShareQueue(per_tenant_depth=0)
        with pytest.raises(GraphalyticsError):
            FairShareQueue(per_tenant_running=0)


class TestFairness:
    def test_flooding_tenant_does_not_starve_another(self):
        queue = FairShareQueue(per_tenant_depth=16)
        for i in range(10):
            queue.submit("flood", f"f{i}")
        queue.submit("small", "s0")
        served = _drain(queue)
        # The small tenant is reached within one slot turnover, not
        # after the flood's whole backlog.
        position = [tenant for tenant, _ in served].index("small")
        assert position <= 1

    def test_round_robin_interleaves_tenants(self):
        queue = FairShareQueue(per_tenant_depth=8)
        for i in range(3):
            queue.submit("a", f"a{i}")
            queue.submit("b", f"b{i}")
        tenants = [tenant for tenant, _ in _drain(queue)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_per_tenant_running_cap_holds_back_second_run(self):
        queue = FairShareQueue(per_tenant_running=1)
        queue.submit("a", "r1")
        queue.submit("a", "r2")
        assert queue.acquire() == ("a", "r1")
        # a is at its running cap; r2 must wait even with a free slot.
        assert queue.acquire() is None
        queue.release("a")
        assert queue.acquire() == ("a", "r2")

    def test_capped_tenant_does_not_block_others(self):
        queue = FairShareQueue(per_tenant_running=1)
        queue.submit("a", "a1")
        queue.submit("a", "a2")
        queue.submit("b", "b1")
        assert queue.acquire() == ("a", "a1")
        assert queue.acquire() == ("b", "b1")  # skips capped a
        assert queue.acquire() is None

    def test_acquire_on_empty_queue(self):
        queue = FairShareQueue()
        assert queue.acquire() is None
        queue.submit("a", "r1")
        assert queue.acquire() == ("a", "r1")
        assert queue.acquire() is None  # drained


class TestStats:
    def test_stats_reflect_admission_and_dispatch(self):
        queue = FairShareQueue(per_tenant_depth=1, per_tenant_running=2)
        queue.submit("a", "r1")
        queue.submit("b", "r2")
        with pytest.raises(QuotaExceeded):
            queue.submit("a", "r3")
        queue.acquire()
        stats = queue.stats()
        assert stats["tenants"] == 2
        assert stats["pending"] == 1
        assert stats["running"] == 1
        assert stats["accepted"] == 2
        assert stats["rejected"] == 1
        assert stats["per_tenant_depth"] == 1
        assert stats["per_tenant_running"] == 2

    def test_release_never_goes_negative(self):
        queue = FairShareQueue()
        queue.release("ghost")
        assert queue.running("ghost") == 0
