"""Seeded chaos matrix over the service: supervision invariants.

Every scenario arms a deterministic I/O fault plan (seeded, named
fault points — :mod:`repro.faults.points`) through the submission API
and asserts the robustness contract end to end, in process:

* a poison run (child SIGKILLed by its own chaos plan every attempt)
  is quarantined after exactly its attempt budget — never relaunched
  again, durable across the spool;
* a run whose journal fsync fails *completes*, bit-identical to an
  unfaulted run, carrying a durability-downgrade flag into its
  outcome, its status payload, and ``/v1/healthz``;
* consecutive child deaths open the tenant's circuit breaker (503 +
  Retry-After) without shedding other tenants;
* a corrupted ``request.json`` is skipped (with a warning) by the boot
  scan instead of taking the service down.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.service import ServiceError
from repro.service.runs import (
    QUARANTINED,
    REQUEST_NAME,
    RunRegistry,
)
from repro.service.supervise import (
    QUARANTINE_NAME,
    SUPERVISE_NAME,
    load_supervision,
)

from tests.service.test_server import TINY_MATRIX, running_service

_DEADLINE = 60.0

#: Kills the run child after 3 successful journal appends — on every
#: attempt (fault counters are per process, and a relaunched child
#: re-arms the plan from the spooled request).
KILL_PLAN = {
    "seed": 7,
    "faults": [
        {"point": "journal.append.write", "kind": "kill", "after": 3}
    ],
}

#: Fails the journal's first group-commit fsync: the run must finish,
#: just without the power-loss durability tier.
FSYNC_PLAN = {
    "seed": 7,
    "faults": [
        {"point": "journal.append.fsync", "kind": "fsync-fail"}
    ],
}


def wait_state(client, run_id, states, deadline=_DEADLINE):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        payload = client.run(run_id)
        if payload["state"] in states:
            return payload
        time.sleep(0.05)
    raise AssertionError(
        f"run {run_id} did not reach {states} within {deadline}s "
        f"(last: {payload['state']})"
    )


class TestChaosSubmission:
    def test_unknown_fault_point_is_a_400(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client.submit(
                    "acme",
                    TINY_MATRIX,
                    chaos={
                        "seed": 1,
                        "faults": [{"point": "nope.nope", "kind": "eio"}],
                    },
                )
            assert excinfo.value.status == 400
            assert "invalid chaos plan" in str(excinfo.value)

    def test_non_object_chaos_is_a_400(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            with pytest.raises(ServiceError) as excinfo:
                client.submit("acme", TINY_MATRIX, chaos="break everything")
            assert excinfo.value.status == 400

    def test_chaos_plan_is_spooled_with_the_request(self, tmp_path):
        with running_service(tmp_path) as (service, client):
            accepted = client.submit("acme", TINY_MATRIX, chaos=FSYNC_PLAN)
            request = json.loads(
                (service.registry.run_dir(accepted["run_id"]) / REQUEST_NAME)
                .read_text(encoding="utf-8")
            )
            assert request["chaos"]["seed"] == 7
            assert request["chaos"]["faults"][0]["kind"] == "fsync-fail"


class TestPoisonRunQuarantine:
    def test_quarantined_after_exactly_the_attempt_budget(self, tmp_path):
        with running_service(
            tmp_path,
            run_attempts=2,
            run_backoff_base=0.05,
            breaker_threshold=10,  # keep the breaker out of this test
        ) as (service, client):
            accepted = client.submit("acme", TINY_MATRIX, chaos=KILL_PLAN)
            run_id = accepted["run_id"]
            payload = wait_state(client, run_id, (QUARANTINED, "done", "failed"))

            assert payload["state"] == QUARANTINED
            assert payload["attempts"] == 2  # exactly the budget, no more
            quarantine = payload["quarantine"]
            assert quarantine["attempts"] == 2
            assert quarantine["budget"] == 2
            assert "no outcome" in quarantine["reason"]

            run_dir = service.registry.run_dir(run_id)
            # Durable markers: the ledger counted both launches, the
            # quarantine record survives restarts.
            assert load_supervision(run_dir)["attempts"] == 2
            assert (run_dir / QUARANTINE_NAME).exists()
            assert not (run_dir / "outcome.json").exists()

            # The quarantine artifact is fetchable for post-mortem.
            fetched = json.loads(client.fetch(run_id, "quarantine"))
            assert fetched["run_id"] == run_id

            # healthz surfaces it and flips the status word.
            health = client.healthz()
            assert health["status"] == "degraded"
            assert run_id in health["quarantined"]

    def test_boot_scan_quarantines_exhausted_runs(self, tmp_path):
        # A spool left behind by a dead server: the run burned its
        # whole budget (ledger) but never produced an outcome. Boot
        # must quarantine it, not relaunch it a fourth time.
        spool = tmp_path / "spool"
        registry = RunRegistry(spool)
        record = registry.create(
            "acme", TINY_MATRIX, workers=1, job_timeout=None,
            submitted_at=0.0,
        )
        run_dir = registry.run_dir(record.run_id)
        (run_dir / SUPERVISE_NAME).write_text(
            json.dumps({"attempts": 3, "history": []}), encoding="utf-8"
        )
        with running_service(tmp_path, run_attempts=3) as (service, client):
            payload = client.run(record.run_id)
            assert payload["state"] == QUARANTINED
            assert "quarantined at boot" in payload["quarantine"]["reason"]
            assert (run_dir / QUARANTINE_NAME).exists()
            assert len(service._children) == 0

    def test_quarantined_run_stays_terminal_across_restarts(self, tmp_path):
        spool = tmp_path / "spool"
        registry = RunRegistry(spool)
        record = registry.create(
            "acme", TINY_MATRIX, workers=1, job_timeout=None,
            submitted_at=0.0,
        )
        run_dir = registry.run_dir(record.run_id)
        (run_dir / SUPERVISE_NAME).write_text(
            json.dumps({"attempts": 5, "history": []}), encoding="utf-8"
        )
        (run_dir / QUARANTINE_NAME).write_text(
            json.dumps({"run_id": record.run_id, "reason": "poison"}),
            encoding="utf-8",
        )
        with running_service(tmp_path) as (_service, client):
            payload = client.run(record.run_id)
            assert payload["state"] == QUARANTINED
            assert payload["quarantine"]["reason"] == "poison"
        # The ledger did not grow: the run was never relaunched.
        assert load_supervision(run_dir)["attempts"] == 5


class TestGracefulDegradation:
    def test_fsync_chaos_completes_bit_identical_with_flag(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            clean = client.submit("clean", TINY_MATRIX)
            chaotic = client.submit("chaos", TINY_MATRIX, chaos=FSYNC_PLAN)

            clean_done = wait_state(client, clean["run_id"], ("done", "failed"))
            chaos_done = wait_state(client, chaotic["run_id"], ("done", "failed"))

            # The degraded run FINISHED — durability downgraded, run
            # preserved — and says so in its status payload.
            assert clean_done["state"] == "done"
            assert chaos_done["state"] == "done"
            assert "degraded" not in clean_done
            assert chaos_done["degraded"] == ["journal-fsync-degraded"]

            # Bit-identical results despite the injected fsync failure
            # — under the runtime's determinism comparator: modeled
            # metrics are seed-determined, the ``measured_*`` wall
            # clocks are whatever this machine did today (nulled, as in
            # ResultsDatabase.canonical_json).
            def canonical(raw):
                rows = json.loads(raw)
                for row in rows:
                    for key in row:
                        if key.startswith("measured_"):
                            row[key] = None
                return json.dumps(rows, indent=1, sort_keys=True)

            clean_results = client.fetch(clean["run_id"], "results")
            chaos_results = client.fetch(chaotic["run_id"], "results")
            assert canonical(clean_results) == canonical(chaos_results)

            # healthz carries the durability downgrade.
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degraded_runs"] == {
                chaotic["run_id"]: ["journal-fsync-degraded"]
            }
            assert health["quarantined"] == []

    def test_healthz_is_ok_when_nothing_is_degraded(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["breakers"] == []
            assert health["quarantined"] == []
            assert health["degraded_runs"] == {}
            assert health["disk"]["free_bytes"] > 0
            assert health["disk"]["total_bytes"] >= health["disk"]["free_bytes"]


class TestTenantBreaker:
    def test_dying_tenant_is_shed_with_503_retry_after(self, tmp_path):
        with running_service(
            tmp_path,
            run_attempts=2,
            run_backoff_base=0.05,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        ) as (_service, client):
            accepted = client.submit("acme", TINY_MATRIX, chaos=KILL_PLAN)
            wait_state(client, accepted["run_id"], (QUARANTINED,))

            # Two consecutive deaths opened acme's circuit.
            with pytest.raises(ServiceError) as excinfo:
                client.submit("acme", TINY_MATRIX)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0

            # Other tenants are untouched: circuits are per tenant.
            other = client.submit("zen", TINY_MATRIX)
            wait_state(client, other["run_id"], ("done",))

            health = client.healthz()
            circuits = {c["tenant"]: c for c in health["breakers"]}
            assert circuits["acme"]["open"] is True


class TestBootScanCorruption:
    def test_corrupt_request_is_skipped_with_a_warning(self, tmp_path):
        spool = tmp_path / "spool"
        good = RunRegistry(spool).create(
            "acme", TINY_MATRIX, workers=1, job_timeout=None,
            submitted_at=0.0,
        )
        torn = spool / "run-torn"
        torn.mkdir()
        (torn / REQUEST_NAME).write_bytes(b'{"tenant": "acme", "ru')
        wrong_shape = spool / "run-list"
        wrong_shape.mkdir()
        (wrong_shape / REQUEST_NAME).write_text("[1, 2, 3]", encoding="utf-8")

        registry = RunRegistry(spool)
        with pytest.warns(RuntimeWarning) as caught:
            resumable = registry.scan()
        messages = [str(w.message) for w in caught]
        assert any("run-torn" in m for m in messages)
        assert any("run-list" in m for m in messages)
        assert [r.run_id for r in resumable] == [good.run_id]
        assert set(registry.records) == {good.run_id}

    def test_service_boots_over_a_corrupt_spool(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        broken = spool / "run-broken"
        broken.mkdir()
        (broken / REQUEST_NAME).write_bytes(b"\x00\x01 not json")
        with pytest.warns(RuntimeWarning):
            with running_service(tmp_path) as (_service, client):
                # The damaged directory is invisible; service works.
                accepted = client.submit("acme", TINY_MATRIX)
                payload = wait_state(client, accepted["run_id"], ("done",))
                assert payload["state"] == "done"
