"""Torn-tail-safe journal tailing: the SSE stream's correctness core.

The tailer must deliver every CRC-valid journal record exactly once —
across torn tails (a writer SIGKILLed mid-append), the atomic recovery
rewrite (new inode, possibly shorter file), and a resumed writer
appending to the rewritten file. These tests drive each scenario
byte-for-byte.
"""

from __future__ import annotations

import os

from repro.runtime.journal import RunJournal, _encode_line
from repro.service.tail import JournalTailer, decode_journal_line


def _write(path, records, *, tail=b""):
    with open(path, "wb") as handle:
        for record in records:
            handle.write(_encode_line(record))
        handle.write(tail)


def _append(path, records, *, tail=b""):
    with open(path, "ab") as handle:
        for record in records:
            handle.write(_encode_line(record))
        handle.write(tail)


def _rewrite(path, records, *, tail=b""):
    """An atomic-replace rewrite: new inode, like torn-tail recovery."""
    temp = path.with_suffix(".tmp")
    _write(temp, records, tail=tail)
    os.replace(temp, path)


def _records(n, start=0):
    return [{"type": "job-done", "seq": i, "key": f"k{i}"}
            for i in range(start, start + n)]


class TestBasicTailing:
    def test_missing_file_yields_nothing(self, tmp_path):
        tailer = JournalTailer(tmp_path / "journal.jsonl")
        assert tailer.poll() == []
        assert tailer.emitted == 0

    def test_records_emitted_in_order_exactly_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = _records(5)
        _write(path, records)
        tailer = JournalTailer(path)
        assert tailer.poll() == records
        assert tailer.poll() == []  # nothing new: nothing re-emitted
        assert tailer.emitted == 5

    def test_incremental_appends_surface_incrementally(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write(path, _records(2))
        tailer = JournalTailer(path)
        assert [r["seq"] for r in tailer.poll()] == [0, 1]
        _append(path, _records(3, start=2))
        assert [r["seq"] for r in tailer.poll()] == [2, 3, 4]
        assert tailer.poll() == []


class TestTornTail:
    def test_torn_tail_is_withheld_not_emitted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        complete = _records(3)
        torn = _encode_line({"type": "job-done", "seq": 3, "key": "k3"})[:-7]
        _write(path, complete, tail=torn)
        tailer = JournalTailer(path)
        assert tailer.poll() == complete  # the torn line never surfaces
        assert tailer.poll() == []

    def test_completed_tail_emitted_once_after_writer_finishes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {"type": "job-done", "seq": 3, "key": "k3"}
        encoded = _encode_line(record)
        _write(path, _records(3), tail=encoded[: len(encoded) // 2])
        tailer = JournalTailer(path)
        assert len(tailer.poll()) == 3
        # The writer completes the half-written line in place.
        with open(path, "ab") as handle:
            handle.write(encoded[len(encoded) // 2:])
        assert tailer.poll() == [record]
        assert tailer.poll() == []
        assert tailer.emitted == 4

    def test_corrupt_crc_line_blocks_without_duplicates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = _records(2)
        bad = _encode_line({"type": "x"}).replace(b"x", b"y")  # CRC broken
        _write(path, good, tail=bad)
        tailer = JournalTailer(path)
        assert tailer.poll() == good
        # Polling again neither advances past nor re-emits anything.
        assert tailer.poll() == []
        assert decode_journal_line(bad) is None


class TestRecoveryRewrite:
    def test_atomic_rewrite_with_truncated_tail_no_dup_no_drop(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = _records(4)
        torn = b"garbage-without-newline"
        _write(path, good, tail=torn)
        tailer = JournalTailer(path)
        assert tailer.poll() == good
        # Recovery: atomic rewrite drops the torn tail (new inode,
        # shorter file), then the resumed writer appends new records.
        _rewrite(path, good)
        _append(path, _records(2, start=4))
        out = tailer.poll()
        assert [r["seq"] for r in out] == [4, 5]  # no re-emission of 0..3
        assert tailer.emitted == 6

    def test_rewrite_detected_by_inode_even_at_same_size(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = _records(3)
        _write(path, good)
        tailer = JournalTailer(path)
        assert len(tailer.poll()) == 3
        _rewrite(path, good)  # same bytes, new inode
        _append(path, _records(1, start=3))
        assert [r["seq"] for r in tailer.poll()] == [3]
        assert tailer.emitted == 4

    def test_tailer_attaching_mid_recovery_sees_everything_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write(path, _records(2), tail=b"\x00\x01torn")
        tailer = JournalTailer(path)
        assert len(tailer.poll()) == 2
        _rewrite(path, _records(2))
        assert tailer.poll() == []  # rewrite alone adds nothing new
        _append(path, _records(3, start=2))
        assert [r["seq"] for r in tailer.poll()] == [2, 3, 4]


class TestAgainstRealJournal:
    """The tailer against files the real RunJournal writes."""

    def test_tail_a_live_run_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        journal = RunJournal.create(run_dir, {"kind": "matrix", "matrix_hash": "t"})
        tailer = JournalTailer(RunJournal.journal_path(run_dir))
        first = tailer.poll()
        assert [r["type"] for r in first] == ["run-start"]
        journal.append({"type": "job-done", "key": "a", "seq": 0})
        journal.append({"type": "job-done", "key": "b", "seq": 1})
        assert [r["key"] for r in tailer.poll()] == ["a", "b"]
        journal.append({"type": "run-complete"})
        journal.close()
        assert [r["type"] for r in tailer.poll()] == ["run-complete"]
        assert tailer.poll() == []

    def test_sigkill_style_torn_journal_then_resume_recovery(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        journal = RunJournal.create(run_dir, {"kind": "matrix", "matrix_hash": "t"})
        journal.append({"type": "job-done", "key": "a", "seq": 0})
        journal.close()
        path = RunJournal.journal_path(run_dir)
        # SIGKILL mid-append: a half-written line at the tail.
        with open(path, "ab") as handle:
            handle.write(_encode_line({"type": "job-done", "key": "b"})[:-9])
        tailer = JournalTailer(path)
        kinds = [r.get("key", r["type"]) for r in tailer.poll()]
        assert kinds == ["run-start", "a"]
        # Recovery (RunJournal.load) rewrites the file without the tear;
        # the resumed journal then appends the remainder.
        replay = RunJournal.load(run_dir)
        assert replay.truncated_bytes > 0
        resumed = RunJournal.open(run_dir)
        resumed.append({"type": "job-done", "key": "b", "seq": 1})
        resumed.append({"type": "run-complete"})
        resumed.close()
        tail = [r.get("key", r["type"]) for r in tailer.poll()]
        assert tail == ["b", "run-complete"]  # exactly once, nothing lost


class TestSkipOffset:
    """The reconnect handle: skip N already-delivered records."""

    def test_skip_swallows_the_prefix(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write(path, _records(5))
        tailer = JournalTailer(path, skip=2)
        assert [r["seq"] for r in tailer.poll()] == [2, 3, 4]
        assert tailer.emitted == 3

    def test_skip_spans_polls(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write(path, _records(3))
        tailer = JournalTailer(path, skip=5)
        assert tailer.poll() == []  # still two records short of the skip
        _append(path, _records(4, start=3))
        assert [r["seq"] for r in tailer.poll()] == [5, 6]

    def test_rewrite_replay_counts_skipped_records_too(self, tmp_path):
        # The recovery rewrite preserves the good prefix — including
        # the records this tailer skipped rather than emitted. The
        # replay swallow must cover both, or the reconnecting client
        # would see its skipped records resurrected as duplicates.
        path = tmp_path / "journal.jsonl"
        _write(path, _records(3))
        tailer = JournalTailer(path, skip=2)
        assert [r["seq"] for r in tailer.poll()] == [2]
        _rewrite(path, _records(5))  # recovery rewrite + two new records
        assert [r["seq"] for r in tailer.poll()] == [3, 4]
        assert tailer.emitted == 3

    def test_zero_skip_is_the_default_stream(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write(path, _records(2))
        assert [r["seq"] for r in JournalTailer(path, skip=0).poll()] == [0, 1]
