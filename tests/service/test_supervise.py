"""Unit tests for run supervision: ledger, quarantine, policy, breaker."""

from __future__ import annotations

import json

import pytest

from repro.service.supervise import (
    QUARANTINE_NAME,
    SUPERVISE_NAME,
    BreakerOpen,
    RetryPolicy,
    TenantBreaker,
    load_quarantine,
    load_supervision,
    record_attempt,
    write_quarantine,
)


class TestAttemptLedger:
    def test_round_trip_accumulates_history(self, tmp_path):
        record_attempt(tmp_path, 1, at=10.0)
        ledger = record_attempt(tmp_path, 2, at=20.0)
        assert ledger["attempts"] == 2
        assert [h["attempt"] for h in ledger["history"]] == [1, 2]
        assert load_supervision(tmp_path) == ledger

    def test_absent_ledger_is_zero_attempts(self, tmp_path):
        assert load_supervision(tmp_path) == {"attempts": 0, "history": []}

    @pytest.mark.parametrize(
        "payload",
        [b"{torn", b"[1, 2]", b'{"attempts": "many"}'],
        ids=["torn-json", "non-dict", "non-int-attempts"],
    )
    def test_corrupt_ledger_tolerated(self, tmp_path, payload):
        (tmp_path / SUPERVISE_NAME).write_bytes(payload)
        assert load_supervision(tmp_path)["attempts"] == 0

    def test_corrupt_ledger_restarts_counting(self, tmp_path):
        (tmp_path / SUPERVISE_NAME).write_bytes(b"{torn")
        ledger = record_attempt(tmp_path, 1, at=1.0)
        assert ledger == {
            "attempts": 1,
            "history": [{"attempt": 1, "at": 1.0}],
        }


class TestQuarantineRecord:
    def test_round_trip(self, tmp_path):
        payload = {"run_id": "r1", "reason": "budget exhausted"}
        write_quarantine(tmp_path, payload)
        assert load_quarantine(tmp_path) == payload
        on_disk = json.loads(
            (tmp_path / QUARANTINE_NAME).read_text(encoding="utf-8")
        )
        assert on_disk == payload

    def test_absent_and_corrupt_are_none(self, tmp_path):
        assert load_quarantine(tmp_path) is None
        (tmp_path / QUARANTINE_NAME).write_bytes(b"{torn")
        assert load_quarantine(tmp_path) is None
        (tmp_path / QUARANTINE_NAME).write_bytes(b"[]")
        assert load_quarantine(tmp_path) is None


class TestRetryPolicy:
    def test_budget_boundary(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_backoff_is_the_scheduler_curve(self):
        policy = RetryPolicy(backoff_base=0.5)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == [
            0.5, 1.0, 2.0, 4.0,
        ]

    def test_backoff_clamps_attempt_floor(self):
        assert RetryPolicy(backoff_base=0.5).backoff(0) == 0.5


class TestTenantBreaker:
    def test_opens_after_threshold_consecutive_deaths(self):
        breaker = TenantBreaker(threshold=3, cooldown=30.0)
        breaker.record_death("acme", now=1.0)
        breaker.record_death("acme", now=2.0)
        assert breaker.open_for("acme", now=3.0) == 0.0
        breaker.record_death("acme", now=3.0)
        assert breaker.open_for("acme", now=4.0) == pytest.approx(29.0)

    def test_check_raises_with_retry_after(self):
        breaker = TenantBreaker(threshold=1, cooldown=10.0)
        breaker.record_death("acme", now=0.0)
        with pytest.raises(BreakerOpen) as excinfo:
            breaker.check("acme", now=4.0)
        assert excinfo.value.retry_after == pytest.approx(6.0)
        breaker.check("other", now=4.0)  # circuits are per tenant

    def test_success_closes_and_resets_strikes(self):
        breaker = TenantBreaker(threshold=2, cooldown=30.0)
        breaker.record_death("acme", now=0.0)
        breaker.record_success("acme")
        breaker.record_death("acme", now=1.0)
        # Not consecutive across the success: still below threshold.
        assert breaker.open_for("acme", now=2.0) == 0.0

    def test_cooldown_elapse_closes_and_forgets(self):
        breaker = TenantBreaker(threshold=1, cooldown=5.0)
        breaker.record_death("acme", now=0.0)
        assert breaker.open_for("acme", now=1.0) > 0
        assert breaker.open_for("acme", now=6.0) == 0.0
        # The elapsed cooldown forgot the strikes entirely.
        assert breaker.state(now=7.0) == []

    def test_state_for_healthz(self):
        breaker = TenantBreaker(threshold=2, cooldown=30.0)
        breaker.record_death("acme", now=0.0)
        breaker.record_death("acme", now=1.0)
        breaker.record_death("zeta", now=1.0)
        assert breaker.state(now=2.0) == [
            {"tenant": "acme", "strikes": 2, "open": True},
            {"tenant": "zeta", "strikes": 1, "open": False},
        ]
