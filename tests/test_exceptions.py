"""Tests for the exception hierarchy (one catchable base class)."""

import inspect

import pytest

import repro.exceptions as exceptions
from repro.exceptions import (
    ConfigurationError,
    DatasetError,
    GenerationError,
    GraphalyticsError,
    GraphFormatError,
    OutOfMemoryError,
    SLAViolationError,
    UnsupportedAlgorithmError,
    ValidationError,
)


class TestHierarchy:
    def test_every_library_error_derives_from_base(self):
        for name, member in vars(exceptions).items():
            if inspect.isclass(member) and issubclass(member, Exception):
                if member is not GraphalyticsError:
                    assert issubclass(member, GraphalyticsError), name

    def test_base_class_catches_everything(self):
        from repro.graph.builder import GraphBuilder

        with pytest.raises(GraphalyticsError):
            GraphBuilder().add_edge(1, 1)
        with pytest.raises(GraphalyticsError):
            from repro.harness.datasets import get_dataset

            get_dataset("R99")

    def test_unsupported_algorithm_carries_context(self):
        error = UnsupportedAlgorithmError("PGX.D", "lcc")
        assert error.platform == "PGX.D"
        assert error.algorithm == "lcc"
        assert "PGX.D" in str(error)

    def test_out_of_memory_formats_gib(self):
        error = OutOfMemoryError(100 * 2**30, 64 * 2**30, detail="test")
        assert "100.0 GiB" in str(error)
        assert "64.0 GiB" in str(error)
        assert error.demand_bytes == 100 * 2**30

    @pytest.mark.parametrize(
        "cls",
        [GraphFormatError, ValidationError, SLAViolationError,
         ConfigurationError, DatasetError, GenerationError],
    )
    def test_simple_subclasses_construct(self, cls):
        assert isinstance(cls("message"), GraphalyticsError)
