"""Unit tests for the named-fault-point plane (repro.faults.points)."""

from __future__ import annotations

import errno
import io
import json

import pytest

from repro.faults import points
from repro.faults.points import (
    FAULT_POINTS,
    FaultPointError,
    InjectedIOError,
    IoFault,
    IoFaultPlan,
    active_io_plan,
    check,
    fault_point_inventory,
    install_io_plan,
    io_faults,
    is_fault_point,
    register_fault_point,
    write_through,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    install_io_plan(None)
    yield
    install_io_plan(None)


class TestRegistry:
    def test_central_inventory_is_registered(self):
        inventory = fault_point_inventory()
        for name, description in FAULT_POINTS.items():
            assert inventory[name] == description
        # The plane covers every durability-critical layer.
        assert "ioutil.atomic_write.write" in inventory
        assert "journal.append.fsync" in inventory
        assert "cache.spill.write" in inventory
        assert "service.spool.outcome" in inventory

    def test_registration_is_idempotent(self):
        name = register_fault_point(
            "ioutil.atomic_write.write", FAULT_POINTS["ioutil.atomic_write.write"]
        )
        assert is_fault_point(name)

    def test_conflicting_description_collides(self):
        with pytest.raises(FaultPointError, match="registered twice"):
            register_fault_point("journal.append.write", "something else")

    def test_inventory_is_sorted(self):
        names = list(fault_point_inventory())
        assert names == sorted(names)


class TestIoFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPointError, match="unknown I/O fault kind"):
            IoFault(point="journal.append.write", kind="gamma-ray")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPointError, match="outside"):
            IoFault(point="journal.append.write", kind="eio", probability=1.5)

    def test_plan_rejects_unregistered_point(self):
        with pytest.raises(FaultPointError, match="unregistered point"):
            IoFaultPlan([IoFault(point="nope.nope", kind="eio")])

    def test_round_trip(self):
        plan = IoFaultPlan(
            [
                IoFault(
                    point="journal.append.write",
                    kind="torn-write",
                    after=2,
                    times=3,
                    probability=0.5,
                )
            ],
            seed=7,
        )
        clone = IoFaultPlan.from_dict(
            json.loads(json.dumps(plan.as_dict()))
        )
        assert clone.as_dict() == plan.as_dict()
        assert clone.seed == 7
        assert clone.faults[0].after == 2

    def test_from_dict_rejects_non_list_faults(self):
        with pytest.raises(FaultPointError, match="must be a list"):
            IoFaultPlan.from_dict({"seed": 0, "faults": "all of them"})


class TestMatching:
    def test_after_skips_then_times_bounds(self):
        plan = IoFaultPlan(
            [IoFault(point="journal.append.write", kind="eio", after=2, times=2)]
        )
        fired = [
            plan.match("journal.append.write") is not None for _ in range(6)
        ]
        assert fired == [False, False, True, True, False, False]
        assert plan.injected() == {0: 2}

    def test_points_count_independently(self):
        plan = IoFaultPlan(
            [IoFault(point="journal.append.fsync", kind="fsync-fail", after=1)]
        )
        assert plan.match("journal.append.write") is None
        assert plan.match("journal.append.fsync") is None  # arrival 0
        assert plan.match("journal.append.fsync") is not None  # arrival 1

    def test_first_eligible_rule_wins(self):
        plan = IoFaultPlan(
            [
                IoFault(point="journal.append.write", kind="eio", times=1),
                IoFault(point="journal.append.write", kind="enospc", times=1),
            ]
        )
        assert plan.match("journal.append.write").kind == "eio"
        assert plan.match("journal.append.write").kind == "enospc"

    def test_probability_is_seed_deterministic(self):
        def trace(seed):
            plan = IoFaultPlan(
                [
                    IoFault(
                        point="cache.spill.write",
                        kind="eio",
                        probability=0.5,
                        times=100,
                    )
                ],
                seed=seed,
            )
            return [
                plan.match("cache.spill.write") is not None
                for _ in range(40)
            ]

        assert trace(42) == trace(42)
        assert trace(42) != trace(43)  # astronomically unlikely to tie
        assert any(trace(42)) and not all(trace(42))


class TestCallSiteApi:
    def test_no_plan_is_a_plain_write(self):
        buffer = io.BytesIO()
        write_through("journal.append.write", buffer, b"payload")
        assert buffer.getvalue() == b"payload"

    def test_enospc_raises_before_any_bytes(self):
        buffer = io.BytesIO()
        plan = IoFaultPlan(
            [IoFault(point="journal.append.write", kind="enospc")]
        )
        with io_faults(plan):
            with pytest.raises(InjectedIOError) as excinfo:
                write_through("journal.append.write", buffer, b"payload")
        assert excinfo.value.errno == errno.ENOSPC
        assert buffer.getvalue() == b""  # a full disk rejects the write whole

    def test_torn_write_leaves_a_prefix_and_raises_eio(self):
        buffer = io.BytesIO()
        plan = IoFaultPlan(
            [IoFault(point="journal.append.write", kind="torn-write")]
        )
        with io_faults(plan):
            with pytest.raises(InjectedIOError) as excinfo:
                write_through("journal.append.write", buffer, b"0123456789")
        assert excinfo.value.errno == errno.EIO
        assert buffer.getvalue() == b"01234"  # half the payload, flushed

    def test_injected_error_is_a_real_oserror(self):
        plan = IoFaultPlan([IoFault(point="journal.append.fsync", kind="fsync-fail")])
        with io_faults(plan):
            with pytest.raises(OSError) as excinfo:
                check("journal.append.fsync")
        assert excinfo.value.errno == errno.EIO
        assert excinfo.value.point == "journal.append.fsync"
        assert excinfo.value.kind == "fsync-fail"

    def test_latency_sleeps_on_the_tracer_clock_then_writes(self):
        from repro.trace import FakeClock, Tracer, use_tracer

        tracer = Tracer(clock=FakeClock())
        buffer = io.BytesIO()
        plan = IoFaultPlan(
            [
                IoFault(
                    point="cache.spill.write",
                    kind="latency",
                    latency_seconds=1.5,
                )
            ]
        )
        with use_tracer(tracer), io_faults(plan):
            before = tracer.clock.now()
            write_through("cache.spill.write", buffer, b"blob")
            after = tracer.clock.now()
        assert buffer.getvalue() == b"blob"  # delayed, not lost
        assert after - before >= 1.5

    def test_check_fires_payloadless_points(self):
        plan = IoFaultPlan(
            [IoFault(point="ioutil.atomic_write.replace", kind="eio")]
        )
        with io_faults(plan):
            with pytest.raises(InjectedIOError):
                check("ioutil.atomic_write.replace")
            check("ioutil.atomic_write.replace")  # times=1 exhausted

    def test_context_manager_restores_previous_plan(self):
        outer = IoFaultPlan([], seed=1)
        inner = IoFaultPlan([], seed=2)
        install_io_plan(outer)
        with io_faults(inner):
            assert active_io_plan() is inner
        assert active_io_plan() is outer


class TestEnvDelivery:
    def test_plan_loads_lazily_from_env(self, tmp_path, monkeypatch):
        payload = IoFaultPlan(
            [IoFault(point="journal.append.write", kind="enospc")], seed=9
        ).as_dict()
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        monkeypatch.setenv(points.PLAN_ENV, str(path))
        monkeypatch.setattr(points, "_ENV_CHECKED", False)
        install_io_plan(None)
        plan = active_io_plan()
        assert plan is not None
        assert plan.seed == 9
        assert plan.faults[0].kind == "enospc"

    def test_env_checked_only_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(points.PLAN_ENV, str(tmp_path / "missing.json"))
        monkeypatch.setattr(points, "_ENV_CHECKED", True)
        install_io_plan(None)
        assert active_io_plan() is None  # no re-read, no crash
