"""ResultsStore: WAL durability, transactions, and crash honesty.

The acceptance-critical scenario lives in :class:`TestCommitCrash`: a
child process armed with a ``kill`` fault at ``resultsdb.commit`` is
SIGKILLed with the transaction open in WAL — the reopened store must
hold either the old state or the new state, never a torn one.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.faults.points import (
    PLAN_ENV,
    InjectedIOError,
    IoFault,
    IoFaultPlan,
    io_faults,
)
from repro.resultsdb.store import STORE_NAME, ResultsStore

from tests.resultsdb.conftest import make_metadata, make_record

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestSubmitRoundTrip:
    def test_run_and_records_survive_reopen(self, tmp_path):
        path = tmp_path / STORE_NAME
        records = [
            make_record(algorithm="bfs"),
            make_record(algorithm="pr", modeled_processing_time=0.7),
        ]
        with ResultsStore(path) as store:
            store.submit_run(make_metadata("run-a"), records)
        with ResultsStore(path) as store:
            assert store.run_ids() == ["run-a"]
            assert store.run_records("run-a") == records
            metadata = store.run_metadata("run-a")
            assert metadata["run_id"] == "run-a"
            assert metadata["system_under_test"] == "GraphMat on DAS-5"

    def test_wal_mode_and_full_synchronous(self, store):
        assert store.query("PRAGMA journal_mode") == [("wal",)]
        assert store.query("PRAGMA synchronous") == [(2,)]

    def test_duplicate_run_id_rejected(self, store):
        store.submit_run(make_metadata("run-a"), [make_record()])
        with pytest.raises(ConfigurationError, match="already exists"):
            store.submit_run(make_metadata("run-a"), [make_record()])
        assert store.stats()["runs"] == 1

    def test_replace_swaps_the_whole_run(self, store):
        store.submit_run(
            make_metadata("run-a"), [make_record(), make_record()]
        )
        store.submit_run(
            make_metadata("run-a", description="second attempt"),
            [make_record(algorithm="wcc")],
            replace=True,
        )
        assert store.run_ids() == ["run-a"]
        records = store.run_records("run-a")
        assert len(records) == 1
        assert records[0]["algorithm"] == "wcc"
        assert store.run_metadata("run-a")["description"] == "second attempt"

    def test_empty_run_refused(self, store):
        with pytest.raises(ConfigurationError, match="empty run"):
            store.submit_run(make_metadata("run-a"), [])
        assert store.stats()["runs"] == 0

    def test_unknown_run_errors(self, store):
        with pytest.raises(ConfigurationError, match="unknown run"):
            store.run_records("ghost")
        with pytest.raises(ConfigurationError, match="unknown run"):
            store.run_metadata("ghost")

    def test_spans_round_trip_in_order(self, store):
        spans = [
            {"id": "s1", "parent": None, "name": "run", "status": "ok",
             "start": 1.0, "end": 9.0, "process": "driver",
             "attributes": {"algorithm": "bfs"}},
            {"id": "s2", "parent": "s1", "name": "load", "status": "ok",
             "start": 1.5, "end": 3.0, "process": "driver",
             "attributes": {}},
        ]
        store.submit_run(make_metadata("run-a"), [make_record()], spans=spans)
        stored = store.run_spans("run-a")
        assert [s["id"] for s in stored] == ["s1", "s2"]
        assert stored[1]["parent"] == "s1"
        assert stored[0]["attrs"] == {"algorithm": "bfs"}

    def test_breaches_derived_from_noncompliant_rows(self, store):
        store.submit_run(
            make_metadata("run-a"),
            [
                make_record(sla_compliant=True),
                make_record(
                    algorithm="pr", sla_compliant=False,
                    modeled_makespan=9000.0,
                ),
            ],
        )
        breaches = store.run_breaches("run-a")
        assert len(breaches) == 1
        assert breaches[0]["algorithm"] == "pr"
        assert breaches[0]["modeled_makespan"] == 9000.0
        assert breaches[0]["budget"] > 0

    def test_stats_counts_everything(self, store):
        store.submit_run(
            make_metadata("run-a"),
            [make_record(), make_record(sla_compliant=False)],
            spans=[{"id": "s1", "name": "run", "start": 0.0, "end": 1.0}],
        )
        stats = store.stats()
        assert stats["runs"] == 1
        assert stats["jobs"] == 2
        assert stats["spans"] == 1
        assert stats["sla_breaches"] == 1
        assert stats["db_bytes"] > 0

    def test_single_connection_is_thread_safe(self, store):
        errors = []

        def submit(index):
            try:
                store.submit_run(
                    make_metadata(f"run-{index}"), [make_record()]
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store.run_ids()) == 8


class TestCommitFaults:
    def test_enospc_at_commit_rolls_back_whole_run(self, tmp_path):
        path = tmp_path / STORE_NAME
        with ResultsStore(path) as store:
            store.submit_run(make_metadata("run-old"), [make_record()])
            plan = IoFaultPlan(
                [IoFault(point="resultsdb.commit", kind="enospc")], seed=3
            )
            with io_faults(plan):
                with pytest.raises(InjectedIOError):
                    store.submit_run(
                        make_metadata("run-new"),
                        [make_record(), make_record()],
                    )
            # Old state intact, new run absent in whole — no torn rows.
            assert store.run_ids() == ["run-old"]
            assert store.stats()["jobs"] == 1
            # The store is not wedged: the same submit now succeeds.
            store.submit_run(make_metadata("run-new"), [make_record()])
            assert store.run_ids() == ["run-new", "run-old"]

    def test_eio_at_commit_during_replace_keeps_old_rows(self, store):
        store.submit_run(make_metadata("run-a"), [make_record()])
        plan = IoFaultPlan(
            [IoFault(point="resultsdb.commit", kind="eio")], seed=3
        )
        with io_faults(plan):
            with pytest.raises(InjectedIOError):
                store.submit_run(
                    make_metadata("run-a", description="replacement"),
                    [make_record(algorithm="wcc")],
                    replace=True,
                )
        assert store.run_records("run-a")[0]["algorithm"] == "bfs"
        assert store.run_metadata("run-a")["description"] == ""


_CHILD_SCRIPT = """
import json, sys
from repro.resultsdb.store import ResultsStore

path, payload_path = sys.argv[1], sys.argv[2]
payload = json.loads(open(payload_path, encoding="utf-8").read())
with ResultsStore(path) as store:
    store.submit_run(payload["metadata"], payload["results"])
print("COMMITTED")
"""


def _crash_submit(tmp_path, store_path, run_id):
    """Run a child that submits ``run_id`` and dies at the COMMIT."""
    plan_path = tmp_path / "kill-plan.json"
    plan_path.write_text(
        json.dumps({
            "seed": 11,
            "faults": [{"point": "resultsdb.commit", "kind": "kill"}],
        }),
        encoding="utf-8",
    )
    payload_path = tmp_path / f"{run_id}-payload.json"
    payload_path.write_text(
        json.dumps({
            "metadata": make_metadata(run_id),
            "results": [make_record(), make_record(algorithm="pr")],
        }),
        encoding="utf-8",
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    env[PLAN_ENV] = str(plan_path)
    return subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(store_path),
         str(payload_path)],
        env=env, capture_output=True, text=True, timeout=60,
    )


class TestCommitCrash:
    """SIGKILL mid-COMMIT must leave old-or-new state, never torn."""

    def test_kill_on_first_submit_leaves_store_readable_and_empty(
        self, tmp_path
    ):
        store_path = tmp_path / STORE_NAME
        proc = _crash_submit(tmp_path, store_path, "run-crash")
        assert proc.returncode == -signal.SIGKILL
        assert "COMMITTED" not in proc.stdout

        # WAL discards the open transaction on the next connection: the
        # store reads clean and holds the OLD state (nothing).
        with ResultsStore(store_path) as store:
            assert store.run_ids() == []
            assert store.stats()["jobs"] == 0
            # And it accepts the retried submit whole.
            store.submit_run(make_metadata("run-crash"), [make_record()])
            assert store.run_ids() == ["run-crash"]

    def test_kill_mid_submit_preserves_prior_runs_exactly(self, tmp_path):
        store_path = tmp_path / STORE_NAME
        survivor = [make_record(), make_record(algorithm="wcc")]
        with ResultsStore(store_path) as store:
            store.submit_run(make_metadata("run-old"), survivor)
            before = store.canonical_bytes("run-old")

        proc = _crash_submit(tmp_path, store_path, "run-doomed")
        assert proc.returncode == -signal.SIGKILL

        with ResultsStore(store_path) as store:
            # Old state, byte-for-byte; the doomed run is absent whole.
            assert store.run_ids() == ["run-old"]
            assert store.canonical_bytes("run-old") == before
            assert not store.has_run("run-doomed")

    def test_integrity_check_passes_after_crash(self, tmp_path):
        store_path = tmp_path / STORE_NAME
        with ResultsStore(store_path) as store:
            store.submit_run(make_metadata("run-old"), [make_record()])
        _crash_submit(tmp_path, store_path, "run-doomed")
        with ResultsStore(store_path) as store:
            assert store.query("PRAGMA integrity_check") == [("ok",)]
