"""Canned-query semantics: top, trend, regressions.

Byte-level answer identity against the retired JSON backend is proved
in ``test_migrate.py``; this module pins each query's own contract —
ordering, tie-breaking, filters, and which rows count as usable.
"""

from __future__ import annotations

import pytest

from repro.resultsdb import queries
from tests.resultsdb.conftest import make_metadata, make_record


def _submit(store, run_id, records, **kwargs):
    store.submit_run(make_metadata(run_id), records, **kwargs)


class TestTop:
    def test_leaderboard_ranks_platform_bests(self, store):
        _submit(store, "run-a", [
            make_record(platform="GraphMat", modeled_processing_time=0.5),
            make_record(platform="Giraph", modeled_processing_time=0.9),
            make_record(platform="GraphMat", modeled_processing_time=0.3),
        ])
        _submit(store, "run-b", [
            make_record(platform="Giraph", modeled_processing_time=0.4),
            make_record(platform="PGX.D", modeled_processing_time=0.2),
        ])
        entries = queries.top(store, "bfs", "D300")
        assert [(e.rank, e.platform, e.tproc) for e in entries] == [
            (1, "PGX.D", 0.2),
            (2, "GraphMat", 0.3),
            (3, "Giraph", 0.4),
        ]
        assert entries[0].run_id == "run-b"
        assert entries[1].run_id == "run-a"

    def test_limit_truncates_after_ranking(self, store):
        _submit(store, "run-a", [
            make_record(platform="A", modeled_processing_time=0.5),
            make_record(platform="B", modeled_processing_time=0.1),
        ])
        entries = queries.top(store, "bfs", "D300", limit=1)
        assert [(e.rank, e.platform) for e in entries] == [(1, "B")]

    def test_equal_times_rank_by_platform_name(self, store):
        _submit(store, "run-a", [
            make_record(platform="Zeta", modeled_processing_time=0.3),
            make_record(platform="Alpha", modeled_processing_time=0.3),
        ])
        entries = queries.top(store, "bfs", "D300")
        assert [e.platform for e in entries] == ["Alpha", "Zeta"]

    def test_failed_noncompliant_and_timeless_rows_excluded(self, store):
        _submit(store, "run-a", [
            make_record(platform="A", status="failed"),
            make_record(platform="B", sla_compliant=False),
            make_record(platform="C", modeled_processing_time=None,
                        status="skipped"),
            make_record(platform="D", modeled_processing_time=1.0),
        ])
        entries = queries.top(store, "bfs", "D300")
        assert [e.platform for e in entries] == ["D"]

    def test_algorithm_case_folded(self, store):
        _submit(store, "run-a", [make_record(algorithm="bfs")])
        assert queries.top(store, "BFS", "D300")
        assert queries.top(store, "bfs", "other") == []


class TestBestPlatform:
    def test_first_strictly_lower_wins_ties(self, store):
        # Two equal times: the earlier (run_id, position) keeps the
        # crown — the JSON backend's first-strictly-lower rule.
        _submit(store, "run-a", [
            make_record(platform="First", modeled_processing_time=0.3),
        ])
        _submit(store, "run-b", [
            make_record(platform="Second", modeled_processing_time=0.3),
        ])
        best = queries.best_platform(store, "bfs", "D300")
        assert best == {"run_id": "run-a", "platform": "First", "tproc": 0.3}

    def test_none_when_nothing_compliant(self, store):
        _submit(store, "run-a", [make_record(status="failed")])
        assert queries.best_platform(store, "bfs", "D300") is None


class TestTrend:
    def test_points_follow_insertion_order_not_run_id_sort(self, store):
        # run-z submitted before run-a: the trend axis is submission
        # (rowid) order, unlike the lexicographic run_id order the
        # leaderboard queries use.
        _submit(store, "run-z", [
            make_record(modeled_processing_time=0.5),
        ])
        _submit(store, "run-a", [
            make_record(modeled_processing_time=0.4),
        ])
        points = queries.trend(store, "GraphMat", "bfs", "D300")
        assert [p.run_id for p in points] == ["run-z", "run-a"]
        assert [p.tproc for p in points] == [0.5, 0.4]

    def test_best_time_per_run_and_visible_gaps(self, store):
        _submit(store, "run-1", [
            make_record(modeled_processing_time=0.9),
            make_record(modeled_processing_time=0.4),
        ])
        _submit(store, "run-2", [
            make_record(status="failed", modeled_processing_time=None),
        ])
        points = queries.trend(store, "GraphMat", "bfs", "D300")
        assert points[0].tproc == 0.4
        # The all-failed run is a visible gap, not a dropped point.
        assert points[1].tproc is None
        assert points[1].status == "failed"

    def test_machines_and_threads_filters(self, store):
        _submit(store, "run-1", [
            make_record(machines=1, threads=16, modeled_processing_time=0.2),
            make_record(machines=4, threads=32, modeled_processing_time=0.8),
        ])
        points = queries.trend(
            store, "GraphMat", "bfs", "D300", machines=4, threads=32
        )
        assert [p.tproc for p in points] == [0.8]
        assert queries.trend(
            store, "GraphMat", "bfs", "D300", machines=9
        ) == []

    def test_commit_sha_rides_along(self, store):
        store.submit_run(
            make_metadata("run-1"), [make_record()],
            commit_sha="abc123", submitted_at=42.0,
        )
        point = queries.trend(store, "GraphMat", "bfs", "D300")[0]
        assert point.commit_sha == "abc123"
        assert point.submitted_at == 42.0


class TestRegressions:
    def test_threshold_and_descending_slowdown(self, store):
        _submit(store, "run-old", [
            make_record(algorithm="bfs", modeled_processing_time=1.0),
            make_record(algorithm="pr", modeled_processing_time=1.0),
            make_record(algorithm="wcc", modeled_processing_time=1.0),
        ])
        _submit(store, "run-new", [
            make_record(algorithm="bfs", modeled_processing_time=1.5),
            make_record(algorithm="pr", modeled_processing_time=3.0),
            make_record(algorithm="wcc", modeled_processing_time=1.05),
        ])
        found = queries.regressions(store, "run-old", "run-new")
        assert [(r.algorithm, r.slowdown) for r in found] == [
            ("pr", 3.0), ("bfs", 1.5),
        ]
        assert found[0].old_seconds == 1.0
        assert found[0].new_seconds == 3.0

    def test_custom_threshold(self, store):
        _submit(store, "run-old", [make_record(modeled_processing_time=1.0)])
        _submit(store, "run-new", [make_record(modeled_processing_time=1.5)])
        assert queries.regressions(
            store, "run-old", "run-new", threshold=2.0
        ) == []
        assert len(queries.regressions(
            store, "run-old", "run-new", threshold=1.2
        )) == 1

    def test_last_write_wins_old_index(self, store):
        # Duplicate workload rows in the old run: the later row is the
        # baseline (the JSON backend's dict-overwrite semantics).
        _submit(store, "run-old", [
            make_record(modeled_processing_time=10.0),
            make_record(modeled_processing_time=1.0),
        ])
        _submit(store, "run-new", [
            make_record(modeled_processing_time=2.0),
        ])
        found = queries.regressions(store, "run-old", "run-new")
        assert [(r.old_seconds, r.new_seconds) for r in found] == [(1.0, 2.0)]

    def test_failed_and_zero_time_rows_ignored(self, store):
        _submit(store, "run-old", [
            make_record(modeled_processing_time=1.0),
        ])
        _submit(store, "run-new", [
            make_record(status="failed", modeled_processing_time=99.0),
            make_record(algorithm="pr", modeled_processing_time=0.0),
        ])
        assert queries.regressions(store, "run-old", "run-new") == []

    def test_unmatched_workloads_are_not_regressions(self, store):
        _submit(store, "run-old", [
            make_record(dataset="D300", modeled_processing_time=1.0),
        ])
        _submit(store, "run-new", [
            make_record(dataset="D1000", modeled_processing_time=50.0),
        ])
        assert queries.regressions(store, "run-old", "run-new") == []

    def test_regression_query_bundles_inputs(self, store):
        _submit(store, "run-old", [make_record(modeled_processing_time=1.0)])
        _submit(store, "run-new", [make_record(modeled_processing_time=2.0)])
        bundle = queries.regression_query(store, "run-old", "run-new")
        assert bundle.old_run == "run-old"
        assert bundle.new_run == "run-new"
        assert bundle.threshold == 1.10
        assert len(bundle.regressions) == 1

    def test_unknown_run_errors(self, store):
        from repro.exceptions import ConfigurationError

        _submit(store, "run-old", [make_record()])
        with pytest.raises(ConfigurationError, match="unknown run"):
            queries.regressions(store, "run-old", "ghost")
