"""Legacy JSON-repository migration: losslessness and answer identity.

The reference implementations of ``best_platform`` and ``regressions``
here are the retired JSON backend's loops, transcribed over the raw
archive payloads — the migrated store must answer every canned query
exactly as the directory of JSON blobs did.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

import pytest

from repro.exceptions import ConfigurationError
from repro.faults.points import IoFault, IoFaultPlan, InjectedIOError, io_faults
from repro.resultsdb import queries
from repro.resultsdb.migrate import import_json_repository
from repro.resultsdb.store import STORE_NAME, ResultsStore

from tests.resultsdb.conftest import make_metadata, make_record


def _write_archive(root, run_id, records, **metadata):
    """One legacy run archive, byte-for-byte as the old backend wrote it."""
    payload = {
        "metadata": make_metadata(run_id, **metadata),
        "results": records,
    }
    raw = json.dumps(payload, indent=1).encode("utf-8")
    (root / f"{run_id}.json").write_bytes(raw)
    return raw


def _legacy_repo(tmp_path, *, with_sidecars=True):
    """A three-run legacy repository with varied workloads."""
    root = tmp_path / "legacy"
    root.mkdir()
    raw = {}
    raw["run-2016-a"] = _write_archive(root, "run-2016-a", [
        make_record(platform="GraphMat", modeled_processing_time=0.5),
        make_record(platform="Giraph", modeled_processing_time=0.9),
        make_record(platform="GraphMat", algorithm="pr",
                    modeled_processing_time=2.0),
    ])
    raw["run-2016-b"] = _write_archive(root, "run-2016-b", [
        make_record(platform="Giraph", modeled_processing_time=0.4),
        make_record(platform="GraphMat", algorithm="pr",
                    modeled_processing_time=3.0),
        make_record(platform="PGX.D", status="failed",
                    modeled_processing_time=None),
    ], description="second sweep")
    raw["run-2016-c"] = _write_archive(root, "run-2016-c", [
        make_record(platform="PGX.D", modeled_processing_time=0.5),
        make_record(platform="Giraph", sla_compliant=False,
                    modeled_processing_time=0.1),
    ])
    if with_sidecars:
        (root / ".index.json").write_text("{}", encoding="utf-8")
        (root / ".lock").write_text("", encoding="utf-8")
    return root, raw


# -- the retired JSON backend's loops, over raw archives ----------------------

def _json_payloads(root) -> Dict[str, dict]:
    payloads = {}
    for path in sorted(root.glob("*.json")):
        if path.name.startswith("."):
            continue
        payloads[path.stem] = json.loads(path.read_bytes())
    return payloads


def _json_best_platform(root, algorithm, dataset) -> Optional[dict]:
    best = None
    for run_id in sorted(_json_payloads(root)):
        for record in _json_payloads(root)[run_id]["results"]:
            if (
                record.get("algorithm") == algorithm.lower()
                and record.get("dataset") == dataset
                and record.get("status") == "succeeded"
                and record.get("sla_compliant")
                and record.get("modeled_processing_time") is not None
            ):
                tproc = record["modeled_processing_time"]
                if best is None or tproc < best["tproc"]:
                    best = {
                        "run_id": run_id,
                        "platform": record["platform"],
                        "tproc": tproc,
                    }
    return best


def _json_regressions(root, old_run, new_run, threshold=1.10) -> List[tuple]:
    payloads = _json_payloads(root)

    def key(record):
        return (
            record.get("platform"), record.get("algorithm"),
            record.get("dataset"), record.get("machines"),
            record.get("threads"),
        )

    old_index = {}
    for record in payloads[old_run]["results"]:
        if record.get("status") == "succeeded" and record.get(
            "modeled_processing_time"
        ):
            old_index[key(record)] = record["modeled_processing_time"]
    found = []
    for record in payloads[new_run]["results"]:
        if not (
            record.get("status") == "succeeded"
            and record.get("modeled_processing_time")
        ):
            continue
        if key(record) in old_index:
            old_time = old_index[key(record)]
            new_time = record["modeled_processing_time"]
            if new_time > threshold * old_time:
                found.append(
                    (record["platform"], record["algorithm"],
                     record["dataset"], old_time, new_time)
                )
    return sorted(found, key=lambda row: -(row[4] / row[3]))


class TestImport:
    def test_imports_all_runs_and_skips_sidecars(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        summary = import_json_repository(root)
        assert summary["imported"] == [
            "run-2016-a", "run-2016-b", "run-2016-c",
        ]
        assert summary["skipped"] == [".index.json", ".lock"]
        assert summary["verified"] is True
        assert summary["stats"]["runs"] == 3
        with ResultsStore(root / STORE_NAME) as store:
            assert store.run_ids() == [
                "run-2016-a", "run-2016-b", "run-2016-c",
            ]

    def test_pre_pr7_repository_without_index_imports_identically(
        self, tmp_path
    ):
        root, raw = _legacy_repo(tmp_path, with_sidecars=False)
        summary = import_json_repository(root)
        assert summary["skipped"] == []
        with ResultsStore(root / STORE_NAME) as store:
            for run_id, source in raw.items():
                assert store.canonical_bytes(run_id) == source

    def test_byte_identical_round_trip(self, tmp_path):
        root, raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        with ResultsStore(root / STORE_NAME) as store:
            for run_id, source in raw.items():
                assert store.canonical_bytes(run_id) == source
                assert json.loads(source) == store.canonical_payload(run_id)

    def test_metadata_key_order_is_preserved(self, tmp_path):
        # An archive whose metadata block has a non-standard key order
        # must still round-trip byte-for-byte: the run record column
        # stores the mapping verbatim.
        root = tmp_path / "legacy"
        root.mkdir()
        payload = {
            "metadata": {
                "description": "reordered",
                "run_id": "run-odd",
                "submitter": "ops",
                "system_under_test": "X",
            },
            "results": [make_record()],
        }
        raw = json.dumps(payload, indent=1).encode("utf-8")
        (root / "run-odd.json").write_bytes(raw)
        import_json_repository(root)
        with ResultsStore(root / STORE_NAME) as store:
            assert store.canonical_bytes("run-odd") == raw

    def test_duplicate_import_refused_then_replace_succeeds(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        with pytest.raises(ConfigurationError, match="already exists"):
            import_json_repository(root)
        summary = import_json_repository(root, replace=True)
        assert summary["stats"]["runs"] == 3

    def test_mismatched_run_id_rejected(self, tmp_path):
        root = tmp_path / "legacy"
        root.mkdir()
        payload = {
            "metadata": make_metadata("other-id"),
            "results": [make_record()],
        }
        (root / "run-a.json").write_text(
            json.dumps(payload, indent=1), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="claims run id"):
            import_json_repository(root)
        assert not (root / STORE_NAME).exists()

    def test_torn_archive_aborts_before_writing(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        (root / "run-torn.json").write_bytes(b'{"metadata": {"ru')
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            import_json_repository(root)
        assert not (root / STORE_NAME).exists()

    def test_non_canonical_formatting_fails_verification(self, tmp_path):
        # A hand-edited archive (2-space indent) cannot be reproduced
        # losslessly; verify aborts with the store untouched.
        root = tmp_path / "legacy"
        root.mkdir()
        payload = {
            "metadata": make_metadata("run-edited"),
            "results": [make_record()],
        }
        (root / "run-edited.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="round-trip"):
            import_json_repository(root)
        assert not (root / STORE_NAME).exists()
        # --no-verify imports it anyway (semantically, not byte-wise).
        summary = import_json_repository(root, verify=False)
        assert summary["imported"] == ["run-edited"]

    def test_not_a_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a directory"):
            import_json_repository(tmp_path / "missing")


class TestOneTransaction:
    def test_fault_at_commit_leaves_store_unmigrated_whole(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        plan = IoFaultPlan(
            [IoFault(point="resultsdb.commit", kind="enospc")], seed=5
        )
        with io_faults(plan):
            with pytest.raises(InjectedIOError):
                import_json_repository(root)
        # All three runs share ONE transaction: none of them landed.
        with ResultsStore(root / STORE_NAME) as store:
            assert store.run_ids() == []
        # The retry migrates everything.
        assert import_json_repository(root)["stats"]["runs"] == 3


class TestAnswerIdentity:
    """Every canned query matches the JSON backend's answer."""

    def test_best_platform_identical_for_every_workload(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        with ResultsStore(root / STORE_NAME) as store:
            for algorithm, dataset in [
                ("bfs", "D300"), ("pr", "D300"), ("BFS", "D300"),
                ("wcc", "D300"), ("bfs", "D1000"),
            ]:
                assert queries.best_platform(
                    store, algorithm, dataset
                ) == _json_best_platform(root, algorithm, dataset)

    def test_top_rank_one_is_the_json_best(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        with ResultsStore(root / STORE_NAME) as store:
            entries = queries.top(store, "bfs", "D300")
            best = _json_best_platform(root, "bfs", "D300")
            assert entries[0].platform == best["platform"]
            assert entries[0].run_id == best["run_id"]
            assert entries[0].tproc == best["tproc"]

    def test_regressions_identical_both_directions(self, tmp_path):
        root, _raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        with ResultsStore(root / STORE_NAME) as store:
            for old, new in [
                ("run-2016-a", "run-2016-b"),
                ("run-2016-b", "run-2016-a"),
                ("run-2016-a", "run-2016-c"),
            ]:
                got = [
                    (r.platform, r.algorithm, r.dataset,
                     r.old_seconds, r.new_seconds)
                    for r in queries.regressions(store, old, new)
                ]
                assert got == _json_regressions(root, old, new)

    def test_facade_queries_match_over_a_migrated_directory(self, tmp_path):
        # The old public API, pointed at the migrated directory, keeps
        # answering — the facade absorbs the archives through the same
        # store the import wrote.
        from repro.harness.repository import ResultsRepository

        root, _raw = _legacy_repo(tmp_path)
        import_json_repository(root)
        repository = ResultsRepository(root)
        assert repository.run_ids() == [
            "run-2016-a", "run-2016-b", "run-2016-c",
        ]
        assert repository.best_platform("bfs", "D300") == _json_best_platform(
            root, "bfs", "D300"
        )
