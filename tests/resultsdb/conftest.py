"""Shared builders for the results-store suites."""

import pytest

from repro.harness.results import BenchmarkResult


def make_record(**overrides):
    """One job record in ``BenchmarkResult.as_dict`` shape."""
    defaults = dict(
        platform="GraphMat",
        algorithm="bfs",
        dataset="D300",
        machines=1,
        threads=32,
        status="succeeded",
        modeled_processing_time=0.3,
        modeled_makespan=1.2,
        sla_compliant=True,
        validated=True,
    )
    defaults.update(overrides)
    return BenchmarkResult(**defaults).as_dict()


def make_metadata(run_id, **overrides):
    metadata = {
        "run_id": run_id,
        "system_under_test": "GraphMat on DAS-5",
        "submitter": "",
        "description": "",
    }
    metadata.update(overrides)
    return metadata


@pytest.fixture
def store(tmp_path):
    from repro.resultsdb.store import ResultsStore

    with ResultsStore(tmp_path / "results.db") as handle:
        yield handle
