"""Service runs commit into the spool-level results store.

End-to-end over the real HTTP service: a finished run's outcome carries
the store commit, ``/v1/healthz`` reports store stats, a store failure
degrades the run instead of failing it, and a SIGKILL at
``resultsdb.commit`` leaves the spool store readable with the old
state.
"""

from __future__ import annotations

import json

from repro.resultsdb.store import STORE_NAME, ResultsStore
from repro.service.runs import OUTCOME_NAME, QUARANTINED

from tests.service.test_chaos import wait_state
from tests.service.test_server import TINY_MATRIX, running_service, wait_terminal

ENOSPC_PLAN = {
    "seed": 7,
    "faults": [{"point": "resultsdb.commit", "kind": "enospc"}],
}

KILL_AT_COMMIT_PLAN = {
    "seed": 7,
    "faults": [{"point": "resultsdb.commit", "kind": "kill"}],
}


def _outcome(service, run_id):
    path = service.registry.run_dir(run_id) / OUTCOME_NAME
    return json.loads(path.read_text(encoding="utf-8"))


class TestTerminalCommit:
    def test_done_run_lands_in_the_spool_store(self, tmp_path):
        with running_service(tmp_path) as (service, client):
            accepted = client.submit("acme", TINY_MATRIX)
            run_id = accepted["run_id"]
            assert wait_terminal(client, run_id)["state"] == "done"

            outcome = _outcome(service, run_id)
            assert outcome["resultsdb"]["runs"] >= 1
            assert outcome["resultsdb"]["jobs"] >= 1
            assert "degraded" not in outcome

            store_path = service.config.spool / STORE_NAME
            assert store_path.exists()
            with ResultsStore(store_path) as store:
                assert store.has_run(run_id)
                metadata = store.run_metadata(run_id)
                assert metadata["tenant"] == "acme"
                assert metadata["system_under_test"] == "service:acme"
                records = store.run_records(run_id)
                assert len(records) == 1
                assert records[0]["algorithm"] == "bfs"
                # trace.jsonl spans rode along into the spans table.
                assert store.run_spans(run_id)

    def test_relaunched_run_replaces_not_duplicates(self, tmp_path):
        # Two runs from the same tenant: distinct run ids, two store
        # rows — and each commit uses replace semantics, so a resumed
        # attempt would overwrite its own earlier partial commit.
        with running_service(tmp_path) as (service, client):
            first = client.submit("acme", TINY_MATRIX)["run_id"]
            second = client.submit("acme", TINY_MATRIX)["run_id"]
            wait_terminal(client, first)
            wait_terminal(client, second)
            with ResultsStore(service.config.spool / STORE_NAME) as store:
                assert store.has_run(first)
                assert store.has_run(second)
                assert store.stats()["runs"] == 2

    def test_healthz_reports_store_stats(self, tmp_path):
        with running_service(tmp_path) as (_service, client):
            # Before any run: zeros, and the store file is NOT created
            # just to answer healthz.
            health = client.healthz()
            assert health["results_store"]["runs"] == 0
            assert health["results_store"]["db_bytes"] == 0

            accepted = client.submit("acme", TINY_MATRIX)
            wait_terminal(client, accepted["run_id"])
            health = client.healthz()
            assert health["results_store"]["runs"] == 1
            assert health["results_store"]["jobs"] == 1
            assert health["results_store"]["db_bytes"] > 0


class TestCommitDegradation:
    def test_store_failure_degrades_the_run_not_fails_it(self, tmp_path):
        with running_service(tmp_path) as (service, client):
            accepted = client.submit("acme", TINY_MATRIX, chaos=ENOSPC_PLAN)
            run_id = accepted["run_id"]
            final = wait_terminal(client, run_id)

            # The benchmark run itself SUCCEEDED; only the store commit
            # was lost, and the outcome says so.
            assert final["state"] == "done"
            assert final["degraded"] == ["resultsdb-commit-failed"]
            outcome = _outcome(service, run_id)
            assert outcome["degraded"] == ["resultsdb-commit-failed"]
            assert "resultsdb_error" in outcome
            assert "resultsdb" not in outcome

            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degraded_runs"] == {
                run_id: ["resultsdb-commit-failed"]
            }
            assert health["results_store"]["runs"] == 0


class TestCommitCrash:
    def test_kill_at_commit_quarantines_and_store_stays_readable(
        self, tmp_path
    ):
        with running_service(
            tmp_path,
            run_attempts=2,
            run_backoff_base=0.05,
            breaker_threshold=10,
        ) as (service, client):
            # Seed the store with a clean run first: the crash must not
            # touch the OLD state.
            clean = client.submit("zen", TINY_MATRIX)["run_id"]
            wait_terminal(client, clean)
            store_path = service.config.spool / STORE_NAME
            with ResultsStore(store_path) as store:
                before = store.canonical_bytes(clean)

            # Every attempt dies AT the COMMIT (counters are
            # per-process), so the run exhausts its budget.
            doomed = client.submit(
                "acme", TINY_MATRIX, chaos=KILL_AT_COMMIT_PLAN
            )["run_id"]
            payload = wait_state(client, doomed, (QUARANTINED,))
            assert payload["state"] == QUARANTINED

            # WAL discarded the open transaction both times: old state
            # byte-identical, doomed run absent whole, store healthy.
            with ResultsStore(store_path) as store:
                assert store.canonical_bytes(clean) == before
                assert not store.has_run(doomed)
                assert store.query("PRAGMA integrity_check") == [("ok",)]
            health = client.healthz()
            assert health["results_store"]["runs"] == 1
