"""SQL-backed Granula views: span forest and rendered store reports."""

from __future__ import annotations

from repro.granula.archiver import phases_from_spans
from repro.granula.visualizer import render_store_regressions, render_store_run

from tests.resultsdb.conftest import make_metadata, make_record


def _span(span_id, parent=None, name="phase", status="ok", start=0.0,
          end=1.0, **attrs):
    return {
        "id": span_id, "parent": parent, "name": name, "status": status,
        "start": start, "end": end, "process": "driver", "attrs": attrs,
    }


class TestPhasesFromSpans:
    def test_forest_reparents_by_span_id(self):
        roots = phases_from_spans([
            _span("a", name="run", end=10.0),
            _span("b", parent="a", name="load", end=3.0),
            _span("c", parent="a", name="process", start=3.0, end=9.0),
            _span("d", parent="c", name="superstep", start=3.0, end=4.0),
        ])
        assert [r.name for r in roots] == ["run"]
        run = roots[0]
        assert [c.name for c in run.children] == ["load", "process"]
        assert [c.name for c in run.children[1].children] == ["superstep"]
        assert all(r.source == "measured" for r in roots)

    def test_orphan_parents_become_roots_not_dropped(self):
        roots = phases_from_spans([
            _span("x", parent="missing", name="stranded"),
            _span("y", name="whole"),
        ])
        assert [r.name for r in roots] == ["stranded", "whole"]

    def test_failed_span_carries_status_description(self):
        roots = phases_from_spans([
            _span("a", status="error"),
            _span("b", status="ok"),
        ])
        assert roots[0].description == "status: error"
        assert roots[1].description == ""

    def test_attrs_become_metadata_and_open_end_collapses(self):
        spans = [_span("a", algorithm="bfs")]
        spans[0]["end"] = None
        spans[0]["start"] = 2.5
        (root,) = phases_from_spans(spans)
        assert root.metadata == {"algorithm": "bfs"}
        assert root.start == 2.5
        assert root.end == 2.5

    def test_empty_input_empty_forest(self):
        assert phases_from_spans([]) == []


class TestRenderStoreRun:
    def test_header_and_indented_tree(self, store):
        store.submit_run(
            make_metadata("run-a"),
            [make_record(), make_record(sla_compliant=False)],
            spans=[
                _span("s1", name="run", end=10.0),
                _span("s2", parent="s1", name="load", end=3.0),
            ],
        )
        text = render_store_run(store, "run-a")
        lines = text.splitlines()
        assert lines[0] == (
            "run run-a — GraphMat on DAS-5 (2 jobs, 1 SLA breaches)"
        )
        assert any("run" in line for line in lines[1:])
        # Child phase indented deeper than its parent.
        run_line = next(l for l in lines[1:] if "run" in l)
        load_line = next(l for l in lines if "load" in l)
        assert len(load_line) - len(load_line.lstrip()) > (
            len(run_line) - len(run_line.lstrip())
        )

    def test_spanless_run_says_so(self, store):
        store.submit_run(make_metadata("run-a"), [make_record()])
        text = render_store_run(store, "run-a")
        assert "(no trace spans stored for this run)" in text


class TestRenderStoreRegressions:
    def _two_runs(self, store):
        store.submit_run(
            make_metadata("run-old"),
            [make_record(modeled_processing_time=1.0)],
        )
        store.submit_run(
            make_metadata("run-new"),
            [make_record(modeled_processing_time=2.0)],
        )

    def test_regression_table(self, store):
        self._two_runs(store)
        text = render_store_regressions(store, "run-old", "run-new")
        assert text.splitlines()[0] == (
            "1 regression(s): run-new vs run-old (threshold 1.10x)"
        )
        assert "GraphMat bfs on D300" in text
        assert "(2.00x)" in text

    def test_clean_comparison_says_none(self, store):
        self._two_runs(store)
        text = render_store_regressions(
            store, "run-old", "run-new", threshold=3.0
        )
        assert text == "no regressions: run-new vs run-old (threshold 3.00x)"
