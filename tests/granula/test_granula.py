"""Tests for the Granula modeler, archiver, and visualizer."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.granula.archiver import PerformanceArchive, PhaseRecord, build_archive
from repro.granula.model import (
    DEFAULT_MODEL,
    ChildRule,
    PhaseSpec,
    PlatformPerformanceModel,
    model_for_platform,
)
from repro.granula.visualizer import render_html, render_text, save_html
from repro.graph.generators import erdos_renyi
from repro.platforms.registry import create_driver


@pytest.fixture
def job():
    driver = create_driver("giraph")
    handle = driver.upload(erdos_renyi(40, 0.1, seed=1, name="mini"))
    return driver.execute(handle, "wcc")


@pytest.fixture
def archive(job):
    return build_archive(job)


class TestModeler:
    def test_expert_models_for_all_platforms(self):
        for name in ("giraph", "graphx", "powergraph", "graphmat", "openg",
                     "pgx.d"):
            model = model_for_platform(name)
            assert model is not DEFAULT_MODEL
            assert any(spec.name == "processing" for spec in model.phases)

    def test_unknown_platform_falls_back(self):
        assert model_for_platform("unknown") is DEFAULT_MODEL

    def test_child_fractions_bounded(self):
        with pytest.raises(ConfigurationError):
            ChildRule("x", 1.5)
        with pytest.raises(ConfigurationError):
            PhaseSpec("load", children=(ChildRule("a", 0.7), ChildRule("b", 0.7)))

    def test_spec_for_unmodeled_phase(self):
        spec = DEFAULT_MODEL.spec_for("mystery")
        assert spec.name == "mystery"
        assert spec.children == ()


class TestArchiver:
    def test_phases_in_order(self, archive):
        assert [p.name for p in archive.phases] == [
            "startup", "load", "processing", "cleanup",
        ]

    def test_processing_time_matches_job(self, job, archive):
        assert archive.processing_time == pytest.approx(
            job.modeled_processing_time
        )

    def test_makespan_matches_job(self, job, archive):
        assert archive.makespan == pytest.approx(job.modeled_makespan)

    def test_overhead_ratio_table8_style(self, archive):
        # Giraph's Tproc is a small share of its makespan (Table 8: 8.1%).
        assert 0.0 < archive.overhead_ratio() < 0.5

    def test_derived_children_from_expert_model(self, archive):
        load = archive.phase("load")
        assert [c.name for c in load.children] == ["read", "partition"]
        assert all(c.source == "derived" for c in load.children)
        total = sum(c.duration for c in load.children)
        assert total == pytest.approx(load.duration)

    def test_child_lookup_through_hierarchy(self, archive):
        assert archive.phase("partition").source == "derived"

    def test_unknown_phase_raises(self, archive):
        with pytest.raises(ConfigurationError, match="no phase"):
            archive.phase("shuffle")

    def test_descriptive(self, archive):
        # Paper: the archive is "descriptive (all results are described
        # to non-experts)".
        for phase in archive.phases:
            assert phase.description

    def test_examinable_sources(self, archive):
        # Every record is traceable: observed from the log, measured by
        # the tracer, or derived from the expert model.
        def check(record):
            assert record.source in ("observed", "measured", "derived")
            for child in record.children:
                check(child)

        for phase in archive.phases:
            check(phase)

    def test_metadata_captured(self, archive):
        assert archive.phase("load").metadata["elements"] > 0

    def test_save_roundtrip(self, archive, tmp_path):
        path = archive.save(tmp_path / "archive.json")
        payload = json.loads(path.read_text())
        assert payload["platform"] == "Giraph"
        assert len(payload["phases"]) == 4
        assert payload["phases"][1]["children"][0]["name"] == "read"

    def test_empty_archive(self):
        archive = PerformanceArchive("X", "bfs", "D", phases=[])
        assert archive.makespan == 0.0
        assert archive.overhead_ratio() == 0.0


class TestVisualizer:
    def test_text_rendering(self, archive):
        text = render_text(archive)
        assert "Giraph / wcc on mini" in text
        assert "processing" in text
        assert "* read" in text  # derived phases marked

    def test_html_rendering(self, archive):
        html = render_html(archive)
        assert html.startswith("<!DOCTYPE html>")
        assert "Giraph" in html
        assert "makespan" in html

    def test_save_html(self, archive, tmp_path):
        path = save_html(archive, tmp_path / "report.html")
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_time_formatting(self):
        record = PhaseRecord("processing", 0.0, 0.004)
        archive = PerformanceArchive("X", "bfs", "D", phases=[record])
        assert "4 ms" in render_text(archive)


class TestComparisonRendering:
    def test_table8_style_comparison(self):
        from repro.granula.visualizer import render_comparison
        from repro.harness.datasets import get_dataset
        from repro.platforms.registry import PLATFORMS, create_driver

        dataset = get_dataset("D300")
        graph = dataset.materialize()
        archives = []
        for name in ("giraph", "openg", "pgxd"):
            driver = create_driver(name)
            handle = driver.upload(graph, profile=dataset.profile)
            job = driver.execute(
                handle, "bfs", dataset.algorithm_parameters("bfs")
            )
            archives.append(build_archive(job))
        text = render_comparison(archives)
        assert "Giraph" in text and "PGX.D" in text
        assert "#" in text and "-" in text
        # PGX.D's tiny processing share must be visible as a ratio.
        pgxd_line = next(l for l in text.splitlines() if "PGX.D" in l)
        assert "0.2% of makespan" in pgxd_line or "0.1% of makespan" in pgxd_line

    def test_empty_comparison(self):
        from repro.granula.visualizer import render_comparison

        assert render_comparison([]) == "(no archives)"


class TestSuperstepBreakdown:
    """Per-superstep processing detail: measured Pregel supersteps folded
    into the Granula archive (the §2.5.2 recursive-phase capability)."""

    def test_measured_supersteps_attached(self):
        from repro.engines.pregel import PregelEngine, bfs_program
        from repro.granula.archiver import attach_superstep_breakdown
        from repro.harness.datasets import get_dataset

        dataset = get_dataset("G22")
        graph = dataset.materialize()
        source = int(dataset.algorithm_parameters("bfs")["source_vertex"])
        engine = PregelEngine(graph)
        program, _ = bfs_program(graph, source)
        engine.run(program)
        assert engine.superstep_seconds  # measured

        driver = create_driver("giraph")
        handle = driver.upload(graph, profile=dataset.profile)
        job = driver.execute(handle, "bfs", {"source_vertex": source})
        archive = attach_superstep_breakdown(
            build_archive(job), engine.superstep_seconds
        )
        processing = archive.phase("processing")
        assert len(processing.children) == len(engine.superstep_seconds)
        # Children tile the processing window exactly.
        total = sum(c.duration for c in processing.children)
        assert total == pytest.approx(processing.duration)
        assert processing.children[0].start == pytest.approx(processing.start)
        assert processing.children[-1].end == pytest.approx(processing.end)
        # Supersteps come from measured spans, not the derived model.
        assert all(c.source == "measured" for c in processing.children)
        assert archive.phase("superstep-0").metadata["measured_seconds"] > 0

    def test_empty_trace_rejected(self, archive):
        from repro.granula.archiver import attach_superstep_breakdown

        with pytest.raises(ConfigurationError, match="empty"):
            attach_superstep_breakdown(archive, [])

    def test_negative_duration_rejected(self, archive):
        from repro.granula.archiver import attach_superstep_breakdown

        with pytest.raises(ConfigurationError, match="non-negative"):
            attach_superstep_breakdown(archive, [0.1, -0.2])


class TestMeasuredChildren:
    """Tracer spans flow into the archive as ``source="measured"``
    sub-phase records (the tentpole's Granula-as-consumer behavior)."""

    @pytest.fixture
    def reference_archive(self):
        from repro.harness.datasets import get_dataset

        dataset = get_dataset("G22")
        driver = create_driver("pythonref")
        handle = driver.upload(dataset.materialize(), profile=dataset.profile)
        job = driver.execute(
            handle, "bfs", dataset.algorithm_parameters("bfs")
        )
        return build_archive(job)

    def test_load_children_measured(self, reference_archive):
        load = reference_archive.phase("load")
        assert [c.name for c in load.children] == ["out-csr", "in-csr"]
        assert all(c.source == "measured" for c in load.children)

    def test_processing_children_measured(self, reference_archive):
        processing = reference_archive.phase("processing")
        assert [c.name for c in processing.children] == ["kernel"]
        assert processing.children[0].source == "measured"

    def test_measured_children_nested_in_parent(self, reference_archive):
        for parent in ("load", "processing"):
            record = reference_archive.phase(parent)
            for child in record.children:
                assert child.start >= record.start - 1e-9
                assert child.end <= record.end + 1e-9

    def test_measured_children_survive_save(self, reference_archive, tmp_path):
        payload = json.loads(
            reference_archive.save(tmp_path / "a.json").read_text()
        )
        load = next(p for p in payload["phases"] if p["name"] == "load")
        assert load["children"][0]["source"] == "measured"


class TestHtmlChildren:
    def test_derived_children_rendered(self, archive):
        html_text = render_html(archive)
        assert "read" in html_text and "partition" in html_text
        assert "bar derived" in html_text
