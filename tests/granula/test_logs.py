"""Tests for the Granula log-file round trip."""

import pytest

from repro.exceptions import GraphFormatError
from repro.granula.archiver import build_archive
from repro.granula.logs import (
    archive_from_log,
    read_job_log,
    read_span_log,
    write_job_log,
    write_span_log,
)
from repro.graph.generators import erdos_renyi
from repro.platforms.registry import create_driver


@pytest.fixture
def job():
    driver = create_driver("graphmat")
    handle = driver.upload(erdos_renyi(50, 0.1, seed=2, name="mini"))
    return driver.execute(handle, "pr")


class TestRoundTrip:
    def test_write_and_read(self, job, tmp_path):
        path = write_job_log(job, tmp_path / "job.log", job_id="run-7")
        logged = read_job_log(path)
        assert logged.job_id == "run-7"
        assert logged.platform == "GraphMat"
        assert logged.algorithm == "pr"
        assert len(logged.events) == len(job.events)

    def test_archive_from_log_matches_direct_archive(self, job, tmp_path):
        path = write_job_log(job, tmp_path / "job.log")
        from_log = archive_from_log(path)
        direct = build_archive(job)
        assert from_log.processing_time == pytest.approx(direct.processing_time)
        assert from_log.makespan == pytest.approx(direct.makespan)
        assert [p.name for p in from_log.phases] == [
            p.name for p in direct.phases
        ]

    def test_extra_metadata_survives(self, job, tmp_path):
        path = write_job_log(job, tmp_path / "job.log")
        logged = read_job_log(path)
        load = next(e for e in logged.events if e["phase"] == "load")
        assert "elements" in load

    def test_log_is_greppable_text(self, job, tmp_path):
        path = write_job_log(job, tmp_path / "job.log")
        content = path.read_text()
        assert all(line.startswith("GRANULA ") for line in content.strip().splitlines())
        assert "phase=processing" in content


class TestParsing:
    def test_non_granula_line_rejected(self, tmp_path):
        (tmp_path / "bad.log").write_text("hello world\n")
        with pytest.raises(GraphFormatError, match="not a GRANULA record"):
            read_job_log(tmp_path / "bad.log")

    def test_missing_fields_rejected(self, tmp_path):
        (tmp_path / "bad.log").write_text("GRANULA job=a phase=load\n")
        with pytest.raises(GraphFormatError, match="missing fields"):
            read_job_log(tmp_path / "bad.log")

    def test_mixed_jobs_rejected(self, tmp_path):
        lines = (
            "GRANULA job=a platform=X algorithm=bfs dataset=D "
            "phase=load start=0.0 end=1.0\n"
            "GRANULA job=b platform=X algorithm=bfs dataset=D "
            "phase=processing start=1.0 end=2.0\n"
        )
        (tmp_path / "bad.log").write_text(lines)
        with pytest.raises(GraphFormatError, match="mixed job ids"):
            read_job_log(tmp_path / "bad.log")

    def test_empty_log_rejected(self, tmp_path):
        (tmp_path / "empty.log").write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no GRANULA records"):
            read_job_log(tmp_path / "empty.log")

    def test_comments_and_blanks_skipped(self, tmp_path):
        lines = (
            "# header\n\n"
            "GRANULA job=a platform=X algorithm=bfs dataset=D "
            "phase=processing start=0.0 end=2.5\n"
        )
        (tmp_path / "ok.log").write_text(lines)
        logged = read_job_log(tmp_path / "ok.log")
        assert logged.events[0]["end"] == 2.5

    def test_quoted_values(self, tmp_path):
        lines = (
            'GRANULA job=a platform="PGX.D" algorithm=bfs dataset="my graph" '
            "phase=processing start=0.0 end=1.0\n"
        )
        (tmp_path / "q.log").write_text(lines)
        logged = read_job_log(tmp_path / "q.log")
        assert logged.dataset == "my graph"


class TestMeasuredChildrenRoundTrip:
    @pytest.fixture
    def reference_job(self):
        driver = create_driver("pythonref")
        handle = driver.upload(erdos_renyi(50, 0.1, seed=2, name="mini"))
        return driver.execute(handle, "pr")

    def test_children_survive(self, reference_job, tmp_path):
        path = write_job_log(reference_job, tmp_path / "job.log")
        logged = read_job_log(path)
        load = next(e for e in logged.events if e["phase"] == "load")
        names = [c["phase"] for c in load["children"]]
        assert names == ["out-csr", "in-csr"]
        original = next(
            e for e in reference_job.events if e["phase"] == "load"
        )
        assert load["children"] == original["children"]

    def test_child_lines_reference_parent(self, reference_job, tmp_path):
        path = write_job_log(reference_job, tmp_path / "job.log")
        content = path.read_text()
        assert "parent=load" in content
        assert "parent=processing" in content

    def test_orphan_child_rejected(self, tmp_path):
        lines = (
            "GRANULA job=a platform=X algorithm=bfs dataset=D "
            "phase=kernel start=0.0 end=1.0 parent=processing\n"
        )
        (tmp_path / "bad.log").write_text(lines)
        with pytest.raises(GraphFormatError, match="not seen yet"):
            read_job_log(tmp_path / "bad.log")


class TestSpanLog:
    def _spans(self):
        from repro.trace import FakeClock, Tracer

        tracer = Tracer(clock=FakeClock(start=0.5, tick=1 / 3), process="w")
        with tracer.span("task", job="execute:G22:bfs"):
            with tracer.span("kernel"):
                pass
        tracer.counter("cache.miss", 2.0)
        return tracer.finished_spans(), tracer.counters

    def test_lossless_roundtrip(self, tmp_path):
        spans, counters = self._spans()
        path = write_span_log(spans, tmp_path / "spans.log", counters=counters)
        read_spans, read_counters = read_span_log(path)
        assert [s.as_dict() for s in read_spans] == [
            s.as_dict() for s in spans
        ]
        assert read_counters == counters

    def test_lines_are_prefixed_text(self, tmp_path):
        spans, counters = self._spans()
        path = write_span_log(spans, tmp_path / "spans.log", counters=counters)
        for line in path.read_text().strip().splitlines():
            assert line.startswith(("GRANULA-SPAN ", "GRANULA-COUNTER "))

    def test_unknown_line_rejected(self, tmp_path):
        (tmp_path / "bad.log").write_text("SPAN {}\n")
        with pytest.raises(GraphFormatError, match="not a GRANULA-SPAN"):
            read_span_log(tmp_path / "bad.log")
