"""Documentation health checks."""

import inspect
import re
from pathlib import Path

import pytest

import repro

ROOT = Path(repro.__file__).resolve().parent.parent.parent


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/architecture.md", "docs/calibration.md", "docs/extending.md",
         "docs/lint.md", "docs/runtime.md", "docs/robustness.md",
         "docs/observability.md"],
    )
    def test_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000, f"{name} looks stubby"

    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "LDBC Graphalytics" in text
        assert "VLDB 2016" in text

    def test_experiments_covers_all_artifacts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table 1", "Table 2", "Table 5", "Table 6", "Table 8",
            "Table 10", "Table 11", "Table 12",
            "Figure 2", "Figure 4", "Figure 5", "Figure 7", "Figure 8",
            "Figure 9", "Figure 10",
        ):
            assert artifact in text, f"EXPERIMENTS.md missing {artifact}"

    def test_readme_quickstart_imports_work(self):
        # The README quickstart references these names; they must exist.
        assert hasattr(repro, "datagen")
        assert hasattr(repro, "BenchmarkRunner")
        assert hasattr(repro, "breadth_first_search")


def _public_members(module):
    for name in getattr(module, "__all__", []):
        yield name, getattr(module, name)


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.graph",
            "repro.graph.graph",
            "repro.graph.builder",
            "repro.graph.io",
            "repro.graph.stats",
            "repro.graph.properties",
            "repro.algorithms",
            "repro.algorithms.validation",
            "repro.algorithms.registry",
            "repro.algorithms.extras",
            "repro.algorithms.variants",
            "repro.datagen",
            "repro.datagen.generator",
            "repro.datagen.flow",
            "repro.engines",
            "repro.engines.pregel",
            "repro.engines.gas",
            "repro.engines.spmv",
            "repro.platforms",
            "repro.platforms.base",
            "repro.platforms.model",
            "repro.platforms.partitioning",
            "repro.harness",
            "repro.harness.experiments",
            "repro.harness.runner",
            "repro.harness.renewal",
            "repro.granula",
            "repro.trace",
            "repro.trace.clock",
            "repro.trace.tracer",
            "repro.trace.merge",
            "repro.cli",
        ],
    )
    def test_module_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, module_name

    def test_public_classes_and_functions_documented(self):
        import importlib

        undocumented = []
        for module_name in (
            "repro.graph.graph",
            "repro.algorithms.registry",
            "repro.platforms.base",
            "repro.platforms.model",
            "repro.harness.runner",
            "repro.granula.archiver",
        ):
            module = importlib.import_module(module_name)
            for name, member in _public_members(module):
                if inspect.isclass(member) or inspect.isfunction(member):
                    if not (member.__doc__ or "").strip():
                        undocumented.append(f"{module_name}.{name}")
        assert not undocumented, undocumented

    def test_paper_section_references_resolve(self):
        # Doc comments cite paper sections like §4.6 or "Table 10"; spot
        # check that the major calibration modules carry citations.
        for module_name in (
            "repro/platforms/giraph.py",
            "repro/platforms/pgxd.py",
            "repro/datagen/flow.py",
        ):
            text = (ROOT / "src" / module_name).read_text()
            assert re.search(r"Table \d+|§\d\.\d", text), module_name
