"""Tests for graph downscaling (edge sampling, forest fire)."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.datagen.graph500 import graph500
from repro.graph.generators import erdos_renyi
from repro.graph.sampling import sample_edges, sample_forest_fire
from repro.graph.stats import degree_skewness


@pytest.fixture(scope="module")
def big():
    return graph500(10, edgefactor=8, seed=1)


class TestSampleEdges:
    def test_edge_count(self, big):
        sampled = sample_edges(big, 0.25, seed=2)
        assert sampled.num_edges == round(0.25 * big.num_edges)

    def test_full_fraction_keeps_everything_with_edges(self, big):
        sampled = sample_edges(big, 1.0, seed=2)
        assert sampled.num_edges == big.num_edges
        assert sampled.num_vertices == big.num_vertices  # no isolated in g500

    def test_vertex_ids_preserved(self, big):
        sampled = sample_edges(big, 0.3, seed=2)
        assert set(sampled.vertex_ids.tolist()) <= set(big.vertex_ids.tolist())

    def test_weights_carried(self):
        g = erdos_renyi(60, 0.2, weighted=True, seed=3)
        sampled = sample_edges(g, 0.5, seed=3)
        assert sampled.is_weighted
        original = {}
        for k in range(g.num_edges):
            key = (g.id_of(int(g.edge_src[k])), g.id_of(int(g.edge_dst[k])))
            original[key] = float(g.edge_weights[k])
        for k in range(sampled.num_edges):
            key = (
                sampled.id_of(int(sampled.edge_src[k])),
                sampled.id_of(int(sampled.edge_dst[k])),
            )
            assert original[key] == pytest.approx(float(sampled.edge_weights[k]))

    def test_directedness_preserved(self):
        g = erdos_renyi(60, 0.1, directed=True, seed=4)
        assert sample_edges(g, 0.5, seed=1).directed

    def test_deterministic(self, big):
        a = sample_edges(big, 0.2, seed=5)
        b = sample_edges(big, 0.2, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_fraction(self, big):
        with pytest.raises(GenerationError):
            sample_edges(big, 0.0)

    def test_empty_graph_rejected(self):
        from repro.graph.graph import Graph

        empty = Graph.from_edges([], directed=False, vertices=[0])
        with pytest.raises(GenerationError):
            sample_edges(empty, 0.5)


class TestForestFire:
    def test_target_size_reached(self, big):
        sampled = sample_forest_fire(big, 120, seed=6)
        assert sampled.num_vertices == 120

    def test_target_capped_at_graph_size(self):
        g = erdos_renyi(30, 0.2, seed=7)
        sampled = sample_forest_fire(g, 500, seed=7)
        assert sampled.num_vertices == 30

    def test_induced_subgraph(self, big):
        sampled = sample_forest_fire(big, 100, seed=8)
        kept = set(int(v) for v in sampled.vertex_ids)
        for s, d in sampled.edges():
            assert s in kept and d in kept
            assert big.has_edge(big.index_of(s), big.index_of(d))

    def test_preserves_skew_better_than_edge_sampling(self, big):
        # The forest-fire claim: heavy tails survive strong reductions.
        fire = sample_forest_fire(big, 120, seed=9)
        skew_fire = degree_skewness(fire.degrees())
        assert skew_fire > 1.0  # still clearly heavy-tailed

    def test_deterministic(self, big):
        a = sample_forest_fire(big, 80, seed=10)
        b = sample_forest_fire(big, 80, seed=10)
        assert np.array_equal(a.vertex_ids, b.vertex_ids)

    def test_invalid_parameters(self, big):
        with pytest.raises(GenerationError):
            sample_forest_fire(big, 0)
        with pytest.raises(GenerationError):
            sample_forest_fire(big, 10, forward_probability=1.0)
