"""Tests for property tables (§2.2.1 optional vertex/edge properties)."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.generators import erdos_renyi
from repro.graph.properties import PropertyTable, person_properties


class TestConstruction:
    def test_keys_sorted(self):
        table = PropertyTable([5, 1, 9])
        assert table.keys.tolist() == [1, 5, 9]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            PropertyTable([1, 1, 2])

    def test_for_graph(self, er_undirected):
        table = PropertyTable.for_graph(er_undirected)
        assert len(table) == er_undirected.num_vertices

    def test_keys_read_only(self):
        table = PropertyTable([1, 2])
        with pytest.raises(ValueError):
            table.keys[0] = 9


class TestColumns:
    def test_set_and_get(self):
        table = PropertyTable([10, 20]).set_column("ts", [100, 200])
        assert table.get(10, "ts") == 100
        assert table.get(20, "ts") == 200

    def test_column_names(self):
        table = PropertyTable([1]).set_column("b", [0]).set_column("a", [0])
        assert table.column_names() == ["a", "b"]
        assert "a" in table and "c" not in table

    def test_wrong_length_rejected(self):
        with pytest.raises(GraphFormatError, match="values for"):
            PropertyTable([1, 2]).set_column("x", [1])

    def test_unknown_column(self):
        with pytest.raises(GraphFormatError, match="unknown property"):
            PropertyTable([1]).column("nope")

    def test_unknown_key(self):
        table = PropertyTable([1]).set_column("x", [7])
        with pytest.raises(GraphFormatError, match="unknown key"):
            table.get(2, "x")

    def test_column_is_copied(self):
        source = np.array([1, 2])
        table = PropertyTable([1, 2]).set_column("x", source)
        source[0] = 99
        assert table.get(1, "x") == 1


class TestAlignment:
    def test_aligned_with_graph(self):
        graph = erdos_renyi(10, 0.3, seed=1)
        table = PropertyTable.for_graph(graph)
        table.set_column("double_id", [2 * int(k) for k in table.keys])
        aligned = table.aligned_with(graph, "double_id")
        for idx in range(graph.num_vertices):
            assert aligned[idx] == 2 * graph.id_of(idx)

    def test_missing_vertex_rejected(self):
        graph = erdos_renyi(10, 0.3, seed=1)
        table = PropertyTable([0, 1]).set_column("x", [1, 2])
        with pytest.raises(GraphFormatError, match="missing from"):
            table.aligned_with(graph, "x")


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        table = PropertyTable([3, 7]).set_column("label", [10, 20])
        path = table.save(tmp_path / "props.json")
        loaded = PropertyTable.load(path)
        assert loaded.keys.tolist() == [3, 7]
        assert loaded.get(7, "label") == 20


class TestPersonProperties:
    def test_columns_present(self):
        table = person_properties(50, seed=1)
        assert table.column_names() == ["country", "interest", "university"]
        assert len(table) == 50

    def test_matches_person_generation(self):
        from repro.datagen.persons import generate_persons

        table = person_properties(30, seed=2)
        for person in generate_persons(30, seed=2):
            assert table.get(person.person_id, "country") == person.country
            assert table.get(person.person_id, "interest") == person.interest

    def test_aligns_with_datagen_graph(self):
        from repro.datagen.generator import generate

        graph = generate(40, seed=3)
        table = person_properties(40, seed=3)
        countries = table.aligned_with(graph, "country")
        assert len(countries) == 40
