"""Tests for the CSR-backed Graph data model."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.generators import complete_graph, path_graph


class TestConstruction:
    def test_from_edges_directed(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        assert g.directed
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_undirected(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=False)
        assert not g.directed
        assert g.num_edges == 2

    def test_from_edges_with_weights(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True, weights=[0.5, 1.5])
        assert g.is_weighted
        assert np.allclose(sorted(g.edge_weights), [0.5, 1.5])

    def test_isolated_vertices_via_vertices_arg(self):
        g = Graph.from_edges([(0, 1)], directed=False, vertices=[0, 1, 7])
        assert g.num_vertices == 3
        assert g.has_vertex(7)
        assert len(g.out_neighbors(g.index_of(7))) == 0

    def test_sparse_vertex_ids(self):
        g = Graph.from_edges([(100, 2000), (2000, 30000)], directed=True)
        assert g.num_vertices == 3
        assert sorted(g.vertex_ids.tolist()) == [100, 2000, 30000]

    def test_duplicate_vertex_ids_rejected(self):
        with pytest.raises(GraphFormatError, match="duplicate vertex"):
            Graph(
                vertex_ids=np.array([1, 1]),
                src=np.array([0]),
                dst=np.array([1]),
                directed=True,
            )

    def test_mismatched_edge_arrays_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(
                vertex_ids=np.array([0, 1]),
                src=np.array([0, 1]),
                dst=np.array([1]),
                directed=True,
            )

    def test_mismatched_weight_length_rejected(self):
        with pytest.raises(GraphFormatError):
            Graph(
                vertex_ids=np.array([0, 1]),
                src=np.array([0]),
                dst=np.array([1]),
                directed=True,
                weights=np.array([1.0, 2.0]),
            )


class TestIdentity:
    def test_scale_small(self):
        g = path_graph(5)  # 5 vertices + 4 edges = 9 elements
        assert g.scale == pytest.approx(1.0)

    def test_scale_empty_vertexless(self):
        g = Graph.from_edges([], directed=True, vertices=[0])
        assert g.scale == 0.0

    def test_repr_mentions_name_and_counts(self):
        g = path_graph(5)
        text = repr(g)
        assert "path-5" in text
        assert "|V|=5" in text

    def test_name_default_empty(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        assert g.name == ""


class TestIndexMapping:
    def test_roundtrip(self, er_undirected):
        for idx in range(er_undirected.num_vertices):
            assert er_undirected.index_of(er_undirected.id_of(idx)) == idx

    def test_unknown_vertex_raises(self, path5):
        with pytest.raises(GraphFormatError, match="unknown vertex"):
            path5.index_of(999)

    def test_has_vertex(self, path5):
        assert path5.has_vertex(0)
        assert not path5.has_vertex(99)

    def test_vertex_ids_read_only(self, path5):
        with pytest.raises(ValueError):
            path5.vertex_ids[0] = 42


class TestAdjacency:
    def test_out_neighbors_sorted(self, er_directed):
        for v in range(er_directed.num_vertices):
            nb = er_directed.out_neighbors(v)
            assert np.all(np.diff(nb) > 0)

    def test_in_out_consistency_directed(self, er_directed):
        # u in out(v)  <=>  v in in(u)
        for v in range(er_directed.num_vertices):
            for u in er_directed.out_neighbors(v):
                assert v in er_directed.in_neighbors(int(u))

    def test_undirected_symmetry(self, er_undirected):
        for v in range(er_undirected.num_vertices):
            for u in er_undirected.out_neighbors(v):
                assert v in er_undirected.out_neighbors(int(u))

    def test_undirected_in_is_out(self, er_undirected):
        assert er_undirected.in_indptr is er_undirected.out_indptr
        assert er_undirected.in_indices is er_undirected.out_indices

    def test_degree_sums(self, er_directed):
        assert er_directed.out_degrees().sum() == er_directed.num_edges
        assert er_directed.in_degrees().sum() == er_directed.num_edges

    def test_undirected_degree_sum_is_twice_edges(self, er_undirected):
        assert er_undirected.out_degrees().sum() == 2 * er_undirected.num_edges

    def test_total_degrees_directed(self, er_directed):
        expected = er_directed.out_degrees() + er_directed.in_degrees()
        assert np.array_equal(er_directed.degrees(), expected)

    def test_has_edge(self, path5):
        assert path5.has_edge(path5.index_of(0), path5.index_of(1))
        assert not path5.has_edge(path5.index_of(0), path5.index_of(3))

    def test_has_edge_directed_one_way(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        assert g.has_edge(g.index_of(0), g.index_of(1))
        assert not g.has_edge(g.index_of(1), g.index_of(0))

    def test_out_edges_weights_aligned(self, er_weighted):
        nbrs, weights = er_weighted.out_edges(0)
        assert len(nbrs) == len(weights)

    def test_csr_weights_match_edge_list(self, er_weighted):
        # Every CSR slot weight must equal the weight of its logical edge.
        g = er_weighted
        lookup = {}
        for k in range(g.num_edges):
            key = (int(g.edge_src[k]), int(g.edge_dst[k]))
            lookup[key] = float(g.edge_weights[k])
            lookup[key[::-1]] = float(g.edge_weights[k])
        for v in range(g.num_vertices):
            nbrs, weights = g.out_edges(v)
            for u, w in zip(nbrs, weights):
                assert lookup[(v, int(u))] == pytest.approx(float(w))


class TestEdgesIterator:
    def test_yields_external_ids(self):
        g = Graph.from_edges([(100, 200)], directed=True)
        assert list(g.edges()) == [(100, 200)]

    def test_count(self, er_undirected):
        assert len(list(er_undirected.edges())) == er_undirected.num_edges


class TestToUndirected:
    def test_collapses_reciprocal_edges(self):
        g = Graph.from_edges([(0, 1), (1, 0), (1, 2)], directed=True)
        u = g.to_undirected()
        assert not u.directed
        assert u.num_edges == 2

    def test_undirected_is_identity(self, er_undirected):
        assert er_undirected.to_undirected() is er_undirected

    def test_preserves_vertices(self):
        g = Graph.from_edges([(0, 1)], directed=True, vertices=[0, 1, 5])
        assert g.to_undirected().num_vertices == 3


class TestSubgraph:
    def test_induced_edges(self, k4):
        sub = k4.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # triangle

    def test_drops_external_edges(self, path5):
        sub = path5.subgraph([path5.index_of(0), path5.index_of(4)])
        assert sub.num_edges == 0

    def test_keeps_weights(self, er_weighted):
        idx = list(range(30))
        sub = er_weighted.subgraph(idx)
        assert sub.is_weighted

    def test_complete_subgraph_of_complete(self):
        sub = complete_graph(6).subgraph(range(4))
        assert sub.num_edges == 6
