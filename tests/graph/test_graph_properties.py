"""Property-based tests (hypothesis) for the graph substrate invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.io import read_graph, write_graph

from tests.algorithms.test_properties import random_graphs


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_csr_consistency(graph):
    """CSR arrays must exactly encode the logical edge list."""
    # Reconstruct directed edge pairs from the out-CSR.
    pairs = set()
    for v in range(graph.num_vertices):
        for u in graph.out_neighbors(v):
            pairs.add((v, int(u)))
    expected = set()
    for s, d in zip(graph.edge_src, graph.edge_dst):
        expected.add((int(s), int(d)))
        if not graph.directed:
            expected.add((int(d), int(s)))
    assert pairs == expected


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_in_csr_is_transpose_of_out_csr(graph):
    forward = set()
    for v in range(graph.num_vertices):
        for u in graph.out_neighbors(v):
            forward.add((v, int(u)))
    backward = set()
    for v in range(graph.num_vertices):
        for u in graph.in_neighbors(v):
            backward.add((int(u), v))
    assert forward == backward


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_adjacency_sorted_and_loop_free(graph):
    for v in range(graph.num_vertices):
        nbrs = graph.out_neighbors(v)
        assert np.all(np.diff(nbrs) > 0)  # sorted, duplicate-free
        assert v not in nbrs              # no self-loops


@settings(max_examples=50, deadline=None)
@given(random_graphs())
def test_degree_identities(graph):
    if graph.directed:
        assert graph.out_degrees().sum() == graph.num_edges
        assert graph.in_degrees().sum() == graph.num_edges
    else:
        assert graph.out_degrees().sum() == 2 * graph.num_edges
    assert graph.degrees().sum() == 2 * graph.num_edges


@settings(max_examples=30, deadline=None)
@given(random_graphs(weighted=True))
def test_csr_weight_alignment(graph):
    """Every CSR slot's weight equals its logical edge's weight."""
    lookup = {}
    for k in range(graph.num_edges):
        key = (int(graph.edge_src[k]), int(graph.edge_dst[k]))
        lookup[key] = float(graph.edge_weights[k])
        if not graph.directed:
            lookup[(key[1], key[0])] = float(graph.edge_weights[k])
    for v in range(graph.num_vertices):
        nbrs, weights = graph.out_edges(v)
        for u, w in zip(nbrs, weights):
            assert lookup[(v, int(u))] == float(w)


@settings(max_examples=25, deadline=None)
@given(random_graphs(weighted=True))
def test_evl_roundtrip_property(graph):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        write_graph(graph, Path(tmp) / "g")
        reloaded = read_graph(
            Path(tmp) / "g", directed=graph.directed, weighted=True
        )
        assert reloaded.num_vertices == graph.num_vertices
        assert reloaded.num_edges == graph.num_edges
        assert sorted(reloaded.edges()) == sorted(graph.edges())


@settings(max_examples=40, deadline=None)
@given(random_graphs(directed=True))
def test_to_undirected_properties(graph):
    undirected = graph.to_undirected()
    assert not undirected.directed
    assert undirected.num_vertices == graph.num_vertices
    # Edge count: unordered pairs of the directed edge set.
    pairs = {
        (min(int(s), int(d)), max(int(s), int(d)))
        for s, d in zip(graph.edge_src, graph.edge_dst)
    }
    assert undirected.num_edges == len(pairs)
    # Adjacency preserved.
    for a, b in pairs:
        assert undirected.has_edge(a, b)


@settings(max_examples=40, deadline=None)
@given(random_graphs(), st.integers(min_value=1, max_value=8))
def test_subgraph_properties(graph, keep):
    keep = min(keep, graph.num_vertices)
    indices = list(range(keep))
    sub = graph.subgraph(indices)
    assert sub.num_vertices == keep
    kept_ids = {graph.id_of(i) for i in indices}
    for s, d in sub.edges():
        assert s in kept_ids and d in kept_ids
    # Every original edge among kept vertices survives.
    survived = {(min(s, d), max(s, d)) for s, d in sub.edges()}
    for s, d in graph.edges():
        if s in kept_ids and d in kept_ids:
            assert (min(s, d), max(s, d)) in survived


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=40, unique=True))
def test_builder_vertex_set_roundtrip(ids):
    graph = GraphBuilder().add_vertices(ids).build()
    assert sorted(graph.vertex_ids.tolist()) == sorted(ids)
    for vid in ids:
        assert graph.id_of(graph.index_of(vid)) == vid
