"""CSR construction oracle.

The naive per-vertex CSR builder (quadratic-ish: a Python loop sorting
each adjacency list) used to live in production code as ``_build_csr``;
it now exists only here, as the obviously-correct oracle that the
vectorized ``_build_csr_fast`` must match bit for bit on random graphs.
"""

from typing import Optional, Tuple

import numpy as np
import pytest

from repro.graph.graph import Graph, _build_csr_fast


def _build_csr_oracle(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """The retired slow builder: bucket by source, then sort each list."""
    degree = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degree, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    indices = dst[order].astype(np.int64, copy=False)
    w = weights[order].copy() if weights is not None else None
    for v in range(n):
        lo, hi = indptr[v], indptr[v + 1]
        if hi - lo > 1:
            sub = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][sub]
            if w is not None:
                w[lo:hi] = w[lo:hi][sub]
    return indptr, indices, w


def _random_edges(rng, n, m, *, weighted):
    """m unique non-self-loop edges over n vertices (directed pairs)."""
    seen = set()
    src, dst = [], []
    while len(src) < m:
        s = int(rng.integers(0, n))
        d = int(rng.integers(0, n))
        if s == d or (s, d) in seen:
            continue
        seen.add((s, d))
        src.append(s)
        dst.append(d)
    weights = rng.random(m) if weighted else None
    return (
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        weights,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("weighted", [False, True])
def test_fast_builder_matches_oracle_on_random_graphs(seed, weighted):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 60))
    max_edges = n * (n - 1)
    m = int(rng.integers(1, min(400, max_edges)))
    src, dst, weights = _random_edges(rng, n, m, weighted=weighted)

    fast = _build_csr_fast(n, src, dst, weights)
    slow = _build_csr_oracle(n, src, dst, weights)

    np.testing.assert_array_equal(fast[0], slow[0])
    np.testing.assert_array_equal(fast[1], slow[1])
    if weighted:
        np.testing.assert_array_equal(fast[2], slow[2])
    else:
        assert fast[2] is None and slow[2] is None


def test_fast_builder_handles_empty_and_isolated_vertices():
    n = 7
    src = np.asarray([], dtype=np.int64)
    dst = np.asarray([], dtype=np.int64)
    fast = _build_csr_fast(n, src, dst, None)
    slow = _build_csr_oracle(n, src, dst, None)
    np.testing.assert_array_equal(fast[0], slow[0])
    np.testing.assert_array_equal(fast[1], slow[1])
    assert fast[0][-1] == 0


def test_graph_adjacency_is_sorted_per_vertex():
    # The public consequence of the CSR contract both builders share.
    rng = np.random.default_rng(7)
    src, dst, weights = _random_edges(rng, 25, 120, weighted=True)
    graph = Graph(
        vertex_ids=np.arange(25),
        src=src,
        dst=dst,
        directed=True,
        weights=weights,
    )
    for v in range(25):
        neighbors = graph.out_neighbors(v)
        assert np.all(np.diff(neighbors) > 0)
