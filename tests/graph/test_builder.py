"""Tests for GraphBuilder and the Graphalytics data-model constraints."""

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.builder import GraphBuilder


class TestVertices:
    def test_add_vertex(self):
        b = GraphBuilder()
        b.add_vertex(3)
        assert b.num_vertices == 1

    def test_add_vertex_idempotent(self):
        b = GraphBuilder()
        b.add_vertex(3).add_vertex(3)
        assert b.num_vertices == 1

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphFormatError, match="non-negative"):
            GraphBuilder().add_vertex(-1)

    def test_add_vertices_bulk(self):
        b = GraphBuilder().add_vertices([1, 2, 3])
        assert b.num_vertices == 3

    def test_edge_registers_endpoints(self):
        b = GraphBuilder().add_edge(5, 9)
        assert b.num_vertices == 2


class TestEdgeValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphFormatError, match="self-loop"):
            GraphBuilder().add_edge(1, 1)

    def test_self_loop_allowed_when_opted_in(self):
        b = GraphBuilder(allow_self_loops=True)
        b.add_edge(1, 1)
        assert b.num_edges == 1

    def test_duplicate_directed_rejected(self):
        b = GraphBuilder(directed=True).add_edge(0, 1)
        with pytest.raises(GraphFormatError, match="duplicate"):
            b.add_edge(0, 1)

    def test_reverse_directed_edge_is_distinct(self):
        b = GraphBuilder(directed=True).add_edge(0, 1).add_edge(1, 0)
        assert b.num_edges == 2

    def test_reverse_undirected_edge_is_duplicate(self):
        b = GraphBuilder(directed=False).add_edge(0, 1)
        with pytest.raises(GraphFormatError, match="duplicate"):
            b.add_edge(1, 0)

    def test_dedup_mode_drops_duplicates(self):
        b = GraphBuilder(directed=False, dedup=True)
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1)
        assert b.num_edges == 1

    def test_missing_weight_rejected(self):
        with pytest.raises(GraphFormatError, match="missing a weight"):
            GraphBuilder(weighted=True).add_edge(0, 1)

    def test_unexpected_weight_rejected(self):
        with pytest.raises(GraphFormatError, match="unweighted"):
            GraphBuilder(weighted=False).add_edge(0, 1, 2.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphFormatError, match="invalid weight"):
            GraphBuilder(weighted=True).add_edge(0, 1, -3.0)

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphFormatError, match="invalid weight"):
            GraphBuilder(weighted=True).add_edge(0, 1, float("nan"))

    def test_has_edge(self):
        b = GraphBuilder(directed=False).add_edge(0, 1)
        assert b.has_edge(0, 1)
        assert b.has_edge(1, 0)
        assert not b.has_edge(0, 2)


class TestBuild:
    def test_vertex_ids_sorted(self):
        g = GraphBuilder().add_vertices([9, 3, 7]).build()
        assert list(g.vertex_ids) == [3, 7, 9]

    def test_name_applied(self):
        g = GraphBuilder().add_vertex(0).build(name="tiny")
        assert g.name == "tiny"

    def test_weights_carried_through(self):
        g = GraphBuilder(weighted=True).add_edge(0, 1, 2.5).build()
        assert g.is_weighted
        assert g.edge_weights[0] == pytest.approx(2.5)

    def test_bulk_add_edges_with_weights(self):
        b = GraphBuilder(directed=True, weighted=True)
        b.add_edges([(0, 1), (1, 2)], weights=[1.0, 2.0])
        g = b.build()
        assert g.num_edges == 2

    def test_properties_exposed(self):
        b = GraphBuilder(directed=True, weighted=True)
        assert b.directed
        assert b.weighted
