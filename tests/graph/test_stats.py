"""Tests for structural graph statistics."""

import numpy as np
import pytest

from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.stats import compute_statistics, degree_skewness, graph_scale


class TestGraphScale:
    def test_paper_example_d300(self):
        # datagen-300: 4.35M vertices + 304M edges -> scale 8.5 (Table 4)
        assert graph_scale(4_350_000, 304_000_000) == 8.5

    def test_paper_example_wiki_talk(self):
        # wiki-talk: 2.39M + 5.02M -> scale 6.9 (Table 3)
        assert graph_scale(2_390_000, 5_020_000) == 6.9

    def test_rounding_one_decimal(self):
        assert graph_scale(0, 1000) == 3.0

    def test_empty(self):
        assert graph_scale(0, 0) == 0.0

    def test_monotone(self):
        assert graph_scale(10, 10) < graph_scale(1000, 1000)


class TestDegreeSkewness:
    def test_regular_graph_zero(self):
        assert degree_skewness(np.array([4, 4, 4, 4])) == 0.0

    def test_hub_positive(self):
        assert degree_skewness(np.array([1, 1, 1, 1, 100])) > 0

    def test_empty(self):
        assert degree_skewness(np.array([])) == 0.0


class TestComputeStatistics:
    def test_complete_graph(self):
        st = compute_statistics(complete_graph(5))
        assert st.num_vertices == 5
        assert st.num_edges == 10
        assert st.density == pytest.approx(1.0)
        assert st.mean_clustering_coefficient == pytest.approx(1.0)
        assert st.num_components == 1
        assert st.largest_component_fraction == pytest.approx(1.0)

    def test_star_no_clustering(self):
        st = compute_statistics(star_graph(6))
        assert st.mean_clustering_coefficient == 0.0
        assert st.max_degree == 6

    def test_path_components(self):
        st = compute_statistics(path_graph(4))
        assert st.num_components == 1
        assert st.mean_degree == pytest.approx(1.5)

    def test_two_components(self, two_triangles):
        st = compute_statistics(two_triangles)
        assert st.num_components == 2
        assert st.largest_component_fraction == pytest.approx(0.5)

    def test_as_dict_keys(self, path5):
        d = compute_statistics(path5).as_dict()
        assert "scale" in d and "density" in d

    def test_matches_networkx_clustering(self, er_undirected, nx_converter):
        import networkx as nx

        st = compute_statistics(er_undirected)
        expected = nx.average_clustering(nx_converter(er_undirected))
        assert st.mean_clustering_coefficient == pytest.approx(expected, abs=1e-12)

    def test_matches_networkx_components(self, er_undirected, nx_converter):
        import networkx as nx

        st = compute_statistics(er_undirected)
        expected = nx.number_connected_components(nx_converter(er_undirected))
        assert st.num_components == expected
