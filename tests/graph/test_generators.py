"""Tests for the small deterministic graph generators."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.graph.generators import (
    binary_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)


class TestStructured:
    def test_path_counts(self):
        g = path_graph(10)
        assert g.num_vertices == 10
        assert g.num_edges == 9

    def test_path_single_vertex(self):
        g = path_graph(1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_cycle_counts(self):
        g = cycle_graph(7)
        assert g.num_vertices == 7
        assert g.num_edges == 7

    def test_cycle_minimum_size(self):
        with pytest.raises(GenerationError):
            cycle_graph(2)

    def test_star_counts(self):
        g = star_graph(5)
        assert g.num_vertices == 6
        assert g.num_edges == 5

    def test_complete_counts(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_complete_directed_counts(self):
        g = complete_graph(4, directed=True)
        assert g.num_edges == 12

    def test_grid_counts(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_binary_tree_counts(self):
        g = binary_tree(3)
        assert g.num_vertices == 15
        assert g.num_edges == 14

    def test_binary_tree_depth_zero(self):
        g = binary_tree(0)
        assert g.num_vertices == 1

    def test_nonpositive_rejected(self):
        with pytest.raises(GenerationError):
            path_graph(0)


class TestErdosRenyi:
    def test_deterministic(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seed_changes_graph(self):
        a = erdos_renyi(50, 0.1, seed=3)
        b = erdos_renyi(50, 0.1, seed=4)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_p_zero_empty(self):
        g = erdos_renyi(20, 0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_vertices == 20

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, seed=1)
        assert g.num_edges == 45

    def test_no_self_loops(self):
        g = erdos_renyi(30, 0.5, directed=True, seed=2)
        assert all(s != d for s, d in g.edges())

    def test_weighted_positive(self):
        g = erdos_renyi(30, 0.3, weighted=True, seed=2)
        assert np.all(g.edge_weights > 0)

    def test_invalid_p(self):
        with pytest.raises(GenerationError):
            erdos_renyi(10, 1.5)

    def test_density_near_p(self):
        g = erdos_renyi(200, 0.10, seed=9)
        density = g.num_edges / (200 * 199 / 2)
        assert density == pytest.approx(0.10, abs=0.02)

    def test_custom_name(self):
        g = erdos_renyi(10, 0.1, name="custom")
        assert g.name == "custom"
