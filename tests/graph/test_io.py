"""Tests for EVL (.v/.e) file I/O."""

import numpy as np
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import parse_edge_line, read_edge_list, read_graph, write_graph


class TestParseEdgeLine:
    def test_unweighted(self):
        assert parse_edge_line("3 5", weighted=False) == (3, 5, None)

    def test_weighted(self):
        src, dst, w = parse_edge_line("3 5 0.25", weighted=True)
        assert (src, dst) == (3, 5)
        assert w == pytest.approx(0.25)

    def test_wrong_field_count(self):
        with pytest.raises(GraphFormatError, match="expected 2 fields"):
            parse_edge_line("3 5 7", weighted=False)

    def test_missing_weight_field(self):
        with pytest.raises(GraphFormatError, match="expected 3 fields"):
            parse_edge_line("3 5", weighted=True)

    def test_non_integer_vertex(self):
        with pytest.raises(GraphFormatError):
            parse_edge_line("a b", weighted=False)


class TestRoundTrip:
    def test_unweighted_directed(self, tmp_path):
        g = erdos_renyi(40, 0.08, directed=True, seed=5)
        write_graph(g, tmp_path / "g")
        rt = read_graph(tmp_path / "g", directed=True)
        assert rt.num_vertices == g.num_vertices
        assert rt.num_edges == g.num_edges
        assert sorted(rt.edges()) == sorted(g.edges())

    def test_weighted_undirected(self, tmp_path):
        g = erdos_renyi(40, 0.08, weighted=True, seed=6)
        write_graph(g, tmp_path / "g")
        rt = read_graph(tmp_path / "g", directed=False, weighted=True)
        assert np.allclose(
            np.sort(rt.edge_weights), np.sort(g.edge_weights)
        )

    def test_weights_exact_repr(self, tmp_path):
        # repr-based serialization round-trips doubles bit-exactly.
        g = Graph.from_edges(
            [(0, 1)], directed=False, weights=[0.1234567890123456789]
        )
        write_graph(g, tmp_path / "g")
        rt = read_graph(tmp_path / "g", directed=False, weighted=True)
        assert rt.edge_weights[0] == g.edge_weights[0]

    def test_isolated_vertices_survive(self, tmp_path):
        g = Graph.from_edges([(0, 1)], directed=False, vertices=[0, 1, 9])
        write_graph(g, tmp_path / "g")
        rt = read_graph(tmp_path / "g", directed=False)
        assert rt.num_vertices == 3
        assert rt.has_vertex(9)

    def test_name_defaults_to_prefix(self, tmp_path):
        g = erdos_renyi(10, 0.3, seed=1)
        write_graph(g, tmp_path / "mygraph")
        rt = read_graph(tmp_path / "mygraph", directed=False)
        assert rt.name == "mygraph"


class TestReadValidation:
    def test_edge_referencing_unknown_vertex(self, tmp_path):
        (tmp_path / "g.v").write_text("0\n1\n")
        (tmp_path / "g.e").write_text("0 5\n")
        with pytest.raises(GraphFormatError, match="missing from"):
            read_graph(tmp_path / "g", directed=True)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        (tmp_path / "g.v").write_text("# vertices\n0\n\n1\n")
        (tmp_path / "g.e").write_text("# edges\n\n0 1\n")
        g = read_graph(tmp_path / "g", directed=False)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_non_integer_vertex_line(self, tmp_path):
        (tmp_path / "g.v").write_text("zero\n")
        (tmp_path / "g.e").write_text("")
        with pytest.raises(GraphFormatError, match="vertex line 1"):
            read_graph(tmp_path / "g", directed=True)

    def test_duplicate_edge_in_file(self, tmp_path):
        (tmp_path / "g.v").write_text("0\n1\n")
        (tmp_path / "g.e").write_text("0 1\n0 1\n")
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_graph(tmp_path / "g", directed=True)

    def test_read_edge_list_standalone(self, tmp_path):
        (tmp_path / "e.e").write_text("0 1\n2 3\n")
        edges, weights = read_edge_list(tmp_path / "e.e")
        assert edges == [(0, 1), (2, 3)]
        assert weights is None
