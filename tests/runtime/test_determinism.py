"""The runtime's determinism contract (ISSUE acceptance criterion).

The full example matrix run with ``workers=1`` and ``workers=N`` must
produce bit-identical results databases (canonical serialization, which
nulls the environment-dependent ``measured_*`` wall-clocks) and
bit-identical rendered reports.

``GRAPHALYTICS_TEST_WORKERS`` overrides the parallel worker count (the
CI runtime leg sets it to 2).
"""

import json
import os

from repro.harness.report import render_report
from repro.harness.runner import BenchmarkRunner
from repro.runtime import RuntimeConfig, example_matrix, execute_matrix

WORKERS = int(os.environ.get("GRAPHALYTICS_TEST_WORKERS", "4"))


class TestSerialParallelEquivalence:
    def test_example_matrix_bit_identical_across_worker_counts(self):
        config = example_matrix()
        serial = execute_matrix(config, RuntimeConfig(workers=1))
        parallel = execute_matrix(config, RuntimeConfig(workers=WORKERS))

        assert serial.lost_jobs == 0
        assert parallel.lost_jobs == 0
        assert serial.job_count == parallel.job_count == 20
        assert (
            serial.database.canonical_json()
            == parallel.database.canonical_json()
        )

    def test_reports_bit_identical_across_worker_counts(self):
        config = example_matrix()
        serial = execute_matrix(config, RuntimeConfig(workers=1))
        parallel = execute_matrix(config, RuntimeConfig(workers=WORKERS))
        # The markdown report only uses modeled values, so it is already
        # bit-identical without any field nulling.
        assert render_report(serial.database) == render_report(
            parallel.database
        )

    def test_runtime_matches_legacy_serial_loop(self):
        config = example_matrix()
        legacy = BenchmarkRunner(config).run()
        runtime = execute_matrix(config, RuntimeConfig(workers=WORKERS))
        assert legacy.canonical_json() == runtime.database.canonical_json()

    def test_row_order_is_the_serial_visit_order(self):
        config = example_matrix()
        result = execute_matrix(config, RuntimeConfig(workers=WORKERS))
        rows = [
            (r.platform, r.dataset, r.algorithm, r.run_index)
            for r in result.database
        ]
        assert rows == sorted(
            rows,
            key=lambda r: (
                [p.lower() for p in config.platforms].index(r[0].lower()),
                config.datasets.index(r[1]),
                config.algorithms.index(r[2]),
                r[3],
            ),
        )


class TestCanonicalJson:
    def test_measured_fields_nulled_but_modeled_kept(self):
        config = example_matrix()
        result = execute_matrix(config, RuntimeConfig(workers=1))
        payload = json.loads(result.database.canonical_json())
        assert payload, "canonical payload is empty"
        for record in payload:
            assert record["measured_processing_seconds"] is None
            assert record["modeled_processing_time"] is not None

    def test_save_still_contains_measured_values(self, tmp_path):
        config = example_matrix()
        result = execute_matrix(config, RuntimeConfig(workers=1))
        path = result.database.save(tmp_path / "db.json")
        saved = json.loads(path.read_text())
        assert any(
            r["measured_processing_seconds"] is not None for r in saved
        )


class TestCacheEffectiveness:
    def test_repeated_datasets_hit_the_cache(self):
        # ISSUE acceptance: a matrix with repeated datasets must show
        # at least one cache hit per repeated dataset.
        config = example_matrix()
        result = execute_matrix(config, RuntimeConfig(workers=WORKERS))
        repeated_datasets = len(config.datasets)
        assert result.cache_stats.hits >= repeated_datasets
        assert result.cache_stats.misses > 0
