"""``workers="auto"`` resolution and the oversubscription cap."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.executor import resolve_workers


class TestAuto:
    def test_auto_resolves_to_available_cpus(self):
        assert resolve_workers("auto", available=8) == 8

    def test_none_is_auto(self):
        assert resolve_workers(None, available=8) == 8

    def test_auto_without_available_uses_host_cpu_count(self):
        # The host always has >= 1 CPU; the exact count varies.
        assert resolve_workers("auto") >= 1

    def test_available_floor_is_one(self):
        assert resolve_workers("auto", available=0) == 1


class TestExplicit:
    def test_within_budget_is_honored(self):
        assert resolve_workers(2, available=8) == 2
        assert resolve_workers(8, available=8) == 8

    def test_numeric_string_is_accepted(self):
        assert resolve_workers("3", available=8) == 3

    def test_oversubscription_is_capped_with_a_warning(self):
        with pytest.warns(RuntimeWarning, match="capping the pool at 2"):
            assert resolve_workers(16, available=2) == 2

    def test_within_budget_emits_no_warning(self, recwarn):
        resolve_workers(2, available=4)
        assert not [w for w in recwarn if w.category is RuntimeWarning]


class TestRejection:
    @pytest.mark.parametrize("bad", ["many", "", 1.5, object()])
    def test_non_integer_requests_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad, available=4)

    @pytest.mark.parametrize("bad", [0, -1, "-3"])
    def test_non_positive_requests_are_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad, available=4)
