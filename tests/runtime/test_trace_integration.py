"""End-to-end tracing through the runtime: trace.jsonl per run.

The tentpole contract: a run started with ``run_dir`` exports a span
tree whose structure is identical between inline and pool execution,
whose invariants hold after cross-process rebasing, and whose job spans
carry the same Tproc/makespan the results database reports.
"""

import os

import pytest

from repro.harness.config import BenchmarkConfig
from repro.runtime import RuntimeConfig, execute_matrix
from repro.trace import (
    FakeClock,
    Tracer,
    read_trace,
    span_paths,
    use_tracer,
    validate_tree,
)

WORKERS = int(os.environ.get("GRAPHALYTICS_TEST_WORKERS", "2"))


def _config(**overrides):
    base = dict(
        platforms=["pythonref"],
        datasets=["G22"],
        algorithms=["bfs", "wcc"],
        repetitions=1,
    )
    base.update(overrides)
    return BenchmarkConfig(**base)


def _run(tmp_path, *, workers, name):
    run_dir = tmp_path / name
    result = execute_matrix(
        _config(), RuntimeConfig(workers=workers), run_dir=run_dir
    )
    assert result.trace_path is not None
    assert result.trace_path == run_dir / "trace.jsonl"
    spans, counters = read_trace(result.trace_path)
    return result, spans, counters


class TestInlineTrace:
    def test_tree_is_valid(self, tmp_path):
        _, spans, _ = _run(tmp_path, workers=1, name="inline")
        assert spans
        assert validate_tree(spans) == []

    def test_expected_structure(self, tmp_path):
        _, spans, _ = _run(tmp_path, workers=1, name="inline")
        paths = span_paths(spans)
        assert "matrix-run" in paths
        assert "matrix-run/execute" in paths
        # Every dispatched attempt nests a task; execute jobs nest the
        # driver's sub-phases under the harness job span.
        assert any(p.endswith("attempt/task/job") for p in paths)
        assert any(p.endswith("job/execute/load/out-csr") for p in paths)
        assert any(p.endswith("job/execute/processing/kernel") for p in paths)

    def test_job_spans_match_database(self, tmp_path):
        result, spans, _ = _run(tmp_path, workers=1, name="inline")
        jobs = {
            (s.attributes["dataset"], s.attributes["algorithm"]): s
            for s in spans
            if s.name == "job"
        }
        assert len(jobs) == len(result.database)
        for row in result.database:
            span = jobs[(row.dataset, row.algorithm)]
            assert span.attributes["tproc"] == row.modeled_processing_time
            assert span.attributes["makespan"] == row.modeled_makespan
            assert span.attributes["status"] == row.status

    def test_counters_cover_runtime_activity(self, tmp_path):
        _, _, counters = _run(tmp_path, workers=1, name="inline")
        assert counters["scheduler.dispatch"] >= 5  # 2 jobs + deps
        assert counters["journal.append"] > 0
        assert counters["journal.fsync"] > 0
        assert counters.get("cache.miss", 0) > 0


class TestPoolTrace:
    def test_worker_spans_rebased_into_attempts(self, tmp_path):
        _, spans, _ = _run(tmp_path, workers=WORKERS, name="pool")
        assert validate_tree(spans) == []
        worker_spans = [s for s in spans if s.process != "main"]
        assert worker_spans  # the pool actually shipped spans back
        attempts = {s.span_id: s for s in spans if s.name == "attempt"}
        rebased_roots = [
            s for s in worker_spans if s.parent_id in attempts
        ]
        assert rebased_roots
        for span in rebased_roots:
            parent = attempts[span.parent_id]
            assert span.start >= parent.start - 1e-9
            assert span.end <= parent.end + 1e-9

    def test_structure_matches_inline(self, tmp_path):
        _, inline_spans, _ = _run(tmp_path, workers=1, name="inline")
        _, pool_spans, _ = _run(tmp_path, workers=WORKERS, name="pool")
        inline_jobs = sorted(
            p for p in span_paths(inline_spans) if p.endswith("/job")
        )
        pool_jobs = sorted(
            p for p in span_paths(pool_spans) if p.endswith("/job")
        )
        assert inline_jobs == pool_jobs

    def test_worker_counters_merged(self, tmp_path):
        _, _, counters = _run(tmp_path, workers=WORKERS, name="pool")
        assert counters.get("cache.miss", 0) > 0  # counted in workers


class TestDeterministicTrace:
    def test_fake_clock_runs_are_bit_identical(self, tmp_path):
        def traced_run(name):
            tracer = Tracer(clock=FakeClock(tick=0.001), process="main")
            with use_tracer(tracer):
                result = execute_matrix(
                    _config(),
                    RuntimeConfig(workers=1),
                    run_dir=tmp_path / name,
                )
            assert result.trace_path is not None
            return result.trace_path.read_text()

        assert traced_run("one") == traced_run("two")

    def test_journal_records_carry_trace_ids(self, tmp_path):
        from repro.runtime.journal import RunJournal

        result, spans, _ = _run(tmp_path, workers=1, name="inline")
        replay = RunJournal.load(tmp_path / "inline")
        dispatches = [
            r for r in replay.records if r.get("type") == "attempt-start"
        ]
        assert dispatches
        span_ids = {s.span_id for s in spans}
        for record in dispatches:
            assert record.get("trace") in span_ids
