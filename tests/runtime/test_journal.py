"""Unit tests for the write-ahead run journal (repro.runtime.journal).

Covers the line codec, torn-tail recovery vs. mid-file corruption,
header validation, the replay indexes, and the job-identity functions
that resume keys on.
"""

import dataclasses
import json
import zlib

import pytest

from repro.harness.config import BenchmarkConfig
from repro.runtime.journal import (
    JOURNAL_VERSION,
    JournalError,
    RunJournal,
    _decode_line,
    _encode_line,
    job_key,
    matrix_hash,
    serial_job_key,
)
from repro.runtime.scheduler import expand_matrix


def small_config(**overrides) -> BenchmarkConfig:
    base = dict(
        platforms=["powergraph"],
        datasets=["R1"],
        algorithms=["bfs", "pr"],
        repetitions=2,
    )
    base.update(overrides)
    return BenchmarkConfig(**base)


HEADER = {"kind": "matrix", "matrix_hash": "abc"}


class TestLineCodec:
    def test_round_trip(self):
        record = {"type": "job-done", "key": "k", "result": {"x": 1.5}}
        assert _decode_line(_encode_line(record)) == record

    def test_missing_newline_rejected(self):
        line = _encode_line({"type": "x"})
        assert _decode_line(line[:-1]) is None

    def test_crc_mismatch_rejected(self):
        line = bytearray(_encode_line({"type": "x", "n": 1}))
        line[-3] ^= 0x01  # flip a payload bit; the CRC no longer matches
        assert _decode_line(bytes(line)) is None

    def test_non_dict_payload_rejected(self):
        payload = json.dumps([1, 2, 3], separators=(",", ":"))
        crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
        assert _decode_line(f"{crc:08x} {payload}\n".encode()) is None


class TestJournalRoundTrip:
    def test_create_append_load(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append({"type": "attempt-start", "key": "a", "seq": 0})
        journal.append_many(
            [
                {"type": "job-done", "key": "a", "seq": 0},
                {"type": "run-complete"},
            ]
        )
        journal.close()

        replay = RunJournal.load(tmp_path)
        assert replay.header["kind"] == "matrix"
        assert replay.header["version"] == JOURNAL_VERSION
        assert [r["type"] for r in replay.records] == [
            "attempt-start", "job-done", "run-complete",
        ]
        assert replay.truncated_bytes == 0
        assert replay.complete

    def test_create_refuses_existing_journal(self, tmp_path):
        RunJournal.create(tmp_path, HEADER).close()
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.create(tmp_path, HEADER)

    def test_load_without_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no journal.jsonl"):
            RunJournal.load(tmp_path)

    def test_open_appends_after_existing_records(self, tmp_path):
        RunJournal.create(tmp_path, HEADER).close()
        with RunJournal.open(tmp_path) as journal:
            journal.append({"type": "job-done", "key": "a"})
        replay = RunJournal.load(tmp_path)
        assert [r["type"] for r in replay.records] == ["job-done"]


class TestRecovery:
    def _journal_with_tail(self, tmp_path, tail: bytes):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append({"type": "job-done", "key": "a"})
        journal.close()
        path = RunJournal.journal_path(tmp_path)
        path.write_bytes(path.read_bytes() + tail)
        return path

    def test_torn_tail_is_truncated(self, tmp_path):
        path = self._journal_with_tail(tmp_path, b'deadbeef {"type":')
        replay = RunJournal.load(tmp_path)
        assert replay.truncated_bytes > 0
        assert [r["type"] for r in replay.records] == ["job-done"]
        # Recovery rewrote the file: a second load sees a clean log.
        assert RunJournal.load(tmp_path).truncated_bytes == 0
        assert b"deadbeef" not in path.read_bytes()

    def test_torn_tail_without_newline_prefix(self, tmp_path):
        # A tear mid-line: the last good record ends, then half a write.
        good = _encode_line({"type": "run-complete"})
        self._journal_with_tail(tmp_path, good[: len(good) // 2])
        replay = RunJournal.load(tmp_path)
        assert replay.truncated_bytes > 0
        assert not replay.complete

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append({"type": "attempt-start", "key": "a"})
        journal.append({"type": "job-done", "key": "a"})
        journal.close()
        path = RunJournal.journal_path(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"00000000 {broken}\n"  # valid lines follow: not a tail
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="corrupt"):
            RunJournal.load(tmp_path)

    def test_missing_header_raises(self, tmp_path):
        path = RunJournal.journal_path(tmp_path)
        journal = RunJournal(path)
        journal.append({"type": "job-done", "key": "a"})
        journal.close()
        with pytest.raises(JournalError, match="run-start"):
            RunJournal.load(tmp_path)

    def test_version_mismatch_raises(self, tmp_path):
        path = RunJournal.journal_path(tmp_path)
        journal = RunJournal(path)
        journal.append({"type": "run-start", "version": 99})
        journal.close()
        with pytest.raises(JournalError, match="version"):
            RunJournal.load(tmp_path)


class TestReplayIndexes:
    def test_indexes_by_record_type(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append_many(
            [
                {"type": "job-scheduled", "key": "a"},
                {"type": "attempt-start", "key": "a", "attempt": 1},
                {"type": "attempt-failed", "key": "a", "attempt": 1},
                {"type": "attempt-start", "key": "a", "attempt": 2},
                {"type": "job-done", "key": "a"},
                {"type": "attempt-start", "key": "b", "attempt": 1},
                {"type": "job-failed", "key": "b"},
            ]
        )
        journal.close()
        replay = RunJournal.load(tmp_path)
        assert set(replay.completed) == {"a"}
        assert replay.attempt_starts == {"a": 2, "b": 1}
        assert len(replay.failed_attempts["a"]) == 1
        assert set(replay.failures) == {"b"}
        assert not replay.complete

    def test_take_serial_is_fifo_per_key(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append_many(
            [
                {"type": "serial-job", "key": "k", "result": {"n": 1}},
                {"type": "serial-job", "key": "k", "result": {"n": 2}},
            ]
        )
        journal.close()
        replay = RunJournal.load(tmp_path)
        assert replay.take_serial("k")["result"] == {"n": 1}
        assert replay.take_serial("k")["result"] == {"n": 2}
        assert replay.take_serial("k") is None
        assert replay.take_serial("unknown") is None


class TestJobIdentity:
    def test_job_key_ignores_matrix_position(self):
        spec = expand_matrix(small_config())[0]
        moved = dataclasses.replace(spec, seq=spec.seq + 100)
        assert job_key(spec) == job_key(moved)

    def test_job_key_depends_on_outcome_inputs(self):
        spec = expand_matrix(small_config())[-1]
        assert job_key(spec) != job_key(
            dataclasses.replace(spec, run_index=spec.run_index + 1)
        )
        assert job_key(spec) != job_key(
            dataclasses.replace(spec, seed=spec.seed + 1)
        )

    def test_matrix_hash_tracks_config_and_jobs(self):
        config = small_config()
        specs = expand_matrix(config)
        assert matrix_hash(config, specs) == matrix_hash(config, specs)
        other = small_config(repetitions=3)
        assert matrix_hash(config, specs) != matrix_hash(
            other, expand_matrix(other)
        )

    def test_serial_key_is_case_insensitive_on_names(self):
        kwargs = dict(machines=1, threads=None, run_index=0, seed=0)
        assert serial_job_key("PowerGraph", "R1", "BFS", **kwargs) == (
            serial_job_key("powergraph", "R1", "bfs", **kwargs)
        )
