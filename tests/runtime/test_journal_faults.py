"""Journal behavior under injected disk faults (the ROB issue's core).

The seeded fault-point plane (:mod:`repro.faults.points`) stands in for
the real failures — full disk, dying device, power cut mid-``write`` —
and these tests pin the journal's contract under each one: ENOSPC
downgrades durability instead of killing the run, a failed fsync drops
the tier exactly once (never retried — the pages may be gone), and a
torn write leaves a log that truncate-to-last-good-line recovery turns
into a bit-identical resume.
"""

from __future__ import annotations

import errno

import pytest

from repro.faults import IoFault, IoFaultPlan, install_io_plan, io_faults
from repro.harness.config import BenchmarkConfig
from repro.runtime import (
    RunJournal,
    RuntimeConfig,
    execute_matrix,
    resume_run,
)

HEADER = {"kind": "matrix", "matrix_hash": "abc"}

SMALL = dict(
    platforms=["powergraph"],
    datasets=["R1"],
    algorithms=["bfs", "pr"],
    repetitions=2,
)


def small_config(**overrides) -> BenchmarkConfig:
    return BenchmarkConfig(**{**SMALL, **overrides})


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    install_io_plan(None)
    yield
    install_io_plan(None)


def plan(*faults, seed=0):
    return IoFaultPlan(list(faults), seed=seed)


class TestEnospcDisablesJournal:
    def test_full_disk_degrades_instead_of_raising(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append({"type": "job-done", "key": "a"})
        with io_faults(
            plan(IoFault(point="journal.append.write", kind="enospc"))
        ):
            with pytest.warns(RuntimeWarning, match="journal-disabled"):
                journal.append({"type": "job-done", "key": "b"})
        assert journal.degraded == ["journal-disabled"]
        assert journal.durable is False
        # Appends after the downgrade are silent no-ops, not errors.
        journal.append({"type": "job-done", "key": "c"})
        journal.close()

        replay = RunJournal.load(tmp_path)
        assert [r.get("key") for r in replay.records] == ["a"]
        assert replay.truncated_bytes == 0  # the prefix stayed parseable

    def test_degrades_only_once(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        with io_faults(
            plan(IoFault(point="journal.append.write", kind="enospc"))
        ):
            with pytest.warns(RuntimeWarning):
                journal.append({"type": "job-done", "key": "a"})
        journal.append({"type": "job-done", "key": "b"})  # no second warning
        assert journal.degraded == ["journal-disabled"]
        journal.close()


class TestFsyncFailureDegradesTier:
    def test_failed_group_commit_downgrades_durability(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        with io_faults(
            plan(IoFault(point="journal.append.fsync", kind="fsync-fail"))
        ):
            with pytest.warns(RuntimeWarning, match="journal-fsync-degraded"):
                # job-failed is a CRITICAL_TYPES record: immediate fsync.
                journal.append({"type": "job-failed", "key": "a"})
        assert journal.degraded == ["journal-fsync-degraded"]
        assert journal.durable is False
        journal.close()

        # The bytes themselves were accepted: nothing is lost on a
        # clean shutdown, only the power-loss guarantee was dropped.
        replay = RunJournal.load(tmp_path)
        assert [r["type"] for r in replay.records] == ["job-failed"]

    def test_fsync_never_retried_after_failure(self, tmp_path):
        # fsyncgate semantics: after one failed fsync the dirty pages
        # may be gone, so the journal must not fsync again and claim
        # durability it cannot have.
        journal = RunJournal.create(tmp_path, HEADER)
        armed = plan(
            IoFault(point="journal.append.fsync", kind="fsync-fail", times=5)
        )
        with io_faults(armed) as active:
            with pytest.warns(RuntimeWarning):
                journal.append({"type": "job-failed", "key": "a"})
            journal.append({"type": "job-failed", "key": "b"})
            journal.sync()
            journal.close()
            # Only the first arrival reached the fsync point at all.
            assert active.injected() == {0: 1}


class TestTornWriteRecovery:
    def test_torn_append_truncates_to_last_good_line(self, tmp_path):
        journal = RunJournal.create(tmp_path, HEADER)
        journal.append({"type": "job-done", "key": "a"})
        with io_faults(
            plan(IoFault(point="journal.append.write", kind="torn-write"))
        ):
            with pytest.raises(OSError) as excinfo:
                journal.append({"type": "job-done", "key": "b"})
        assert excinfo.value.errno == errno.EIO
        journal._handle.close()  # the crash the tear stands in for

        replay = RunJournal.load(tmp_path)
        assert replay.truncated_bytes > 0
        assert [r.get("key") for r in replay.records] == ["a"]
        # Recovery rewrote the log: the second load is clean.
        assert RunJournal.load(tmp_path).truncated_bytes == 0


class TestRunsUnderInjectedFaults:
    def test_enospc_mid_run_completes_bit_identical_and_degraded(
        self, tmp_path
    ):
        uninterrupted = execute_matrix(small_config(), RuntimeConfig())
        with io_faults(
            plan(
                IoFault(
                    point="journal.append.write", kind="enospc", after=10
                )
            )
        ):
            with pytest.warns(RuntimeWarning, match="journal-disabled"):
                result = execute_matrix(
                    small_config(),
                    RuntimeConfig(workers=1),
                    run_dir=tmp_path / "run",
                )
        assert result.degraded == ["journal-disabled"]
        assert (
            result.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )

    def test_torn_write_crash_resumes_bit_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        with io_faults(
            plan(
                IoFault(
                    point="journal.append.write", kind="torn-write", after=10
                )
            )
        ):
            with pytest.raises(OSError):
                execute_matrix(
                    small_config(), RuntimeConfig(workers=1), run_dir=run_dir
                )
        assert RunJournal.journal_path(run_dir).exists()
        assert not RunJournal.load(run_dir).complete

        uninterrupted = execute_matrix(small_config(), RuntimeConfig())
        resumed = resume_run(run_dir, RuntimeConfig(workers=1))
        assert resumed.restored_jobs >= 1
        assert (
            resumed.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )
        assert RunJournal.load(run_dir).complete
