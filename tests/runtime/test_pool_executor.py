"""The worker pool and executor: dispatch, failure surfacing, events."""

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.runtime import (
    FAILURE_STATUSES,
    FaultPlan,
    FaultSpec,
    RuntimeConfig,
    execute_matrix,
)

WORKERS = int(os.environ.get("GRAPHALYTICS_TEST_WORKERS", "2"))


def _config(**overrides):
    base = dict(
        platforms=["powergraph"],
        datasets=["R1"],
        algorithms=["bfs", "pr"],
        repetitions=2,
    )
    base.update(overrides)
    return BenchmarkConfig(**base)


class TestPoolExecution:
    def test_pool_mode_completes_and_validates(self):
        result = execute_matrix(_config(), RuntimeConfig(workers=WORKERS))
        assert result.mode == "pool"
        assert result.lost_jobs == 0
        assert all(r.succeeded and r.validated for r in result.database)

    def test_explicit_pool_mode_with_one_worker(self):
        result = execute_matrix(
            _config(), RuntimeConfig(workers=1, mode="pool")
        )
        assert result.mode == "pool"
        assert result.lost_jobs == 0

    def test_events_cover_every_job(self):
        result = execute_matrix(_config(), RuntimeConfig(workers=WORKERS))
        dispatched = {
            e.fields["job"] for e in result.events.select("dispatch")
        }
        completed = {
            e.fields["job"] for e in result.events.select("complete")
        }
        assert completed == dispatched
        assert len(completed) == result.dag_size

    def test_archive_exposes_runtime_phases(self):
        result = execute_matrix(_config(), RuntimeConfig(workers=WORKERS))
        archive = result.archive()
        assert [p.name for p in archive.phases] == [
            "expand", "execute", "merge",
        ]
        assert archive.phase("execute").metadata["jobs"] == result.job_count

    def test_shared_cache_directory_reused_across_runs(self, tmp_path):
        first = execute_matrix(
            _config(), RuntimeConfig(workers=WORKERS, cache_dir=tmp_path)
        )
        second = execute_matrix(
            _config(), RuntimeConfig(workers=WORKERS, cache_dir=tmp_path)
        )
        assert first.cache_stats.misses > 0
        assert second.cache_stats.misses == 0     # everything spilled
        assert second.database.canonical_json() == (
            first.database.canonical_json()
        )


class TestConfigValidation:
    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(workers=0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(mode="threads")

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(job_timeout=0.0)

    def test_inline_mode_rejects_hang_faults(self):
        plan = FaultPlan((FaultSpec(kind="hang"),))
        with pytest.raises(ConfigurationError):
            execute_matrix(
                _config(), RuntimeConfig(workers=1, fault_plan=plan)
            )


class TestInlineFailurePath:
    def test_inline_error_faults_surface_as_failure_rows(self):
        plan = FaultPlan(
            (FaultSpec(kind="error", algorithm="pr", run_index=0, times=5),)
        )
        result = execute_matrix(
            _config(),
            RuntimeConfig(workers=1, fault_plan=plan, max_attempts=2),
        )
        assert result.lost_jobs == 0
        failed = [r for r in result.database if not r.succeeded]
        assert len(failed) == 1
        assert failed[0].status == "harness-error"
        assert failed[0].status in FAILURE_STATUSES
        assert "InjectedFaultError" in failed[0].failure_reason
        assert len(result.failures) == 1
        assert result.failures[0].retries == 1

    def test_inline_transient_fault_recovers_via_retry(self):
        plan = FaultPlan(
            (FaultSpec(kind="error", algorithm="bfs", run_index=1, times=1),)
        )
        result = execute_matrix(
            _config(),
            RuntimeConfig(
                workers=1, fault_plan=plan, max_attempts=2,
                backoff_base=0.01,
            ),
        )
        assert result.lost_jobs == 0
        assert result.failures == []
        assert all(r.succeeded for r in result.database)
        assert result.events.count("retry") == 1
