"""Kill-the-harness chaos suite (ISSUE acceptance criterion).

Each scenario SIGKILLs the *harness process itself* mid-run — via the
``harness-kill`` fault kind, fired in the dispatcher immediately before
a chosen job would start — then resumes from the write-ahead journal
and asserts the crash-safety contract:

* at least one job had completed (and been journaled) before the kill;
* the resumed database is bit-identical (``canonical_json``) to an
  uninterrupted run of the same matrix;
* zero completed jobs are re-executed: no ``attempt-start`` record ever
  follows a job's ``job-done`` record in the journal.

The kill target runs in a subprocess: SIGKILL on the harness would
otherwise take pytest down with it.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.harness.config import BenchmarkConfig
from repro.harness.results import ResultsDatabase
from repro.runtime import (
    RunJournal,
    RuntimeConfig,
    execute_matrix,
    resume_run,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Small matrix: 1 materialize + 2 references + 8 execute jobs.
CHAOS_MATRIX = dict(
    platforms=["powergraph", "graphmat"],
    datasets=["R1"],
    algorithms=["bfs", "pr"],
    repetitions=2,
)

#: The job whose dispatch triggers the SIGKILL — late in the serial
#: visit order, so completed jobs exist in the journal by then.
KILL_AT = dict(platform="graphmat", algorithm="pr", run_index=1)


def chaos_config() -> BenchmarkConfig:
    return BenchmarkConfig(**CHAOS_MATRIX)


def run_to_the_kill(run_dir: Path, *, workers: int) -> None:
    """Run the chaos matrix in a subprocess until the injected SIGKILL."""
    script = textwrap.dedent(
        f"""
        from repro.harness.config import BenchmarkConfig
        from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig
        from repro.runtime import execute_matrix

        plan = FaultPlan((FaultSpec(kind="harness-kill", **{KILL_AT!r}),))
        execute_matrix(
            BenchmarkConfig(**{CHAOS_MATRIX!r}),
            RuntimeConfig(workers={workers}, fault_plan=plan),
            run_dir={str(run_dir)!r},
        )
        raise SystemExit("unreachable: the harness was supposed to die")
        """
    )
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected the harness to die by SIGKILL, got rc={proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )


def assert_no_reexecution(run_dir: Path) -> None:
    """No completed job ever started again: done keys stay done."""
    replay = RunJournal.load(run_dir)
    done = set()
    for record in replay.records:
        key = record.get("key")
        if record.get("type") == "job-done":
            done.add(key)
        elif record.get("type") == "attempt-start":
            assert key not in done, (
                f"job {record.get('seq')} re-executed after completion"
            )


@pytest.mark.parametrize("workers", [1, 4], ids=["inline", "pool"])
class TestKillTheHarness:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path, workers):
        run_dir = tmp_path / "run"
        run_to_the_kill(run_dir, workers=workers)

        # The crash left a journal with real completed work in it.
        replay = RunJournal.load(run_dir)
        assert replay.completed, "no job completed before the kill"
        assert not replay.complete, "journal claims the run finished"

        uninterrupted = execute_matrix(
            chaos_config(), RuntimeConfig(workers=1)
        )
        resumed = resume_run(run_dir, RuntimeConfig(workers=workers))
        assert resumed.restored_jobs >= len(replay.completed)
        assert resumed.lost_jobs == 0
        assert (
            resumed.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )
        assert_no_reexecution(run_dir)

    def test_resume_via_cli_entry_point(self, tmp_path, capsys, workers):
        # ISSUE acceptance: the resume path users actually run.
        run_dir = tmp_path / "run"
        run_to_the_kill(run_dir, workers=workers)
        assert cli_main(["resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "restored" in out

        uninterrupted = execute_matrix(
            chaos_config(), RuntimeConfig(workers=1)
        )
        persisted = ResultsDatabase.load(run_dir / "results.json")
        assert (
            persisted.canonical_json()
            == uninterrupted.database.canonical_json()
        )
        assert_no_reexecution(run_dir)
        assert RunJournal.load(run_dir).complete


class TestDoubleResume:
    def test_second_resume_executes_nothing(self, tmp_path):
        run_dir = tmp_path / "run"
        run_to_the_kill(run_dir, workers=1)
        first = resume_run(run_dir, RuntimeConfig(workers=1))
        second = resume_run(run_dir, RuntimeConfig(workers=1))
        assert second.restored_jobs == second.dag_size
        assert (
            second.database.canonical_json()
            == first.database.canonical_json()
        )
        assert_no_reexecution(run_dir)

    def test_kill_during_resume_still_converges(self, tmp_path):
        # Crash the *resume* too (the fault fires on the same job's
        # first attempt of the new run), then resume cleanly: the
        # journal absorbs any number of crashes.
        run_dir = tmp_path / "run"
        run_to_the_kill(run_dir, workers=1)
        script = textwrap.dedent(
            f"""
            from repro.runtime import (
                FaultPlan, FaultSpec, RuntimeConfig, resume_run,
            )

            plan = FaultPlan((FaultSpec(kind="harness-kill", **{KILL_AT!r}),))
            resume_run(
                {str(run_dir)!r},
                RuntimeConfig(workers=1, fault_plan=plan),
            )
            raise SystemExit("unreachable")
            """
        )
        env = {**os.environ, "PYTHONPATH": REPO_SRC}
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL
        final = resume_run(run_dir, RuntimeConfig(workers=1))
        uninterrupted = execute_matrix(
            chaos_config(), RuntimeConfig(workers=1)
        )
        assert (
            final.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )
        assert_no_reexecution(run_dir)
