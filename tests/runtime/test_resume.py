"""Checkpoint/resume determinism — without chaos (see test_chaos.py).

Crashes are simulated by cutting the journal file short (dropping the
tail, including ``run-complete``) rather than by SIGKILL, which lets
these tests pin the resume semantics precisely: bit-identical databases
across worker counts, refusal of mismatched matrices, and serial-path
(runner / experiment / full-run) replay.
"""

import os

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.config import BenchmarkConfig
from repro.harness.experiments import get_experiment
from repro.harness.full_run import run_full_benchmark
from repro.harness.runner import BenchmarkRunner
from repro.runtime import (
    JournalError,
    RunJournal,
    RuntimeConfig,
    execute_matrix,
    resume_run,
)

WORKERS = int(os.environ.get("GRAPHALYTICS_TEST_WORKERS", "4"))

SMALL = dict(
    platforms=["powergraph"],
    datasets=["R1"],
    algorithms=["bfs", "pr"],
    repetitions=2,
)


def small_config(**overrides) -> BenchmarkConfig:
    return BenchmarkConfig(**{**SMALL, **overrides})


def cut_journal(run_dir, keep_lines: int) -> None:
    """Simulate a crash: drop the journal tail and the saved database."""
    path = RunJournal.journal_path(run_dir)
    lines = path.read_bytes().splitlines(keepends=True)
    assert keep_lines < len(lines), "nothing would be cut"
    path.write_bytes(b"".join(lines[:keep_lines]))
    results = run_dir / "results.json"
    if results.exists():
        results.unlink()


@pytest.mark.parametrize("workers", [1, WORKERS], ids=["serial", "parallel"])
class TestResumeDeterminism:
    # The SMALL matrix expands to 7 DAG nodes (1 materialize + 2
    # references + 4 execute): line 1 is run-start, lines 2-8 the
    # job-scheduled batch, then two lines (attempt-start, job-done) per
    # job. Keeping 12 lines leaves roughly two jobs completed.
    KEEP_LINES = 12

    def test_cut_journal_resumes_bit_identical(self, tmp_path, workers):
        run_dir = tmp_path / "run"
        execute_matrix(small_config(), RuntimeConfig(workers=1),
                       run_dir=run_dir)
        cut_journal(run_dir, self.KEEP_LINES)
        assert not RunJournal.load(run_dir).complete

        uninterrupted = execute_matrix(small_config(), RuntimeConfig())
        resumed = resume_run(run_dir, RuntimeConfig(workers=workers))
        assert resumed.restored_jobs >= 1
        assert resumed.lost_jobs == 0
        assert (
            resumed.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )
        assert RunJournal.load(run_dir).complete

    def test_torn_tail_crash_resumes_bit_identical(self, tmp_path, workers):
        run_dir = tmp_path / "run"
        execute_matrix(small_config(), RuntimeConfig(workers=1),
                       run_dir=run_dir)
        cut_journal(run_dir, self.KEEP_LINES)
        path = RunJournal.journal_path(run_dir)
        path.write_bytes(path.read_bytes() + b'0bad50da {"type": "job-')

        uninterrupted = execute_matrix(small_config(), RuntimeConfig())
        resumed = resume_run(run_dir, RuntimeConfig(workers=workers))
        assert (
            resumed.database.canonical_json()
            == uninterrupted.database.canonical_json()
        )


class TestResumeRefusals:
    def test_resume_requires_run_dir(self):
        with pytest.raises(ConfigurationError, match="run_dir"):
            execute_matrix(small_config(), resume=True)

    def test_mismatched_matrix_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_matrix(small_config(), run_dir=run_dir)
        with pytest.raises(JournalError, match="matrix hash"):
            execute_matrix(
                small_config(repetitions=3), run_dir=run_dir, resume=True
            )

    def test_resume_run_refuses_non_matrix_journal(self, tmp_path):
        RunJournal.create(tmp_path, {"kind": "experiment"}).close()
        with pytest.raises(JournalError, match="experiment"):
            resume_run(tmp_path)

    def test_fresh_journaled_run_refuses_existing_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_matrix(small_config(), run_dir=run_dir)
        with pytest.raises(JournalError, match="already exists"):
            execute_matrix(small_config(), run_dir=run_dir)


class TestSerialRunnerResume:
    def test_runner_auto_resumes_existing_run_dir(self, tmp_path):
        run_dir = tmp_path / "run"
        first = BenchmarkRunner(small_config())
        database = first.run(run_dir=run_dir)

        second = BenchmarkRunner(small_config())
        resumed = second.run(run_dir=run_dir)
        assert resumed.canonical_json() == database.canonical_json()
        # Everything came from the journal; nothing re-executed.
        assert second.last_run.restored_jobs == second.last_run.dag_size

    def test_experiment_resume_replays_rows(self, tmp_path):
        run_dir = tmp_path / "run"
        experiment = get_experiment("algorithm-variety")
        first = experiment.run(seed=0, run_dir=run_dir)
        recorded = len(RunJournal.load(run_dir).records)

        replayed = experiment.run(seed=0, run_dir=run_dir)
        assert replayed.rows == first.rows
        # The replayed run appends its own run-complete, nothing else.
        assert len(RunJournal.load(run_dir).records) == recorded + 1

    def test_experiment_resume_refuses_other_seed(self, tmp_path):
        run_dir = tmp_path / "run"
        experiment = get_experiment("algorithm-variety")
        experiment.run(seed=0, run_dir=run_dir)
        with pytest.raises(JournalError, match="seed"):
            experiment.run(seed=1, run_dir=run_dir)

    def test_full_run_resume_is_bit_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_full_benchmark(
            experiment_ids=["algorithm-variety"], run_dir=run_dir
        )
        second = run_full_benchmark(
            experiment_ids=["algorithm-variety"], run_dir=run_dir
        )
        assert (
            second.database.canonical_json()
            == first.database.canonical_json()
        )
        assert any("journal" in note for note in second.notes)
