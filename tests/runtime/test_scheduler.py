"""Matrix expansion and the job DAG: ordering, dependencies, retries."""

import pytest

from repro.exceptions import ValidationError
from repro.harness.config import BenchmarkConfig
from repro.runtime.jobs import JobKind
from repro.runtime.scheduler import JobGraph, can_run_combo, expand_matrix


def _config(**overrides):
    base = dict(
        platforms=["powergraph", "graphmat"],
        datasets=["R1", "R4"],
        algorithms=["bfs", "sssp"],
        repetitions=2,
    )
    base.update(overrides)
    return BenchmarkConfig(**base)


class TestExpansion:
    def test_execute_jobs_numbered_in_serial_run_order(self):
        specs = expand_matrix(_config())
        executes = [s for s in specs if s.kind == JobKind.EXECUTE]
        visited = [
            (s.platform, s.dataset, s.algorithm, s.run_index) for s in executes
        ]
        # Exactly the order BenchmarkRunner.run loops: platform ->
        # dataset -> algorithm -> repetition (sssp skipped on the
        # unweighted R1).
        expected = []
        for platform in ("powergraph", "graphmat"):
            for dataset in ("R1", "R4"):
                for algorithm in ("bfs", "sssp"):
                    if algorithm == "sssp" and dataset == "R1":
                        continue
                    for rep in (0, 1):
                        expected.append((platform, dataset, algorithm, rep))
        assert visited == expected
        assert [s.seq for s in executes] == sorted(s.seq for s in executes)

    def test_materialize_and_reference_jobs_deduplicated(self):
        specs = expand_matrix(_config())
        kinds = {}
        for spec in specs:
            kinds.setdefault(spec.kind, []).append(spec)
        assert {s.dataset for s in kinds[JobKind.MATERIALIZE]} == {"R1", "R4"}
        assert len(kinds[JobKind.MATERIALIZE]) == 2
        refs = {(s.dataset, s.algorithm) for s in kinds[JobKind.REFERENCE]}
        assert refs == {("R1", "bfs"), ("R4", "bfs"), ("R4", "sssp")}

    def test_no_reference_jobs_without_validation(self):
        specs = expand_matrix(_config(validate_outputs=False))
        assert not any(s.kind == JobKind.REFERENCE for s in specs)

    def test_impossible_combo_raises_unless_skipped(self):
        with pytest.raises(ValidationError):
            expand_matrix(_config(skip_impossible=False))

    def test_can_run_combo_mirrors_runner_rules(self):
        assert can_run_combo("powergraph", "R4", "sssp")
        assert not can_run_combo("powergraph", "R1", "sssp")  # unweighted
        assert not can_run_combo("openg", "R1", "bfs", machines=4)
        assert can_run_combo("powergraph", "R1", "bfs", machines=4)


class TestJobGraphDependencies:
    def test_roots_are_materializations(self):
        graph = JobGraph.from_config(_config())
        ready = [n.spec.kind for n in graph.ready_jobs(now=0.0)]
        assert ready and set(ready) == {JobKind.MATERIALIZE}

    def test_completion_promotes_dependents(self):
        graph = JobGraph.from_config(_config())
        while graph.unfinished:
            ready = list(graph.ready_jobs(now=0.0))
            assert ready, "DAG stalled with unfinished jobs"
            for node in ready:
                deps = node.deps
                for dep in deps:
                    assert graph.nodes[dep].state == "done"
                graph.mark_running(node.seq, worker=-1)
                graph.complete(node.seq)
        assert graph.failures == []


class TestRetryPolicy:
    def test_retry_schedules_backoff_then_fails(self):
        config = _config(
            platforms=["powergraph"], datasets=["R1"], algorithms=["bfs"]
        )
        graph = JobGraph.from_config(config, max_attempts=3,
                                     backoff_base=0.5)
        node = next(graph.ready_jobs(now=0.0))
        graph.mark_running(node.seq, worker=0)
        assert graph.record_attempt(
            node.seq, now=10.0, worker=0, kind="exception",
            detail="boom", elapsed=0.1,
        ) is None
        assert node.state == "ready"
        assert node.eligible_at == pytest.approx(10.5)    # base * 2^0
        assert not list(graph.ready_jobs(now=10.0))       # backoff gates
        assert next(graph.ready_jobs(now=10.5)).seq == node.seq

        graph.mark_running(node.seq, worker=1)
        assert graph.record_attempt(
            node.seq, now=20.0, worker=1, kind="timeout",
            detail="slow", elapsed=1.0,
        ) is None
        assert node.eligible_at == pytest.approx(21.0)    # base * 2^1

        graph.mark_running(node.seq, worker=0)
        failure = graph.record_attempt(
            node.seq, now=30.0, worker=0, kind="crash",
            detail="dead", elapsed=0.0,
        )
        assert failure is not None
        assert failure.final_kind == "crash"
        assert failure.retries == 2
        assert [a.kind for a in failure.attempts] == [
            "exception", "timeout", "crash",
        ]

    def test_dependency_failure_cascades_to_all_dependents(self):
        config = _config(datasets=["R1"], algorithms=["bfs"])
        graph = JobGraph.from_config(config, max_attempts=1)
        root = next(graph.ready_jobs(now=0.0))
        assert root.spec.kind == JobKind.MATERIALIZE
        graph.mark_running(root.seq, worker=0)
        graph.record_attempt(
            root.seq, now=0.0, worker=0, kind="exception",
            detail="disk full", elapsed=0.0,
        )
        # materialize + reference + 2 platforms x 2 reps all failed
        assert len(graph.failures) == 6
        dependents = [f for f in graph.failures if f.spec.seq != root.seq]
        assert all(f.final_kind == "dependency" for f in dependents)
        assert graph.unfinished == 0

    def test_next_wake_reports_backoff_and_deadlines(self):
        graph = JobGraph.from_config(_config(), max_attempts=2,
                                     backoff_base=1.0)
        first, second = list(graph.ready_jobs(now=0.0))[:2]
        graph.mark_running(first.seq, worker=0)
        graph.record_attempt(
            first.seq, now=0.0, worker=0, kind="exception",
            detail="x", elapsed=0.0,
        )
        graph.mark_running(second.seq, worker=1, deadline=0.4)
        assert graph.next_wake(now=0.0) == pytest.approx(0.4)
