"""The content-addressed graph cache: keys, layers, stats, maintenance."""

import pickle

import numpy as np
import pytest

from repro.harness.datasets import get_dataset
from repro.runtime.cache import (
    CacheStats,
    GraphCache,
    graph_key,
    reference_key,
)


class TestContentAddressing:
    def test_key_is_deterministic(self):
        dataset = get_dataset("R1")
        assert graph_key(dataset, 0) == graph_key(dataset, 0)

    def test_key_depends_on_seed_dataset_and_kind(self):
        r1, r4 = get_dataset("R1"), get_dataset("R4")
        keys = {
            graph_key(r1, 0),
            graph_key(r1, 1),
            graph_key(r4, 0),
            reference_key(r1, "bfs", 0),
            reference_key(r1, "pr", 0),
        }
        assert len(keys) == 5

    def test_reference_key_case_insensitive_algorithm(self):
        dataset = get_dataset("R1")
        assert reference_key(dataset, "BFS", 0) == reference_key(dataset, "bfs", 0)


class TestLayers:
    def test_build_then_memory_hit(self, tmp_path):
        cache = GraphCache(tmp_path)
        dataset = get_dataset("R1")
        g1 = cache.get_graph(dataset, 0)
        g2 = cache.get_graph(dataset, 0)
        assert g1 is g2
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1

    def test_disk_hit_across_cache_instances(self, tmp_path):
        dataset = get_dataset("R1")
        writer = GraphCache(tmp_path)
        built = writer.get_graph(dataset, 0)

        reader = GraphCache(tmp_path)
        loaded = reader.get_graph(dataset, 0)
        assert reader.stats.disk_hits == 1
        assert reader.stats.misses == 0
        assert loaded.num_vertices == built.num_vertices
        assert loaded.num_edges == built.num_edges

    def test_disk_hit_primes_dataset_memo(self, tmp_path):
        dataset = get_dataset("R2")
        GraphCache(tmp_path).get_graph(dataset, 0)
        dataset._cache.clear()
        reader = GraphCache(tmp_path)
        loaded = reader.get_graph(dataset, 0)
        # materialize() must now return the cache-loaded object, not rebuild
        assert dataset.materialize(0) is loaded

    def test_lru_eviction_is_counted_and_bounded(self, tmp_path):
        cache = GraphCache(tmp_path, memory_entries=1)
        cache.get_graph(get_dataset("R1"), 0)
        cache.get_graph(get_dataset("R2"), 0)
        cache.get_graph(get_dataset("R3"), 0)
        assert len(cache._lru) == 1
        assert cache.stats.evictions == 2

    def test_memory_only_mode(self):
        cache = GraphCache(None)
        graph = cache.get_graph(get_dataset("R1"), 0)
        assert graph.num_vertices > 0
        assert cache.disk_entries() == []

    def test_reference_output_round_trips_through_disk(self, tmp_path):
        dataset = get_dataset("R1")
        writer = GraphCache(tmp_path)
        ref = writer.get_reference(dataset, "bfs", 0)
        reader = GraphCache(tmp_path)
        again = reader.get_reference(dataset, "bfs", 0)
        np.testing.assert_array_equal(ref, again)
        assert reader.stats.disk_hits >= 1


class TestStats:
    def test_delta_resets_after_take(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.get_graph(get_dataset("R1"), 0)
        delta = cache.take_stats_delta()
        assert delta["misses"] == 1
        assert cache.take_stats_delta()["misses"] == 0
        # the cumulative stats survive the take
        assert cache.stats.misses == 1

    def test_merge_accepts_objects_and_dicts(self):
        total = CacheStats()
        total.merge(CacheStats(memory_hits=2, misses=1))
        total.merge({"disk_hits": 3, "bytes_written": 10})
        assert total.hits == 5
        assert total.lookups == 6
        assert 0 < total.hit_rate < 1

    def test_run_stats_round_trip(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.write_run_stats(CacheStats(memory_hits=4, misses=2))
        read = cache.read_run_stats()
        assert read.memory_hits == 4
        assert read.misses == 2


class TestMaintenance:
    def test_disk_entries_have_manifests(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.get_graph(get_dataset("R1"), 0)
        cache.get_reference(get_dataset("R1"), "bfs", 0)
        entries = cache.disk_entries()
        assert [e.kind for e in entries] == ["graph", "reference"]
        assert all(e.bytes > 0 for e in entries)

    def test_clear_removes_everything(self, tmp_path):
        cache = GraphCache(tmp_path)
        cache.get_graph(get_dataset("R1"), 0)
        cache.get_reference(get_dataset("R1"), "bfs", 0)
        assert cache.clear() == 2
        assert cache.disk_entries() == []
        assert not list(tmp_path.glob("*/*.pkl"))

    def test_corrupt_entry_detected_by_unpickling_error(self, tmp_path):
        cache = GraphCache(tmp_path)
        dataset = get_dataset("R1")
        cache.get_graph(dataset, 0)
        path = cache._entry_path(graph_key(dataset, 0))
        path.write_bytes(b"not a pickle")
        fresh = GraphCache(tmp_path)
        with pytest.raises(pickle.UnpicklingError):
            fresh.get_graph(dataset, 0)
