"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    # The deliverable requires at least three runnable examples,
    # including a quickstart.
    assert len(EXAMPLES) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()
