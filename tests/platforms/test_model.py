"""Tests for the performance-model mechanics (platform-independent)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.platforms.cluster import ClusterResources
from repro.platforms.model import PerformanceModel, WorkloadProfile


def make_profile(**overrides):
    defaults = dict(
        name="test",
        num_vertices=1_000_000,
        num_edges=20_000_000,
        directed=False,
        weighted=False,
        mean_degree=40.0,
        degree_cv2=2.0,
        memory_skew=1.0,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


def make_model(**overrides):
    defaults = dict(
        base_evps=100e6,
        tproc_floor=0.1,
        parallel_fraction={"*": 0.95},
        dist_exponent={"*": 0.8},
        bytes_per_element=50.0,
    )
    defaults.update(overrides)
    return PerformanceModel(**defaults)


def R(machines=1, threads=None):
    return ClusterResources(machines=machines, threads=threads)


class TestWorkloadProfile:
    def test_elements_and_scale(self):
        p = make_profile()
        assert p.elements == 21_000_000
        assert p.scale == pytest.approx(7.3)

    def test_degree_second_moment(self):
        p = make_profile(mean_degree=10.0, degree_cv2=3.0)
        # V * d^2 * (1 + cv2)
        assert p.degree_second_moment_sum == pytest.approx(1e6 * 100 * 4)


class TestWork:
    def test_bfs_work_is_elements(self):
        model = make_model()
        assert model.work_elements("bfs", make_profile()) == pytest.approx(21e6)

    def test_pr_work_scales_with_factor(self):
        model = make_model()
        assert model.work_elements("pr", make_profile()) == pytest.approx(7.5 * 21e6)

    def test_queue_based_bfs_uses_coverage(self):
        model = make_model(queue_based_bfs=True)
        p = make_profile(bfs_coverage=0.10)
        assert model.work_elements("bfs", p) == pytest.approx(2.1e6)

    def test_lcc_work_quadratic_in_degree(self):
        model = make_model()
        sparse = make_profile(mean_degree=5.0)
        dense = make_profile(mean_degree=50.0)
        ratio = model.work_elements("lcc", dense) / model.work_elements("lcc", sparse)
        assert ratio == pytest.approx(100.0)

    def test_wcc_component_penalty(self):
        plain = make_model()
        penalized = make_model(wcc_component_penalty=0.5)
        p = make_profile(component_count=100_000)
        assert penalized.work_elements("wcc", p) > plain.work_elements("wcc", p)

    def test_algorithm_adjust_applies(self):
        model = make_model(algorithm_adjust={"pr": 2.0})
        base = make_model()
        p = make_profile()
        assert model.work_elements("pr", p) == pytest.approx(
            2.0 * base.work_elements("pr", p)
        )


class TestVerticalScaling:
    def test_more_threads_is_faster(self):
        model = make_model()
        p = make_profile()
        t1 = model.processing_time("bfs", p, R(threads=1))
        t16 = model.processing_time("bfs", p, R(threads=16))
        assert t16 < t1

    def test_amdahl_bounds_speedup(self):
        model = make_model(parallel_fraction={"*": 0.5}, tproc_floor=0.0)
        p = make_profile()
        t1 = model.processing_time("bfs", p, R(threads=1))
        t32 = model.processing_time("bfs", p, R(threads=32))
        assert t1 / t32 < 2.0  # serial fraction 0.5 caps speedup below 2

    def test_hyperthreading_yield(self):
        # base_evps is the full-node rate, so HT yield shows up as a
        # 16-thread run being slower than the 32-thread run.
        with_ht = make_model(ht_yield=0.5)
        p = make_profile()
        assert with_ht.processing_time(
            "bfs", p, R(threads=32)
        ) < with_ht.processing_time("bfs", p, R(threads=16))

    def test_no_ht_means_16_equals_32(self):
        model = make_model(ht_yield=0.0)
        p = make_profile()
        assert model.processing_time("bfs", p, R(threads=16)) == pytest.approx(
            model.processing_time("bfs", p, R(threads=32))
        )


class TestHorizontalScaling:
    def test_distribution_shock(self):
        model = make_model(dist_shock=3.0, dist_exponent={"*": 1.0})
        p = make_profile()
        t1 = model.processing_time("bfs", p, R(machines=1))
        t2 = model.processing_time("bfs", p, R(machines=2))
        assert t2 > t1  # 2 machines slower than 1: the shock

    def test_recovery_with_more_machines(self):
        model = make_model(dist_shock=3.0, dist_exponent={"*": 1.0})
        p = make_profile()
        t2 = model.processing_time("bfs", p, R(machines=2))
        t16 = model.processing_time("bfs", p, R(machines=16))
        assert t16 < t2

    def test_shock_adjust_per_algorithm(self):
        model = make_model(dist_shock=2.0, dist_shock_adjust={"pr": 2.0})
        p = make_profile()
        bfs_ratio = model.processing_time(
            "bfs", p, R(machines=2)
        ) / model.processing_time("bfs", p, R(machines=1))
        pr_ratio = model.processing_time(
            "pr", p, R(machines=2)
        ) / model.processing_time("pr", p, R(machines=1))
        assert pr_ratio > bfs_ratio

    def test_non_distributed_rejects_machines(self):
        model = make_model(distributed=False)
        with pytest.raises(ConfigurationError):
            model.processing_time("bfs", make_profile(), R(machines=2))


class TestMemoryModel:
    def test_footprint_scales_with_elements(self):
        model = make_model(bytes_per_element=50.0)
        p = make_profile()
        assert model.memory_footprint_bytes("bfs", p) == pytest.approx(
            21e6 * 50
        )

    def test_skew_sensitivity(self):
        model = make_model(skew_sensitivity=2.0)
        skewed = make_profile(memory_skew=1.5)
        plain = make_profile(memory_skew=1.0)
        assert model.memory_footprint_bytes("bfs", skewed) == pytest.approx(
            2.0 * model.memory_footprint_bytes("bfs", plain)
        )

    def test_memory_alg_multiplier(self):
        model = make_model(memory_alg_mult={"lcc": 10.0})
        p = make_profile()
        assert model.memory_footprint_bytes("lcc", p) == pytest.approx(
            10 * model.memory_footprint_bytes("bfs", p)
        )

    def test_distribution_divides_demand(self):
        model = make_model(boundary_fraction=0.0, replication=0.0)
        p = make_profile()
        single = model.memory_demand_per_machine("bfs", p, R(machines=1))
        quad = model.memory_demand_per_machine("bfs", p, R(machines=4))
        assert quad == pytest.approx(single / 4)

    def test_boundary_fraction_limits_scaling(self):
        model = make_model(boundary_fraction=0.5, replication=0.0)
        p = make_profile()
        single = model.memory_demand_per_machine("bfs", p, R(machines=1))
        many = model.memory_demand_per_machine("bfs", p, R(machines=64))
        assert many > 0.49 * single  # the boundary share never shrinks

    def test_fits_in_memory(self):
        model = make_model(bytes_per_element=50.0)
        small = make_profile()
        huge = make_profile(num_edges=3_000_000_000)
        assert model.fits_in_memory("bfs", small, R())
        assert not model.fits_in_memory("bfs", huge, R())

    def test_swap_penalty_kicks_in_near_capacity(self):
        model = make_model(swap_threshold=0.5, swap_penalty=4.0)
        # ~1.22 GiB demand on 64 GiB is fine; scale the profile up to
        # ~80% of capacity to trigger swapping.
        p = make_profile(num_edges=1_100_000_000)
        assert model.swap_multiplier("bfs", p, R()) > 1.0
        assert model.swap_multiplier("bfs", make_profile(), R()) == 1.0


class TestMakespanAndVariability:
    def test_makespan_components(self):
        model = make_model(fixed_overhead=10.0, load_rate=1e6)
        p = make_profile()
        tproc = model.processing_time("bfs", p, R())
        makespan = model.makespan("bfs", p, R())
        assert makespan == pytest.approx(10.0 + 21.0 + tproc + 0.5)

    def test_upload_time(self):
        model = make_model(upload_rate=1e6)
        assert model.upload_time(make_profile()) == pytest.approx(21.0)

    def test_variability_deterministic_per_key(self):
        model = make_model(variability_cv_single=0.1)
        a = model.apply_variability(10.0, R(), seed_key=("x", 1))
        b = model.apply_variability(10.0, R(), seed_key=("x", 1))
        assert a == b

    def test_variability_differs_across_keys(self):
        model = make_model(variability_cv_single=0.1)
        a = model.apply_variability(10.0, R(), seed_key=("x", 1))
        b = model.apply_variability(10.0, R(), seed_key=("x", 2))
        assert a != b

    def test_zero_cv_is_identity(self):
        model = make_model(variability_cv_single=0.0)
        assert model.apply_variability(10.0, R(), seed_key=("x",)) == 10.0

    def test_sampled_cv_matches_parameter(self):
        model = make_model(variability_cv_single=0.08)
        samples = [
            model.apply_variability(10.0, R(), seed_key=("k", i))
            for i in range(500)
        ]
        import numpy as np

        arr = np.array(samples)
        assert arr.std() / arr.mean() == pytest.approx(0.08, rel=0.25)
        assert arr.mean() == pytest.approx(10.0, rel=0.05)

    def test_distributed_cv_used(self):
        model = make_model(
            variability_cv_single=0.0, variability_cv_distributed=0.2
        )
        assert model.variability_cv(R(machines=2)) == 0.2
