"""Tests for the automatic tuning policy (baseline-resource finder)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.datasets import get_dataset
from repro.platforms.registry import create_driver
from repro.platforms.tuning import capacity_frontier, recommend_resources


def profile(dataset_id):
    return get_dataset(dataset_id).profile


class TestPaperBaselines:
    """The §4.4 baselines, recovered by the policy instead of trial runs."""

    def test_graphx_bfs_needs_two_machines(self):
        decision = recommend_resources(
            create_driver("graphx"), "bfs", profile("D1000")
        )
        assert decision.feasible
        assert decision.resources.machines == 2

    def test_graphx_pr_needs_four_machines(self):
        decision = recommend_resources(
            create_driver("graphx"), "pr", profile("D1000")
        )
        assert decision.resources.machines == 4

    def test_pgxd_needs_two_machines(self):
        decision = recommend_resources(
            create_driver("pgxd"), "bfs", profile("D1000")
        )
        assert decision.resources.machines == 2

    def test_powergraph_runs_on_one(self):
        decision = recommend_resources(
            create_driver("powergraph"), "bfs", profile("D1000")
        )
        assert decision.resources.machines == 1

    def test_giraph_pr_skips_the_sla_breaking_two_machine_config(self):
        # Giraph PR on D1000 works on 1 machine, breaks the SLA on 2:
        # the policy starts at 1 (fine) — but if 1 is excluded it must
        # jump to 4, not 2.
        decision = recommend_resources(
            create_driver("giraph"), "pr", profile("D1000"),
            machine_options=(2, 4, 8, 16),
        )
        assert decision.resources.machines == 4


class TestCapabilityAwareness:
    def test_openg_never_distributed(self):
        decision = recommend_resources(
            create_driver("openg"), "bfs", profile("R5"),
            machine_options=(1, 2, 4),
        )
        # R5 exceeds one machine (Table 10) and OpenG cannot scale out.
        assert not decision.feasible

    def test_openg_with_no_single_machine_option(self):
        decision = recommend_resources(
            create_driver("openg"), "bfs", profile("R1"),
            machine_options=(2, 4),
        )
        assert not decision.feasible
        assert "single-machine" in decision.reason

    def test_pgxd_lcc_unsupported(self):
        decision = recommend_resources(
            create_driver("pgxd"), "lcc", profile("R4")
        )
        assert not decision.feasible
        assert "no LCC implementation" in decision.reason

    def test_graphx_cdlp_crashes(self):
        decision = recommend_resources(
            create_driver("graphx"), "cdlp", profile("R4")
        )
        assert not decision.feasible
        assert "crashes" in decision.reason

    def test_empty_options_rejected(self):
        with pytest.raises(ConfigurationError):
            recommend_resources(
                create_driver("giraph"), "bfs", profile("R1"),
                machine_options=(),
            )


class TestDecisionDetails:
    def test_predictions_populated(self):
        decision = recommend_resources(
            create_driver("graphmat"), "bfs", profile("D300")
        )
        assert decision.feasible
        assert decision.predicted_tproc > 0
        assert decision.predicted_makespan > decision.predicted_tproc
        assert 0 < decision.predicted_memory_fraction <= 1
        assert "fits memory" in decision.reason


class TestCapacityFrontier:
    def test_frontier_shape_for_pgxd(self):
        frontier = capacity_frontier(
            create_driver("pgxd"), "bfs", profile("D1000")
        )
        by_machines = dict(frontier)
        assert by_machines[1] is None          # OOM on one machine
        assert by_machines[2] is not None
        assert by_machines[16] < by_machines[2]

    def test_single_machine_platform_frontier(self):
        frontier = capacity_frontier(
            create_driver("openg"), "bfs", profile("D300"),
            machine_options=(1, 2, 4),
        )
        by_machines = dict(frontier)
        assert by_machines[1] is not None
        assert by_machines[2] is None and by_machines[4] is None
