"""Tests for the driver API (upload / execute / delete)."""

import pytest

from repro.exceptions import ConfigurationError, UnsupportedAlgorithmError
from repro.graph.generators import erdos_renyi
from repro.platforms.base import JobStatus, profile_from_graph
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import create_driver


@pytest.fixture
def driver():
    return create_driver("powergraph")


@pytest.fixture
def graph():
    return erdos_renyi(50, 0.1, seed=1, name="unit-graph")


@pytest.fixture
def handle(driver, graph):
    return driver.upload(graph)


class TestProfileFromGraph:
    def test_measures_graph(self, graph):
        p = profile_from_graph(graph)
        assert p.num_vertices == graph.num_vertices
        assert p.num_edges == graph.num_edges
        assert p.name == "unit-graph"
        assert p.mean_degree == pytest.approx(graph.degrees().mean())

    def test_component_count_measured(self, two_triangles):
        assert profile_from_graph(two_triangles).component_count == 2

    def test_memory_skew_override(self, graph):
        assert profile_from_graph(graph, memory_skew=1.7).memory_skew == 1.7


class TestUpload:
    def test_handle_fields(self, driver, graph):
        handle = driver.upload(graph)
        assert handle.platform == "PowerGraph"
        assert handle.modeled_upload_time > 0
        assert handle.measured_upload_seconds >= 0
        assert not handle.deleted

    def test_delete(self, driver, handle):
        driver.delete(handle)
        assert handle.deleted

    def test_execute_after_delete_rejected(self, driver, handle):
        driver.delete(handle)
        with pytest.raises(ConfigurationError, match="deleted"):
            driver.execute(handle, "wcc")


class TestExecute:
    def test_successful_job(self, driver, handle):
        result = driver.execute(handle, "bfs", {"source_vertex": 0})
        assert result.status is JobStatus.SUCCEEDED
        assert result.succeeded
        assert result.output is not None
        assert len(result.output) == handle.graph.num_vertices
        assert result.modeled_processing_time > 0
        assert result.modeled_makespan > result.modeled_processing_time
        assert result.measured_processing_seconds > 0

    def test_output_matches_reference(self, driver, handle):
        from repro.algorithms.bfs import breadth_first_search
        import numpy as np

        result = driver.execute(handle, "bfs", {"source_vertex": 0})
        expected = breadth_first_search(handle.graph, 0)
        assert np.array_equal(result.output, expected)

    def test_events_cover_makespan(self, driver, handle):
        result = driver.execute(handle, "wcc")
        phases = [e["phase"] for e in result.events]
        assert phases == ["startup", "load", "processing", "cleanup"]
        assert result.events[-1]["end"] == pytest.approx(result.modeled_makespan)

    def test_unknown_algorithm_raises(self, driver, handle):
        with pytest.raises(UnsupportedAlgorithmError):
            driver.execute(handle, "bellmanford")

    def test_run_index_changes_jitter(self, driver, handle):
        a = driver.execute(handle, "wcc", run_index=0)
        b = driver.execute(handle, "wcc", run_index=1)
        assert a.modeled_processing_time != b.modeled_processing_time

    def test_same_job_is_reproducible(self, driver, handle):
        a = driver.execute(handle, "wcc", run_index=3)
        b = driver.execute(handle, "wcc", run_index=3)
        assert a.modeled_processing_time == b.modeled_processing_time

    def test_record_roundtrip(self, driver, handle):
        record = driver.execute(handle, "wcc").as_record()
        assert record["platform"] == "PowerGraph"
        assert record["status"] == "succeeded"


class TestModeledFailures:
    def test_out_of_memory(self, driver, graph):
        from repro.platforms.model import WorkloadProfile

        huge = WorkloadProfile(
            name="huge", num_vertices=100_000_000, num_edges=5_000_000_000,
            directed=False, weighted=False, mean_degree=100.0, degree_cv2=1.0,
        )
        handle = driver.upload(graph, profile=huge)
        result = driver.execute(handle, "bfs", {"source_vertex": 0})
        assert result.status is JobStatus.FAILED_MEMORY
        assert "GiB" in result.failure_reason
        assert result.output is None

    def test_crash_quirk(self, graph):
        graphx = create_driver("graphx")
        handle = graphx.upload(graph)
        result = graphx.execute(handle, "cdlp")
        assert result.status is JobStatus.CRASHED

    def test_not_supported_quirk(self, graph):
        pgxd = create_driver("pgxd")
        handle = pgxd.upload(graph)
        result = pgxd.execute(handle, "lcc")
        assert result.status is JobStatus.NOT_SUPPORTED

    def test_non_distributed_platform_rejects_machines(self, graph):
        openg = create_driver("openg")
        handle = openg.upload(graph)
        with pytest.raises(ConfigurationError, match="non-distributed"):
            openg.execute(handle, "wcc", resources=ClusterResources(machines=2))
