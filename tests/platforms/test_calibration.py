"""Calibration tests: the platform models against the paper's anchors.

Every test here quotes a concrete number or qualitative finding from the
paper's evaluation (§4, Tables 8–11, Figures 4–9) and asserts that the
calibrated models reproduce it — exactly for the headline Table 8/10
values, within stated tolerances elsewhere.
"""

import pytest

from repro.harness.datasets import DATASETS, get_dataset
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import PLATFORMS, create_driver


def R(machines=1, threads=None):
    return ClusterResources(machines=machines, threads=threads)


def model(name):
    return create_driver(name).model


def tproc(name, algorithm, dataset, machines=1, threads=None):
    return model(name).processing_time(
        algorithm, get_dataset(dataset).profile, R(machines, threads)
    )


def makespan(name, algorithm, dataset, machines=1):
    m = model(name)
    profile = get_dataset(dataset).profile
    t = m.processing_time(algorithm, profile, R(machines))
    return m.makespan(algorithm, profile, R(machines), processing_time=t)


def fits(name, algorithm, dataset, machines=1):
    return model(name).fits_in_memory(
        algorithm, get_dataset(dataset).profile, R(machines)
    )


class TestTable8:
    """Tproc and makespan for BFS on D300(L), one machine."""

    @pytest.mark.parametrize(
        "platform,paper_tproc,paper_makespan",
        [
            ("giraph", 22.3, 276.6),
            ("graphx", 101.5, 298.3),
            ("powergraph", 2.1, 214.7),
            ("graphmat", 0.3, 22.8),
            ("openg", 1.8, 5.4),
            ("pgxd", 0.5, 268.7),
        ],
    )
    def test_tproc_and_makespan(self, platform, paper_tproc, paper_makespan):
        assert tproc(platform, "bfs", "D300") == pytest.approx(paper_tproc, rel=0.10)
        assert makespan(platform, "bfs", "D300") == pytest.approx(
            paper_makespan, rel=0.10
        )

    def test_overhead_ratio_ordering(self):
        # Paper: PGX.D has the smallest Tproc/makespan ratio (0.2%),
        # GraphX and OpenG the largest (~33-34%).
        ratios = {
            p: tproc(p, "bfs", "D300") / makespan(p, "bfs", "D300")
            for p in PLATFORMS
        }
        assert ratios["pgxd"] == min(ratios.values())
        assert ratios["pgxd"] < 0.01
        assert ratios["graphx"] > 0.25
        assert ratios["openg"] > 0.25


class TestTable9:
    """Vertical speedups (1 -> 32 threads) on D300(L)."""

    @pytest.mark.parametrize(
        "platform,paper_bfs,paper_pr",
        [
            ("giraph", 6.0, 8.1),
            ("graphx", 4.5, 2.9),
            ("powergraph", 11.8, 10.3),
            ("graphmat", 6.9, 11.3),
            ("openg", 6.3, 6.4),
            ("pgxd", 15.0, 13.9),
        ],
    )
    def test_max_speedup(self, platform, paper_bfs, paper_pr):
        for algorithm, expected in (("bfs", paper_bfs), ("pr", paper_pr)):
            s = tproc(platform, algorithm, "D300", threads=1) / tproc(
                platform, algorithm, "D300", threads=32
            )
            assert s == pytest.approx(expected, rel=0.15)

    def test_pgxd_scales_best(self):
        speedups = {
            p: tproc(p, "bfs", "D300", threads=1)
            / tproc(p, "bfs", "D300", threads=32)
            for p in PLATFORMS
        }
        assert max(speedups, key=speedups.get) == "pgxd"

    def test_all_platforms_benefit_from_cores(self):
        # Paper §4.3: "All platforms benefit from using additional cores".
        for p in PLATFORMS:
            assert tproc(p, "bfs", "D300", threads=16) < tproc(
                p, "bfs", "D300", threads=1
            )

    def test_hyperthreading_gains_limited(self):
        # Paper: GraphX, GraphMat, OpenG gain nothing from HT; Giraph and
        # PGX.D benefit slightly.
        for p in ("graphx", "graphmat", "openg"):
            assert tproc(p, "bfs", "D300", threads=32) == pytest.approx(
                tproc(p, "bfs", "D300", threads=16)
            )
        for p in ("giraph", "pgxd"):
            assert tproc(p, "bfs", "D300", threads=32) < tproc(
                p, "bfs", "D300", threads=16
            )


class TestTable10:
    """Stress test: smallest dataset failing BFS on one machine."""

    PAPER = {
        "giraph": "G26",
        "graphx": "G25",
        "powergraph": "R5",
        "graphmat": "G26",
        "openg": "R5",
        "pgxd": "G25",
    }

    @pytest.mark.parametrize("platform,expected", sorted(PAPER.items()))
    def test_smallest_failing_dataset(self, platform, expected):
        failures = []
        for ds in sorted(
            DATASETS.values(), key=lambda d: (d.profile.scale, d.dataset_id)
        ):
            ok = fits(platform, "bfs", ds.dataset_id) and makespan(
                platform, "bfs", ds.dataset_id
            ) <= 3600
            if not ok:
                failures.append(ds.dataset_id)
        assert failures and failures[0] == expected

    def test_graph500_fails_where_datagen_succeeds(self):
        # Key §4.6 finding: Giraph and GraphMat fail on G26 but succeed
        # on D1000 of the same scale (9.0) — graph characteristics, not
        # size, cause the failure.
        for platform in ("giraph", "graphmat"):
            assert not fits(platform, "bfs", "G26")
            assert fits(platform, "bfs", "D1000")

    def test_powergraph_openg_process_largest_graphs(self):
        # Paper: PowerGraph and OpenG handle graphs up to scale 9.0.
        for platform in ("powergraph", "openg"):
            assert fits(platform, "bfs", "G26")
            assert fits(platform, "bfs", "D1000")


class TestTable11:
    """Variability: means and CVs, n = 10 (S: D300@1, D: D1000@16)."""

    @pytest.mark.parametrize(
        "platform,paper_cv",
        [
            ("giraph", 0.050),
            ("graphx", 0.026),
            ("powergraph", 0.015),
            ("graphmat", 0.097),
            ("openg", 0.048),
            ("pgxd", 0.082),
        ],
    )
    def test_single_node_cv_parameter(self, platform, paper_cv):
        assert model(platform).variability_cv(R()) == pytest.approx(paper_cv)

    def test_powergraph_least_variable(self):
        cvs = {p: model(p).variability_cv(R()) for p in PLATFORMS}
        assert min(cvs, key=cvs.get) == "powergraph"

    def test_all_cvs_at_most_ten_percent(self):
        # Paper: "All platforms have a CV of at most 10%".
        for p in PLATFORMS:
            assert model(p).variability_cv(R()) <= 0.10
            assert model(p).variability_cv(R(16)) <= 0.10

    def test_sampled_cv_close_to_parameter(self):
        m = model("giraph")
        profile = get_dataset("D300").profile
        base = m.processing_time("bfs", profile, R())
        samples = [
            m.apply_variability(base, R(), seed_key=("t11", i)) for i in range(200)
        ]
        import numpy as np

        arr = np.array(samples)
        assert arr.std() / arr.mean() == pytest.approx(0.05, rel=0.3)


class TestStrongScalability:
    """§4.4: BFS and PR on D1000(XL), 1-16 machines."""

    def test_giraph_two_machine_cliff(self):
        # "Giraph suffers a large performance hit when switching from 1
        # machine to a distributed setup with 2 machines." (The modeled
        # ratio is ~2x rather than larger because the single-machine run
        # is itself slowed by near-capacity memory pressure.)
        assert tproc("giraph", "bfs", "D1000", machines=2) > 1.8 * tproc(
            "giraph", "bfs", "D1000", machines=1
        )

    def test_giraph_pr_breaks_sla_on_two_machines_only(self):
        assert makespan("giraph", "pr", "D1000", machines=1) <= 3600
        assert makespan("giraph", "pr", "D1000", machines=2) > 3600
        assert makespan("giraph", "pr", "D1000", machines=4) <= 3600

    def test_giraph_recovers_with_machines(self):
        assert tproc("giraph", "bfs", "D1000", machines=16) < tproc(
            "giraph", "bfs", "D1000", machines=1
        )

    def test_graphx_needs_two_machines_for_bfs(self):
        assert not fits("graphx", "bfs", "D1000", machines=1)
        assert fits("graphx", "bfs", "D1000", machines=2)

    def test_graphx_needs_four_machines_for_pr(self):
        assert not fits("graphx", "pr", "D1000", machines=2)
        assert fits("graphx", "pr", "D1000", machines=4)

    def test_graphx_pr_flat_past_four_machines(self):
        # Paper: speedup 1.2 using 4x the resources.
        s = tproc("graphx", "pr", "D1000", machines=4) / tproc(
            "graphx", "pr", "D1000", machines=16
        )
        assert s == pytest.approx(1.2, rel=0.25)

    def test_graphx_bfs_speedup(self):
        # Paper: speedup 2.3 using 8x the resources (2 -> 16 machines).
        s = tproc("graphx", "bfs", "D1000", machines=2) / tproc(
            "graphx", "bfs", "D1000", machines=16
        )
        assert s == pytest.approx(2.3, rel=0.25)

    def test_powergraph_completes_on_any_machine_count(self):
        for machines in (1, 2, 4, 8, 16):
            assert fits("powergraph", "bfs", "D1000", machines=machines)

    def test_powergraph_pr_scales_poorly(self):
        # Paper: PR speedup only 1.8 (BFS reaches 6.9).
        s_pr = tproc("powergraph", "pr", "D1000", machines=1) / tproc(
            "powergraph", "pr", "D1000", machines=16
        )
        s_bfs = tproc("powergraph", "bfs", "D1000", machines=1) / tproc(
            "powergraph", "bfs", "D1000", machines=16
        )
        assert s_pr < s_bfs
        assert s_pr == pytest.approx(1.8, rel=0.6)

    def test_graphmat_pr_single_machine_swap_outlier(self):
        # Paper: "GraphMat shows a clear outlier for PR on a single
        # machine, most likely because of swapping."
        assert model("graphmat").swap_multiplier(
            "pr", get_dataset("D1000").profile, R(1)
        ) > 1.0
        assert tproc("graphmat", "pr", "D1000", machines=1) > tproc(
            "graphmat", "pr", "D1000", machines=2
        )

    def test_pgxd_fails_on_single_machine(self):
        assert not fits("pgxd", "bfs", "D1000", machines=1)
        assert not fits("pgxd", "pr", "D1000", machines=1)
        assert fits("pgxd", "bfs", "D1000", machines=2)

    def test_pgxd_bfs_subsecond_from_four_machines(self):
        assert tproc("pgxd", "bfs", "D1000", machines=4) < 1.5
        # "scales poorly past 4 nodes": 4x resources yield < 2x speedup.
        s = tproc("pgxd", "bfs", "D1000", machines=4) / tproc(
            "pgxd", "bfs", "D1000", machines=16
        )
        assert s < 2.5


class TestWeakScalability:
    """§4.5: G22@1 ... G26@16 machines."""

    SERIES = [("G22", 1), ("G23", 2), ("G24", 4), ("G25", 8), ("G26", 16)]

    def _series_times(self, platform, algorithm):
        times = []
        for dataset, machines in self.SERIES:
            if not fits(platform, algorithm, dataset, machines=machines):
                times.append(None)
                continue
            times.append(tproc(platform, algorithm, dataset, machines=machines))
        return times

    def test_nobody_achieves_ideal_weak_scaling(self):
        # Ideal: Tproc constant along the series. Paper: "None of the
        # tested platforms achieve optimal weak scalability."
        for platform in ("giraph", "graphx", "powergraph", "graphmat"):
            times = self._series_times(platform, "bfs")
            assert times[-1] > 1.5 * times[0]

    def test_graphx_worst_weak_scaler(self):
        # Paper: GraphX peaks at a 15.2x slowdown — the worst.
        slowdowns = {}
        for platform in ("giraph", "graphx", "powergraph", "graphmat"):
            times = self._series_times(platform, "pr")
            slowdowns[platform] = times[-1] / times[0]
        assert max(slowdowns, key=slowdowns.get) == "graphx"
        assert slowdowns["graphx"] > 10

    def test_giraph_worst_at_two_machines(self):
        times = self._series_times("giraph", "pr")
        assert times[1] == max(times)
        # "scales well from 4 to 16 machines": monotone improvement after.
        assert times[1] > times[2] > times[3] > times[4]

    def test_pgxd_fails_weak_configurations_on_memory(self):
        # Paper: "PGX.D fails in multiple configurations due to memory
        # limitations."
        failures = [
            (ds, m)
            for ds, m in self.SERIES
            for algorithm in ("bfs", "pr")
            if not fits("pgxd", algorithm, ds, machines=m)
        ]
        assert failures  # at least one (ours: G26 @ 16)

    def test_graphmat_scales_reasonably(self):
        times = self._series_times("graphmat", "bfs")
        assert times[-1] / times[0] < 10


class TestFigure4And6:
    """Baseline orderings from the dataset/algorithm variety experiments."""

    def test_two_orders_of_magnitude_spread(self):
        # Giraph and GraphX are ~2 orders of magnitude slower than
        # GraphMat and PGX.D for most datasets.
        for dataset in ("R3", "D300", "G23"):
            slow = min(tproc(p, "bfs", dataset) for p in ("giraph", "graphx"))
            fast = max(tproc(p, "bfs", dataset) for p in ("graphmat", "pgxd"))
            assert slow > 25 * fast

    def test_middle_tier_ordering(self):
        # PowerGraph and OpenG sit roughly an order of magnitude behind
        # the leaders but well ahead of the JVM platforms.
        for dataset in ("D300", "G23"):
            for p in ("powergraph", "openg"):
                assert tproc(p, "bfs", dataset) > tproc("graphmat", "bfs", dataset)
                assert tproc(p, "bfs", dataset) < tproc("giraph", "bfs", dataset)

    def test_openg_queue_bfs_gain_on_r2(self):
        # §4.1: OpenG's queue-based BFS shines on R2, whose BFS covers
        # only ~10% of the graph: it beats PowerGraph there despite
        # similar speed elsewhere.
        assert tproc("openg", "bfs", "R2") < tproc("powergraph", "bfs", "R2")

    def test_lcc_only_openg_and_powergraph(self):
        # §4.2 on R4(S) and D300(L).
        for dataset in ("R4", "D300"):
            for platform in ("openg", "powergraph"):
                assert fits(platform, "lcc", dataset)
                assert makespan(platform, "lcc", dataset) <= 3600
            assert not fits("graphmat", "lcc", dataset)
            assert makespan("giraph", "lcc", dataset) > 3600
            assert makespan("graphx", "lcc", dataset) > 3600

    def test_openg_best_on_cdlp(self):
        times = {p: tproc(p, "cdlp", "R4") for p in PLATFORMS if p != "graphx"}
        assert min(times, key=times.get) == "openg"

    def test_pgxd_wcc_degrades_with_many_components(self):
        # §4.2: WCC on a graph with many components (R4) costs PGX.D
        # proportionally more than on a single-component graph (D300).
        r4 = tproc("pgxd", "wcc", "R4") / tproc("pgxd", "bfs", "R4")
        d300 = tproc("pgxd", "wcc", "D300") / tproc("pgxd", "bfs", "D300")
        assert r4 > 1.4 * d300
        assert r4 > 3.0

    def test_eps_varies_across_datasets(self):
        # §4.1: "all platforms show signs of dataset sensitivity".
        for platform in ("powergraph", "giraph"):
            eps = []
            for dataset in ("R1", "R4", "D300", "G23"):
                profile = get_dataset(dataset).profile
                eps.append(profile.num_edges / tproc(platform, "bfs", dataset))
            assert max(eps) > 2 * min(eps)
