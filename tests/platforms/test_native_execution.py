"""Tests for native-model driver execution (Pregel/GAS/SpMV backends)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.platforms.registry import create_driver

NATIVE_PLATFORMS = ("giraph", "powergraph", "graphmat")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(50, 0.1, weighted=True, seed=6, name="native-test")


class TestNativeMode:
    @pytest.mark.parametrize("platform", NATIVE_PLATFORMS)
    @pytest.mark.parametrize("algorithm", ["bfs", "pr", "wcc", "cdlp", "sssp"])
    def test_native_output_matches_reference(self, platform, algorithm, graph):
        native = create_driver(platform, execution="native")
        reference = create_driver(platform)
        params = (
            {"source_vertex": int(graph.vertex_ids[0])}
            if algorithm in ("bfs", "sssp")
            else {}
        )
        native_job = native.execute(native.upload(graph), algorithm, params)
        reference_job = reference.execute(
            reference.upload(graph), algorithm, params
        )
        assert native_job.succeeded
        if algorithm == "pr":
            assert np.allclose(native_job.output, reference_job.output,
                               rtol=1e-9)
        else:
            assert np.array_equal(native_job.output, reference_job.output)

    @pytest.mark.parametrize("platform", NATIVE_PLATFORMS)
    def test_lcc_falls_back_to_reference(self, platform, graph):
        driver = create_driver(platform, execution="native")
        assert driver._native_runner("lcc") is None
        job = driver.execute(driver.upload(graph), "lcc")
        assert job.succeeded

    def test_validation_passes_through_runner(self, graph):
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner

        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        runner._drivers["giraph"] = create_driver("giraph", execution="native")
        result = runner.run_job("giraph", "R1", "bfs")
        assert result.validated is True

    def test_invalid_execution_mode(self):
        with pytest.raises(ConfigurationError):
            create_driver("giraph", execution="quantum")

    def test_default_is_reference(self):
        assert create_driver("giraph").execution == "reference"

    def test_platforms_without_native_mode_still_work(self, graph):
        driver = create_driver("openg")
        assert driver.execution == "reference"
        job = driver.execute(driver.upload(graph), "wcc")
        assert job.succeeded
