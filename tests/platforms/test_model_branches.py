"""Branch-coverage tests for performance-model paths not hit elsewhere."""

import pytest

from repro.platforms.cluster import ClusterResources
from repro.platforms.model import PerformanceModel, WorkloadProfile


def make_profile(**overrides):
    defaults = dict(
        name="branch-test",
        num_vertices=10_000_000,
        num_edges=500_000_000,
        directed=False,
        weighted=False,
        mean_degree=100.0,
        degree_cv2=1.0,
        memory_skew=1.0,
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


def R(machines=1, threads=None):
    return ClusterResources(machines=machines, threads=threads)


class TestRateModifiers:
    def test_scale_sensitivity_slows_large_inputs(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 scale_sensitivity=2.0)
        flat = PerformanceModel(base_evps=1e8, tproc_floor=0.0)
        big = make_profile()
        assert model.processing_time("bfs", big, R()) > flat.processing_time(
            "bfs", big, R()
        )

    def test_scale_sensitivity_inactive_below_reference(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 scale_sensitivity=5.0)
        small = make_profile(num_vertices=1_000_000, num_edges=10_000_000,
                             mean_degree=20.0)
        flat = PerformanceModel(base_evps=1e8, tproc_floor=0.0)
        assert model.processing_time("bfs", small, R()) == pytest.approx(
            flat.processing_time("bfs", small, R())
        )

    def test_rate_skew_sensitivity(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 rate_skew_sensitivity=1.0)
        skewed = make_profile(memory_skew=1.5,
                              num_vertices=1_000_000,
                              num_edges=10_000_000, mean_degree=20.0)
        plain = make_profile(num_vertices=1_000_000,
                             num_edges=10_000_000, mean_degree=20.0)
        assert model.processing_time("bfs", skewed, R()) == pytest.approx(
            1.5 * model.processing_time("bfs", plain, R())
        )


class TestFallbackTables:
    def test_default_parallel_fraction_star(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 parallel_fraction={"*": 0.5})
        assert model._fraction("cdlp") == 0.5

    def test_default_exponent_star(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 dist_exponent={"*": 0.4})
        assert model._exponent("wcc") == 0.4

    def test_hardcoded_defaults_when_tables_empty(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0)
        assert model._fraction("bfs") == 0.9
        assert model._exponent("bfs") == 0.8

    def test_shock_adjust_default_is_one(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 dist_shock=2.0)
        assert model.machine_scaling_factor("bfs", 2) == pytest.approx(0.5)


class TestDistFloor:
    def test_applied_only_when_distributed(self):
        model = PerformanceModel(base_evps=1e12, tproc_floor=0.0,
                                 dist_floor=5.0, dist_shock=1.0,
                                 dist_exponent={"*": 1.0})
        profile = make_profile(num_vertices=100, num_edges=1000,
                               mean_degree=20.0)
        single = model.processing_time("bfs", profile, R(1))
        double = model.processing_time("bfs", profile, R(2))
        assert single < 1.0
        assert double == pytest.approx(single * 0.5 + 5.0, abs=0.5)


class TestMemoryEdges:
    def test_capacity_is_95_percent(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0)
        assert model.memory_capacity_per_machine(R()) == pytest.approx(
            0.95 * 64 * 2 ** 30
        )

    def test_swap_multiplier_caps_at_penalty(self):
        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0,
                                 bytes_per_element=1e6,
                                 swap_threshold=0.5, swap_penalty=3.0)
        # Demand far above capacity: multiplier saturates at the penalty
        # (the job would OOM before running; the multiplier stays bounded).
        profile = make_profile()
        assert model.swap_multiplier("bfs", profile, R()) == pytest.approx(3.0)

    def test_work_elements_unknown_algorithm(self):
        from repro.exceptions import UnsupportedAlgorithmError

        model = PerformanceModel(base_evps=1e8, tproc_floor=0.0)
        with pytest.raises(UnsupportedAlgorithmError):
            model.work_elements("dfs", make_profile())


class TestWorkloadProfileEdges:
    def test_empty_profile_scale(self):
        profile = WorkloadProfile(
            name="empty", num_vertices=0, num_edges=0, directed=False,
            weighted=False, mean_degree=0.0, degree_cv2=0.0,
        )
        assert profile.scale == 0.0
        assert profile.elements == 0
