"""Tests for the cluster resource model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.platforms.cluster import DAS5_MACHINE, ClusterResources, MachineSpec


class TestMachineSpec:
    def test_das5_matches_table7(self):
        # Table 7: 2x Xeon E5-2630, 16 cores / 32 HT threads, 64 GiB.
        assert DAS5_MACHINE.cores == 16
        assert DAS5_MACHINE.threads == 32
        assert DAS5_MACHINE.memory_bytes == 64 * 2 ** 30

    def test_threads_below_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", cores=8, threads=4, memory_bytes=1, network_gbps=1)

    def test_nonpositive_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", cores=1, threads=1, memory_bytes=0, network_gbps=1)


class TestClusterResources:
    def test_defaults(self):
        r = ClusterResources()
        assert r.machines == 1
        assert r.threads_per_machine == 32
        assert not r.distributed

    def test_distributed_flag(self):
        assert ClusterResources(machines=2).distributed

    def test_total_memory(self):
        r = ClusterResources(machines=4)
        assert r.total_memory_bytes == 4 * 64 * 2 ** 30

    def test_thread_override(self):
        assert ClusterResources(threads=8).threads_per_machine == 8

    def test_invalid_threads(self):
        with pytest.raises(ConfigurationError):
            ClusterResources(threads=64)

    def test_invalid_machines(self):
        with pytest.raises(ConfigurationError):
            ClusterResources(machines=0)

    def test_describe(self):
        text = ClusterResources(machines=2, threads=16).describe()
        assert "2 x" in text and "16 threads" in text
