"""Tests for the measured reference platform (R5 extensibility proof)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.platforms.base import JobStatus
from repro.platforms.registry import EXTRA_PLATFORMS, PLATFORMS, create_driver


@pytest.fixture
def driver():
    return create_driver("pythonref")


@pytest.fixture
def handle(driver):
    return driver.upload(erdos_renyi(80, 0.1, weighted=True, seed=4))


class TestRoster:
    def test_not_in_table5(self):
        assert "pythonref" not in PLATFORMS
        assert "pythonref" in EXTRA_PLATFORMS

    def test_info(self, driver):
        assert driver.info.type_code == "C, S"
        assert driver.name == "PythonRef"

    def test_supports_everything(self, driver):
        assert len(driver.supported_algorithms()) == 6


class TestMeasuredExecution:
    def test_tproc_is_wall_clock(self, driver, handle):
        result = driver.execute(handle, "pr")
        assert result.status is JobStatus.SUCCEEDED
        assert result.modeled_processing_time == result.measured_processing_seconds
        assert 0 < result.modeled_processing_time < 5

    def test_no_jitter(self, driver, handle):
        # The reference platform reports real times, which naturally
        # vary; there is no seeded jitter layered on top.
        assert driver.model.variability_cv_single == 0.0

    def test_output_correct(self, driver, handle):
        from repro.algorithms.pagerank import pagerank

        result = driver.execute(handle, "pr")
        assert np.allclose(result.output, pagerank(handle.graph))

    def test_events_cover_makespan(self, driver, handle):
        result = driver.execute(handle, "wcc")
        assert [e["phase"] for e in result.events] == [
            "startup", "load", "processing", "cleanup",
        ]
        assert result.events[2]["end"] <= result.modeled_makespan + 1e-9

    def test_granula_archive_builds(self, driver, handle):
        from repro.granula.archiver import build_archive

        result = driver.execute(handle, "bfs", {"source_vertex": 0})
        archive = build_archive(result)
        assert archive.processing_time == pytest.approx(
            result.modeled_processing_time
        )


class TestHarnessIntegration:
    def test_runs_through_the_runner(self):
        config = BenchmarkConfig(
            platforms=["pythonref"], datasets=["R1"], algorithms=["bfs", "wcc"]
        )
        db = BenchmarkRunner(config).run()
        assert len(db) == 2
        for result in db:
            assert result.succeeded
            assert result.validated is True
            assert result.sla_compliant
            # EVPS is computed against the *full-scale* catalog counts
            # but measured miniature time — meaningless as an absolute,
            # still recorded consistently.
            assert result.eps > 0

    def test_multi_machine_rejected(self, driver, handle):
        from repro.exceptions import ConfigurationError
        from repro.platforms.cluster import ClusterResources

        with pytest.raises(ConfigurationError):
            driver.execute(
                handle, "wcc", resources=ClusterResources(machines=2)
            )
