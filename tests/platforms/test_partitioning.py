"""Tests for the edge-cut and vertex-cut partitioners."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.datagen.graph500 import graph500
from repro.graph.generators import erdos_renyi, star_graph
from repro.platforms.partitioning import (
    compare_strategies,
    greedy_vertex_cut,
    hash_edge_cut,
)


@pytest.fixture(scope="module")
def skewed():
    """A power-law Graph500 miniature (hub-heavy)."""
    return graph500(9, edgefactor=8, seed=3)


@pytest.fixture(scope="module")
def uniform():
    return erdos_renyi(200, 0.05, seed=3)


class TestHashEdgeCut:
    def test_every_vertex_owned_once(self, uniform):
        part = hash_edge_cut(uniform, 4, seed=1)
        assert len(part.vertex_owner) == uniform.num_vertices
        assert set(np.unique(part.vertex_owner)) <= {0, 1, 2, 3}

    def test_edges_follow_source(self, uniform):
        part = hash_edge_cut(uniform, 4, seed=1)
        assert np.array_equal(
            part.edge_owner, part.vertex_owner[uniform.edge_src]
        )

    def test_single_machine_no_replication(self, uniform):
        part = hash_edge_cut(uniform, 1)
        assert part.stats.replication_factor == pytest.approx(1.0)
        assert part.stats.cut_fraction == 0.0

    def test_replication_grows_with_machines(self, uniform):
        r2 = hash_edge_cut(uniform, 2, seed=1).stats.replication_factor
        r8 = hash_edge_cut(uniform, 8, seed=1).stats.replication_factor
        assert 1.0 < r2 < r8

    def test_cut_fraction_near_random_expectation(self, uniform):
        # Hash partitioning cuts ~ (1 - 1/M) of edges.
        stats = hash_edge_cut(uniform, 4, seed=1).stats
        assert stats.cut_fraction == pytest.approx(0.75, abs=0.08)

    def test_deterministic_per_seed(self, uniform):
        a = hash_edge_cut(uniform, 4, seed=5)
        b = hash_edge_cut(uniform, 4, seed=5)
        assert np.array_equal(a.vertex_owner, b.vertex_owner)

    def test_empty_graph_rejected(self):
        from repro.graph.graph import Graph

        empty = Graph.from_edges([], directed=False, vertices=[])
        with pytest.raises(ConfigurationError):
            hash_edge_cut(empty, 2)

    def test_invalid_machines(self, uniform):
        with pytest.raises(ConfigurationError):
            hash_edge_cut(uniform, 0)


class TestGreedyVertexCut:
    def test_every_edge_placed(self, uniform):
        part = greedy_vertex_cut(uniform, 4)
        assert len(part.edge_owner) == uniform.num_edges

    def test_replicas_cover_incident_edges(self, uniform):
        part = greedy_vertex_cut(uniform, 4)
        for k in range(uniform.num_edges):
            machine = part.edge_owner[k]
            assert part.replicas[machine, uniform.edge_src[k]]
            assert part.replicas[machine, uniform.edge_dst[k]]

    def test_replication_bounded_by_machines(self, skewed):
        part = greedy_vertex_cut(skewed, 4)
        per_vertex = part.replicas.sum(axis=0)
        assert per_vertex.max() <= 4

    def test_single_machine_trivial(self, uniform):
        part = greedy_vertex_cut(uniform, 1)
        assert part.stats.replication_factor == pytest.approx(1.0)

    def test_edge_load_balanced(self, skewed):
        stats = greedy_vertex_cut(skewed, 4).stats
        # Greedy placement keeps edge load within ~15% of perfect.
        assert stats.edge_imbalance < 1.15

    def test_star_graph_hub_replicated_not_exploded(self):
        # A hub with 64 leaves: vertex-cut replicates the hub on at most
        # `machines` machines, one edge per leaf.
        part = greedy_vertex_cut(star_graph(64), 4)
        hub_replicas = part.replicas[:, 0].sum()
        assert hub_replicas <= 4


class TestPowerGraphDesignClaim:
    """§3.1: PowerGraph is 'designed for real-world graphs which have a
    skewed power-law degree distribution' — vertex-cuts beat edge-cuts
    exactly there."""

    def test_vertex_cut_replicates_less_on_skewed_graphs(self, skewed):
        edge_cut, vertex_cut = compare_strategies(skewed, 8, seed=2)
        assert vertex_cut.replication_factor < edge_cut.replication_factor

    def test_vertex_cut_balances_edges_better_on_skewed_graphs(self, skewed):
        edge_cut, vertex_cut = compare_strategies(skewed, 8, seed=2)
        assert vertex_cut.edge_imbalance < edge_cut.edge_imbalance

    def test_advantage_shrinks_on_uniform_graphs(self, skewed, uniform):
        ec_s, vc_s = compare_strategies(skewed, 8, seed=2)
        ec_u, vc_u = compare_strategies(uniform, 8, seed=2)
        advantage_skewed = ec_s.replication_factor / vc_s.replication_factor
        advantage_uniform = ec_u.replication_factor / vc_u.replication_factor
        assert advantage_skewed > advantage_uniform
