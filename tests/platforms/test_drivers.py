"""Tests for the six platform drivers' roster data and quirks."""

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.platforms.cluster import ClusterResources
from repro.platforms.registry import (
    PLATFORMS,
    create_driver,
    get_platform,
    platform_names,
)


class TestRegistry:
    def test_six_platforms_in_table5_order(self):
        assert platform_names() == [
            "giraph", "graphx", "powergraph", "graphmat", "openg", "pgxd",
        ]

    def test_unknown_platform(self):
        with pytest.raises(ConfigurationError, match="unknown platform"):
            get_platform("neo4j")

    def test_unknown_driver(self):
        with pytest.raises(ConfigurationError):
            create_driver("neo4j")

    def test_case_insensitive(self):
        assert get_platform("GiRaPh").name == "Giraph"


class TestTable5Roster:
    @pytest.mark.parametrize(
        "name,type_code,vendor,language,model,version",
        [
            ("giraph", "C, D", "Apache", "Java", "Pregel", "1.1.0"),
            ("graphx", "C, D", "Apache", "Scala", "Spark", "1.6.0"),
            ("powergraph", "C, D", "CMU", "C++", "GAS", "2.2"),
            ("graphmat", "I, D", "Intel", "C++", "SpMV", "Feb '16"),
            ("openg", "I, S", "Georgia Tech", "C++", "Native code", "Feb '16"),
            ("pgxd", "I, D", "Oracle", "C++", "Push-pull", "Feb '16"),
        ],
    )
    def test_roster_entry(self, name, type_code, vendor, language, model, version):
        info = get_platform(name)
        assert info.type_code == type_code
        assert info.vendor == vendor
        assert info.language == language
        assert info.programming_model == model
        assert info.version == version

    def test_three_community_three_industry(self):
        origins = [info.origin for info, _ in PLATFORMS.values()]
        assert origins.count("community") == 3
        assert origins.count("industry") == 3

    def test_only_openg_non_distributed(self):
        for name, (info, _) in PLATFORMS.items():
            assert info.distributed == (name != "openg")


class TestQuirks:
    def test_pgxd_has_no_lcc(self):
        driver = create_driver("pgxd")
        assert not driver.supports("lcc")
        assert driver.supports("bfs")

    def test_graphx_cdlp_crashes(self):
        assert "cdlp" in create_driver("graphx").crash_algorithms

    def test_openg_queue_based_bfs(self):
        assert create_driver("openg").model.queue_based_bfs

    def test_pgxd_wcc_component_penalty(self):
        assert create_driver("pgxd").model.wcc_component_penalty > 0

    def test_all_other_platforms_support_all_algorithms(self):
        for name in ("giraph", "powergraph", "graphmat", "openg"):
            assert len(create_driver(name).supported_algorithms()) == 6


class TestGraphMatBackend:
    """Paper §4.2: manual S/D selection; SSSP requires D."""

    @pytest.fixture
    def handle(self):
        driver = create_driver("graphmat")
        graph = erdos_renyi(40, 0.1, weighted=True, seed=2)
        return driver, driver.upload(graph)

    def test_default_single_machine_uses_s(self, handle):
        driver, h = handle
        result = driver.execute(h, "bfs", {"source_vertex": 0})
        assert result.backend == "S"

    def test_multi_machine_forces_d(self, handle):
        driver, h = handle
        result = driver.execute(
            h, "bfs", {"source_vertex": 0},
            resources=ClusterResources(machines=4),
        )
        assert result.backend == "D"

    def test_sssp_forces_d_even_on_one_machine(self, handle):
        driver, h = handle
        result = driver.execute(h, "sssp", {"source_vertex": 0})
        assert result.backend == "D"

    def test_explicit_backend_preference(self):
        driver = create_driver("graphmat", backend="D")
        graph = erdos_renyi(40, 0.1, seed=2)
        h = driver.upload(graph)
        assert driver.execute(h, "wcc").backend == "D"

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            create_driver("graphmat", backend="X")

    def test_other_platforms_report_no_backend(self):
        driver = create_driver("giraph")
        h = driver.upload(erdos_renyi(40, 0.1, seed=2))
        assert driver.execute(h, "wcc").backend == ""
