"""Parity oracle for the sharded engine (ROADMAP item 3).

The partitioned engine's core contract: for every core algorithm, ANY
shard count, either partitioning strategy, and either transport, the
finalized output is **byte-identical** (through the canonical output
codec) to the single-process engine it shards. This suite is the
oracle:

* the full matrix — six algorithms x miniature graphs x shard counts
  {1,2,3,4} x both strategies — on the inline transport;
* a real-process subset on the pipes transport;
* partitioner invariants on seeded random graphs (every vertex owned
  exactly once, every cut edge mirrored on both sides, shard sizes
  within the strategy's balance bound);
* exchange determinism: permuting batch delivery order cannot change
  the delivered state;
* chaos: a shard SIGKILLed mid-superstep is relaunched by the
  supervisor and the run still completes bit-identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.lcc import local_clustering_coefficient
from repro.engines import gas, pregel
from repro.engines.partitioned import (
    PARTITION_STRATEGIES,
    STEP_FAULT_POINT,
    Outbox,
    PartitionedEngine,
    deliver,
    partition_graph,
    run_algorithm,
    spec_for,
)
from repro.engines.pregel import HISTOGRAM_COMBINER, MIN_COMBINER
from repro.exceptions import ConfigurationError

from tests.algorithms.test_properties import random_graphs

SHARD_COUNTS = (1, 2, 3, 4)

#: name -> (model, algorithm, params, baseline runner, graph fixtures).
#: Baselines are the single-process engines the partitioned engine
#: shards — the bit-identity contract is against them, per model.
CASES = {
    "pregel-bfs": (
        "pregel", "bfs", lambda g: {"source_vertex": int(g.vertex_ids[0])},
        lambda g: pregel.run_bfs(g, int(g.vertex_ids[0])),
        ("er_undirected", "er_directed", "two_triangles"),
    ),
    "pregel-sssp": (
        "pregel", "sssp", lambda g: {"source_vertex": int(g.vertex_ids[0])},
        lambda g: pregel.run_sssp(g, int(g.vertex_ids[0])),
        ("er_weighted",),
    ),
    "pregel-wcc": (
        "pregel", "wcc", lambda g: {},
        pregel.run_wcc,
        ("er_undirected", "er_directed", "two_triangles"),
    ),
    "pregel-cdlp": (
        "pregel", "cdlp", lambda g: {"iterations": 5},
        lambda g: pregel.run_cdlp(g, 5),
        ("er_undirected", "er_directed"),
    ),
    "pregel-pr": (
        "pregel", "pr", lambda g: {"iterations": 20},
        lambda g: pregel.run_pagerank(g, 20),
        ("er_undirected", "er_directed"),
    ),
    "gas-bfs": (
        "gas", "bfs", lambda g: {"source_vertex": int(g.vertex_ids[0])},
        lambda g: gas.run_bfs(g, int(g.vertex_ids[0])),
        ("er_undirected", "er_directed", "two_triangles"),
    ),
    "gas-sssp": (
        "gas", "sssp", lambda g: {"source_vertex": int(g.vertex_ids[0])},
        lambda g: gas.run_sssp(g, int(g.vertex_ids[0])),
        ("er_weighted",),
    ),
    "gas-wcc": (
        "gas", "wcc", lambda g: {},
        gas.run_wcc,
        ("er_undirected", "er_directed"),
    ),
    "gas-cdlp": (
        "gas", "cdlp", lambda g: {"iterations": 5},
        lambda g: gas.run_cdlp(g, 5),
        ("er_undirected", "er_directed"),
    ),
    "gas-pr": (
        "gas", "pr", lambda g: {"iterations": 20},
        lambda g: gas.run_pagerank(g, 20),
        ("er_undirected", "er_directed"),
    ),
    "lcc": (
        "lcc", "lcc", lambda g: {},
        local_clustering_coefficient,
        ("er_undirected", "grid4x5", "two_triangles"),
    ),
}


class TestParityMatrix:
    """All six algorithms x miniatures x shards 1-4 x both strategies."""

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    def test_bit_identical(
        self, case, shards, strategy, request, canonical_bytes
    ):
        model, algorithm, make_params, baseline, fixtures = CASES[case]
        for fixture in fixtures:
            graph = request.getfixturevalue(fixture)
            expected = baseline(graph)
            actual = run_algorithm(
                graph,
                algorithm,
                make_params(graph),
                partitions=shards,
                strategy=strategy,
                model=model,
                transport="inline",
            )
            assert actual.dtype == expected.dtype, fixture
            assert canonical_bytes(graph, actual, algorithm) == \
                canonical_bytes(graph, expected, algorithm), (
                f"{case} on {fixture}: {shards} {strategy} shard(s) "
                f"diverged from the single-process engine"
            )


class TestPipesTransport:
    """Real worker processes: the same contract over the wire."""

    @pytest.mark.parametrize("case", ["pregel-bfs", "pregel-cdlp", "gas-pr"])
    @pytest.mark.parametrize("shards", [2, 3])
    def test_bit_identical_over_pipes(
        self, case, shards, er_undirected, canonical_bytes
    ):
        model, algorithm, make_params, baseline, _ = CASES[case]
        graph = er_undirected
        expected = baseline(graph)
        actual = run_algorithm(
            graph,
            algorithm,
            make_params(graph),
            partitions=shards,
            model=model,
            transport="pipes",
        )
        assert canonical_bytes(graph, actual, algorithm) == \
            canonical_bytes(graph, expected, algorithm)

    def test_sssp_weighted_over_pipes(self, er_weighted, canonical_bytes):
        source = int(er_weighted.vertex_ids[0])
        expected = pregel.run_sssp(er_weighted, source)
        actual = run_algorithm(
            er_weighted,
            "sssp",
            {"source_vertex": source},
            partitions=2,
            transport="pipes",
        )
        assert canonical_bytes(er_weighted, actual, "sssp") == \
            canonical_bytes(er_weighted, expected, "sssp")


class TestPartitionerInvariants:
    """Property tests over seeded random graphs (satellite 1)."""

    @settings(max_examples=25, deadline=None)
    @given(random_graphs(max_vertices=24))
    def test_invariants_hold(self, graph):
        for shards in (1, 2, 3):
            for strategy in PARTITION_STRATEGIES:
                pset = partition_graph(graph, shards, strategy)
                self._check(graph, pset)

    @pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_invariants_on_miniatures(
        self, er_directed, shards, strategy
    ):
        self._check(er_directed, partition_graph(er_directed, shards, strategy))

    @staticmethod
    def _check(graph, pset):
        n = graph.num_vertices
        # Every vertex owned exactly once: the shards' owned arrays
        # partition [0, n), and the owner map agrees with them.
        seen = np.concatenate([s.owned for s in pset.shards]) \
            if pset.shards else np.empty(0, dtype=np.int64)
        assert sorted(seen.tolist()) == list(range(n))
        for shard in pset.shards:
            assert all(pset.owner_of(int(v)) == shard.shard_id
                       for v in shard.owned)
            # Shard sizes within the strategy's balance bound.
            assert shard.size <= pset.balance_bound()
        # Every cut edge mirrored on BOTH incident shards.
        mirrors = [set(s.mirrors.tolist()) for s in pset.shards]
        counted = 0
        for u, v in zip(graph.edge_src.tolist(), graph.edge_dst.tolist()):
            if pset.owner_of(u) == pset.owner_of(v):
                continue
            counted += 1
            assert v in mirrors[pset.owner_of(u)]
            assert u in mirrors[pset.owner_of(v)]
        assert counted == pset.cut_edges
        assert 0.0 <= pset.cut_fraction <= 1.0
        # Mirrors are never owned by the shard that mirrors them.
        for shard in pset.shards:
            assert not set(shard.owned.tolist()) & set(shard.mirrors.tolist())

    def test_single_shard_owns_everything(self, er_undirected):
        pset = partition_graph(er_undirected, 1)
        assert pset.shards[0].size == er_undirected.num_vertices
        assert pset.cut_edges == 0
        assert len(pset.shards[0].mirrors) == 0

    def test_hash_stable_across_calls(self, er_undirected):
        a = partition_graph(er_undirected, 3, "hash")
        b = partition_graph(er_undirected, 3, "hash")
        assert np.array_equal(a.owner, b.owner)

    def test_range_blocks_contiguous(self, er_undirected):
        pset = partition_graph(er_undirected, 3, "range")
        for shard in pset.shards:
            owned = shard.owned
            assert np.array_equal(
                owned, np.arange(owned[0], owned[-1] + 1)
            )

    def test_rejects_bad_inputs(self, er_undirected):
        with pytest.raises(ConfigurationError):
            partition_graph(er_undirected, 0)
        with pytest.raises(ConfigurationError):
            partition_graph(er_undirected, 2, "random")


class TestExchangeDeterminism:
    """Permuting batch arrival order cannot change delivered state."""

    @staticmethod
    def _batches(combiner, sends):
        outboxes = {}
        for src_shard, sender, target, message in sends:
            outbox = outboxes.get(src_shard)
            if outbox is None:
                owner = np.zeros(64, dtype=np.int64)  # everything -> shard 0
                outbox = Outbox(
                    owner=owner, num_shards=4, src_shard=src_shard,
                    superstep=0, combiner=combiner,
                )
                outboxes[src_shard] = outbox
            outbox.send(sender, target, message)
        batches = []
        for outbox in outboxes.values():
            batches.extend(outbox.batches())
        return batches

    def test_combined_delivery_order_independent(self):
        sends = [
            (1, 10, 3, 7), (1, 11, 3, 4), (2, 20, 3, 9),
            (2, 21, 5, 2), (3, 30, 5, 8), (3, 31, 3, 1),
        ]
        batches = self._batches(MIN_COMBINER, sends)
        forward = deliver(batches, MIN_COMBINER)
        backward = deliver(list(reversed(batches)), MIN_COMBINER)
        rotated = deliver(batches[1:] + batches[:1], MIN_COMBINER)
        assert forward == backward == rotated
        assert forward[3] == [1]  # min across all three source shards

    def test_histogram_delivery_order_independent(self):
        sends = [
            (1, 10, 3, "a"), (1, 11, 3, "b"), (2, 20, 3, "a"),
            (3, 30, 3, "b"), (3, 31, 3, "a"),
        ]
        batches = self._batches(HISTOGRAM_COMBINER, sends)
        forward = deliver(batches, HISTOGRAM_COMBINER)
        backward = deliver(list(reversed(batches)), HISTOGRAM_COMBINER)
        assert forward == backward
        # The exact merged multiset, independent of arrival order.
        assert sorted(forward[3]) == ["a", "a", "a", "b", "b"]

    def test_tagged_delivery_sorts_by_sender_seq(self):
        sends = [
            (1, 10, 3, 0.5), (1, 10, 3, 0.25), (2, 20, 3, 0.125),
            (2, 9, 3, 1.0),
        ]
        batches = self._batches(None, sends)
        forward = deliver(batches, None)
        backward = deliver(list(reversed(batches)), None)
        assert forward == backward
        # (sender, seq) order: sender 9 first, then 10's two messages in
        # send order, then 20 — regardless of batch arrival order.
        assert forward[3] == [1.0, 0.5, 0.25, 0.125]

    def test_engine_state_identical_across_strategies_and_shards(
        self, er_undirected
    ):
        # End-to-end restatement: the delivered-state determinism above
        # is what makes every placement agree bitwise.
        outputs = {
            run_algorithm(
                er_undirected, "pr", {"iterations": 15},
                partitions=shards, strategy=strategy, transport="inline",
            ).tobytes()
            for shards in SHARD_COUNTS
            for strategy in PARTITION_STRATEGIES
        }
        assert len(outputs) == 1


class TestChaosSupervision:
    """SIGKILL a shard mid-superstep; the run must still be bit-perfect."""

    def _chaos_plan(self, after):
        return {
            "seed": 1,
            "faults": [
                {
                    "point": STEP_FAULT_POINT,
                    "kind": "kill",
                    "after": after,
                    "times": 1,
                }
            ],
        }

    def test_killed_shard_relaunched_bit_identical(self, er_undirected):
        expected = pregel.run_pagerank(er_undirected, 20)
        engine = PartitionedEngine(
            er_undirected,
            partitions=2,
            transport="pipes",
            chaos_plan=self._chaos_plan(after=2),
        )
        actual = engine.run(spec_for("pr", {"iterations": 20}))
        assert engine.respawns >= 1, "chaos plan never fired"
        assert actual.tobytes() == expected.tobytes()
        assert actual.dtype == expected.dtype

    def test_kill_during_gas_rounds(self, er_undirected):
        expected = gas.run_wcc(er_undirected)
        engine = PartitionedEngine(
            er_undirected,
            partitions=2,
            transport="pipes",
            chaos_plan=self._chaos_plan(after=1),
        )
        actual = engine.run(spec_for("wcc", None, model="gas"))
        assert engine.respawns >= 1
        assert actual.tobytes() == expected.tobytes()
