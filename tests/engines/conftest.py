"""Shared fixtures for the engine test suite.

Hoisted here so the equivalence, mechanics, and partitioned-parity
suites agree on one engine roster, one canonical-bytes helper, and one
stock of tiny probe programs instead of redefining them per file.
"""

import numpy as np
import pytest

from repro.algorithms.output_io import write_output
from repro.engines import gas, pregel, spmv
from repro.engines.gas import GASProgram

#: The three single-process programming models (paper §2.2.3).
ENGINES = {"pregel": pregel, "gas": gas, "spmv": spmv}


@pytest.fixture(params=sorted(ENGINES))
def engine(request):
    """One single-process engine module per parametrized run."""
    return ENGINES[request.param]


@pytest.fixture
def canonical_bytes(tmp_path):
    """Callable rendering a per-vertex array to canonical output bytes.

    Goes through :func:`repro.algorithms.output_io.write_output` — the
    exact codec validation and submissions use — so "byte-identical"
    in the parity suite means identical *files*, not just close arrays.
    """
    counter = {"n": 0}

    def render(graph, values, algorithm: str) -> bytes:
        counter["n"] += 1
        path = tmp_path / f"out-{counter['n']}.txt"
        write_output(graph, values, path, algorithm=algorithm)
        return path.read_bytes()

    return render


def min_id_gas_program() -> GASProgram:
    """The smallest useful GAS program: converge every vertex to the
    minimum external id in its component (used by mechanics tests)."""
    return GASProgram(
        name="min-id",
        init=lambda g, v: int(g.vertex_ids[v]),
        gather=lambda u, w: u,
        gather_sum=min,
        gather_zero=np.iinfo(np.int64).max,
        apply=lambda old, gathered: min(old, gathered),
    )
