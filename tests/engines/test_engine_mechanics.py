"""Tests for the execution mechanics of the three engines themselves."""

import numpy as np
import pytest

from repro.engines.gas import GASEngine, GASProgram
from repro.engines.pregel import PregelEngine, VertexProgram
from repro.engines.spmv import MIN_PLUS, OR_AND, PLUS_TIMES, SpMVEngine
from repro.graph.generators import path_graph, star_graph
from repro.graph.graph import Graph

from tests.engines.conftest import min_id_gas_program


class TestPregelMechanics:
    def test_supersteps_counted(self, path5):
        from repro.engines.pregel import bfs_program

        program, _ = bfs_program(path5, 0)
        _, supersteps = PregelEngine(path5).run(program)
        # A 5-vertex path needs the initial superstep plus one wave per
        # level plus the final quiet step.
        assert 5 <= supersteps <= 6

    def test_halted_vertices_not_recomputed(self):
        calls = []

        def init(g, v):
            return 0

        def compute(ctx, messages):
            calls.append((ctx.superstep, ctx.vertex))
            ctx.vote_to_halt()

        graph = path_graph(3)
        PregelEngine(graph).run(VertexProgram("noop", init, compute))
        # Everyone halts in superstep 0 and never runs again.
        assert {s for s, _ in calls} == {0}

    def test_message_reactivates_halted_vertex(self):
        log = []

        def init(g, v):
            return None

        def compute(ctx, messages):
            log.append((ctx.superstep, ctx.vertex, tuple(messages)))
            if ctx.superstep == 0 and ctx.vertex == 0:
                ctx.send_message_to(1, "wake")
            ctx.vote_to_halt()

        PregelEngine(path_graph(3)).run(VertexProgram("wake", init, compute))
        woken = [entry for entry in log if entry[0] == 1]
        assert woken == [(1, 1, ("wake",))]

    def test_superstep_limit_respected(self):
        def init(g, v):
            return 0

        def compute(ctx, messages):
            ctx.send_message_to(ctx.vertex, "again")  # never quiesces

        _, supersteps = PregelEngine(path_graph(2)).run(
            VertexProgram("loop", init, compute), superstep_limit=7
        )
        assert supersteps == 7


class TestGASMechanics:
    def test_active_set_drains(self, path5):
        program = min_id_gas_program()
        values, rounds = GASEngine(path5).run_active_set(program)
        assert values == [0] * 5
        assert rounds <= 6

    def test_unchanged_apply_does_not_scatter(self):
        # A program whose apply never changes values converges in one round.
        program = GASProgram(
            name="fixed",
            init=lambda g, v: 1,
            gather=lambda u, w: u,
            gather_sum=lambda a, b: a + b,
            gather_zero=0,
            apply=lambda old, gathered: old,
        )
        _, rounds = GASEngine(star_graph(4)).run_active_set(program)
        assert rounds == 1

    def test_synchronous_uses_snapshot(self):
        # In a synchronous sweep on a path, values shift by exactly one
        # hop per iteration (no same-iteration chaining).
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        program = GASProgram(
            name="shift",
            init=lambda graph, v: 1.0 if v == 0 else 0.0,
            gather=lambda u, w: u,
            gather_sum=lambda a, b: a + b,
            gather_zero=0.0,
            apply=lambda old, gathered: gathered,
        )
        values = GASEngine(g).run_synchronous(program, 1)
        assert values == [0.0, 1.0, 0.0]
        values = GASEngine(g).run_synchronous(program, 2)
        assert values == [0.0, 0.0, 1.0]

    def test_max_rounds_guard(self):
        # An oscillating program terminates at the round bound.
        program = GASProgram(
            name="flip",
            init=lambda g, v: 0,
            gather=lambda u, w: u,
            gather_sum=lambda a, b: a + b,
            gather_zero=0,
            apply=lambda old, gathered: 1 - old,
        )
        _, rounds = GASEngine(path_graph(3)).run_active_set(
            program, max_rounds=5
        )
        assert rounds == 5


class TestSpMVMechanics:
    def test_plus_times_is_matrix_vector(self):
        # On a directed star 0 -> {1,2,3}, pushing x[0]=2 lands 2 at
        # each leaf.
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)], directed=True)
        engine = SpMVEngine(g)
        x = np.array([2.0, 0.0, 0.0, 0.0])
        y = engine.spmv(x, PLUS_TIMES, unit_weights=True)
        assert y.tolist() == [0.0, 2.0, 2.0, 2.0]

    def test_min_plus_uses_weights(self):
        g = Graph.from_edges([(0, 1)], directed=True, weights=[3.5])
        engine = SpMVEngine(g)
        x = np.array([1.0, np.inf])
        y = engine.spmv(x, MIN_PLUS)
        assert y[g.index_of(1)] == pytest.approx(4.5)
        assert np.isinf(y[g.index_of(0)])

    def test_or_and_reachability(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        engine = SpMVEngine(g)
        x = np.array([1.0, 0.0, 0.0])
        one_hop = engine.spmv(x, OR_AND, unit_weights=True)
        assert one_hop.tolist() == [0.0, 1.0, 0.0]

    def test_reverse_product(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        engine = SpMVEngine(g)
        x = np.array([0.0, 5.0])
        y = engine.spmv(x, PLUS_TIMES, reverse=True, unit_weights=True)
        assert y.tolist() == [5.0, 0.0]

    def test_undirected_symmetric(self, cycle8):
        engine = SpMVEngine(cycle8)
        x = np.ones(8)
        y = engine.spmv(x, PLUS_TIMES, unit_weights=True)
        assert np.allclose(y, 2.0)  # every vertex hears both neighbors
