"""Cross-model equivalence: one abstract algorithm, three programming
models, identical output (paper §2.2.3 + requirement R1).

Every engine's implementation of every applicable algorithm must pass
the Graphalytics validation rules against the reference kernels, on
directed, undirected, and weighted graphs, plus arbitrary hypothesis-
generated graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.bfs import breadth_first_search
from repro.algorithms.cdlp import community_detection_lp
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import single_source_shortest_paths
from repro.algorithms.validation import validate_output
from repro.algorithms.wcc import weakly_connected_components
from repro.exceptions import GraphFormatError

from tests.algorithms.test_properties import random_graphs
from tests.engines.conftest import ENGINES


class TestBfs:
    def test_undirected(self, engine, er_undirected):
        source = int(er_undirected.vertex_ids[0])
        validate_output(
            "bfs",
            engine.run_bfs(er_undirected, source),
            breadth_first_search(er_undirected, source),
        )

    def test_directed(self, engine, er_directed):
        source = int(er_directed.vertex_ids[0])
        validate_output(
            "bfs",
            engine.run_bfs(er_directed, source),
            breadth_first_search(er_directed, source),
        )

    def test_disconnected(self, engine, two_triangles):
        validate_output(
            "bfs",
            engine.run_bfs(two_triangles, 0),
            breadth_first_search(two_triangles, 0),
        )

    def test_unknown_source(self, engine, er_undirected):
        with pytest.raises(GraphFormatError):
            engine.run_bfs(er_undirected, 99999)


class TestSssp:
    def test_weighted(self, engine, er_weighted):
        source = int(er_weighted.vertex_ids[0])
        validate_output(
            "sssp",
            engine.run_sssp(er_weighted, source),
            single_source_shortest_paths(er_weighted, source),
        )

    def test_unweighted_rejected(self, engine, er_undirected):
        with pytest.raises(GraphFormatError):
            engine.run_sssp(er_undirected, 0)


class TestWcc:
    def test_undirected(self, engine, er_undirected):
        assert np.array_equal(
            engine.run_wcc(er_undirected),
            weakly_connected_components(er_undirected),
        )

    def test_directed_ignores_direction(self, engine, er_directed):
        assert np.array_equal(
            engine.run_wcc(er_directed),
            weakly_connected_components(er_directed),
        )


class TestCdlp:
    @pytest.mark.parametrize("iterations", [1, 3, 10])
    def test_undirected(self, engine, er_undirected, iterations):
        assert np.array_equal(
            engine.run_cdlp(er_undirected, iterations),
            community_detection_lp(er_undirected, iterations=iterations),
        )

    def test_directed(self, engine, er_directed):
        assert np.array_equal(
            engine.run_cdlp(er_directed, 5),
            community_detection_lp(er_directed, iterations=5),
        )


class TestPagerank:
    def test_matches_reference_closely(self, engine, er_undirected):
        ours = engine.run_pagerank(er_undirected, 25)
        reference = pagerank(er_undirected, iterations=25)
        assert np.allclose(ours, reference, rtol=1e-10)

    def test_with_dangling_vertices(self, engine, er_directed):
        ours = engine.run_pagerank(er_directed, 25)
        reference = pagerank(er_directed, iterations=25)
        assert np.allclose(ours, reference, rtol=1e-10)

    def test_sums_to_one(self, engine, er_directed):
        assert engine.run_pagerank(er_directed, 20).sum() == pytest.approx(
            1.0, abs=1e-9
        )


class TestPropertyEquivalence:
    """Hypothesis sweeps: every engine on arbitrary graphs."""

    @settings(max_examples=20, deadline=None)
    @given(random_graphs(max_vertices=16))
    def test_bfs_all_engines(self, graph):
        source = int(graph.vertex_ids[0])
        reference = breadth_first_search(graph, source)
        for engine in ENGINES.values():
            assert np.array_equal(engine.run_bfs(graph, source), reference)

    @settings(max_examples=20, deadline=None)
    @given(random_graphs(max_vertices=16))
    def test_wcc_all_engines(self, graph):
        reference = weakly_connected_components(graph)
        for engine in ENGINES.values():
            assert np.array_equal(engine.run_wcc(graph), reference)

    @settings(max_examples=15, deadline=None)
    @given(random_graphs(max_vertices=14, weighted=True))
    def test_sssp_all_engines(self, graph):
        source = int(graph.vertex_ids[0])
        reference = single_source_shortest_paths(graph, source)
        for engine in ENGINES.values():
            result = engine.run_sssp(graph, source)
            assert np.array_equal(np.isinf(result), np.isinf(reference))
            assert np.allclose(
                result[np.isfinite(result)], reference[np.isfinite(reference)]
            )

    @settings(max_examples=15, deadline=None)
    @given(random_graphs(max_vertices=14))
    def test_cdlp_all_engines(self, graph):
        reference = community_detection_lp(graph, iterations=4)
        for engine in ENGINES.values():
            assert np.array_equal(engine.run_cdlp(graph, 4), reference)
