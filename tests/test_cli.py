"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_job_arguments(self):
        args = build_parser().parse_args(
            ["job", "graphmat", "D300", "bfs", "--machines", "4"]
        )
        assert args.platform == "graphmat"
        assert args.machines == 4


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "dota-league" in out
        assert "graph500-26" in out

    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "PGX.D" in out
        assert "C, D" in out and "I, S" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "dataset-variety" in out
        assert "4.8" in out

    def test_job(self, capsys):
        assert main(["job", "graphmat", "D100", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out

    def test_job_failure_reported(self, capsys):
        assert main(["job", "pgxd", "G25", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "failed-memory" in out

    def test_job_unknown_platform_errors(self, capsys):
        assert main(["job", "neo4j", "D100", "bfs"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_generate(self, tmp_path, capsys):
        prefix = tmp_path / "out"
        code = main(
            ["generate", str(prefix), "--persons", "100", "--seed", "3"]
        )
        assert code == 0
        assert (tmp_path / "out.v").exists()
        assert (tmp_path / "out.e").exists()

    def test_generate_weighted_with_cc(self, tmp_path):
        prefix = tmp_path / "out"
        code = main(
            [
                "generate", str(prefix), "--persons", "120",
                "--target-cc", "0.2", "--weighted",
            ]
        )
        assert code == 0
        content = (tmp_path / "out.e").read_text().splitlines()
        assert len(content[0].split()) == 3  # weighted edges

    def test_run_small_experiment(self, capsys):
        assert main(["run", "data-generation"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 1

    def test_granula(self, capsys, tmp_path):
        html = tmp_path / "report.html"
        code = main(["granula", "openg", "R1", "bfs", "--html", str(html)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tproc" in out
        assert html.exists()

    def test_granula_failed_job(self, capsys):
        code = main(["granula", "pgxd", "G25", "bfs"])
        assert code == 1
        assert "failed" in capsys.readouterr().out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code = main(
            [
                "report", "--platforms", "openg", "--datasets", "R1",
                "--algorithms", "bfs",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "## BFS" in out and "OpenG" in out

    def test_report_to_file(self, tmp_path):
        path = tmp_path / "report.md"
        code = main(
            [
                "report", "--platforms", "graphmat", "--datasets", "R1",
                "--algorithms", "bfs", "--output", str(path),
            ]
        )
        assert code == 0
        assert "GraphMat" in path.read_text()


class TestValidateCommand:
    def test_valid_output_accepted(self, tmp_path, capsys):
        from repro.algorithms.output_io import write_output
        from repro.algorithms.registry import run_reference
        from repro.harness.datasets import get_dataset

        dataset = get_dataset("R1")
        graph = dataset.materialize(0)
        params = dataset.algorithm_parameters("bfs", 0)
        reference = run_reference("bfs", graph, params)
        out_file = write_output(graph, reference, tmp_path / "bfs.out",
                                algorithm="bfs")
        assert main(["validate", "R1", "bfs", str(out_file)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_tampered_output_rejected(self, tmp_path, capsys):
        from repro.algorithms.output_io import write_output
        from repro.algorithms.registry import run_reference
        from repro.harness.datasets import get_dataset

        dataset = get_dataset("R1")
        graph = dataset.materialize(0)
        params = dataset.algorithm_parameters("bfs", 0)
        reference = run_reference("bfs", graph, params).copy()
        reference[0] += 1
        out_file = write_output(graph, reference, tmp_path / "bfs.out",
                                algorithm="bfs")
        assert main(["validate", "R1", "bfs", str(out_file)]) == 1
        assert "VALIDATION FAILED" in capsys.readouterr().out


class TestFigureFlag:
    def test_run_with_figure(self, capsys):
        assert main(["run", "vertical-scalability", "--figure"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
        assert "threads=32" in out


class TestMaterializeCommand:
    def test_materialize(self, tmp_path, capsys):
        code = main(
            [
                "materialize", str(tmp_path / "archive"),
                "--datasets", "R1", "--algorithms", "bfs",
            ]
        )
        assert code == 0
        assert (tmp_path / "archive" / "R1" / "wiki-talk.v").exists()
        assert (tmp_path / "archive" / "R1" / "wiki-talk-BFS").exists()
        assert "archived" in capsys.readouterr().out


class TestFullRunCommand:
    def test_subset_with_report_and_repo(self, tmp_path, capsys):
        code = main(
            [
                "full-run",
                "--experiments", "variability",
                "--report", str(tmp_path / "report.md"),
                "--repository", str(tmp_path / "repo"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ran 1 experiments" in out
        assert (tmp_path / "report.md").exists()
        assert (tmp_path / "repo" / "results.db").exists()
        from repro.harness.repository import ResultsRepository

        assert ResultsRepository(tmp_path / "repo").run_ids()


class TestGenerateGraph500:
    def test_graph500_generator(self, tmp_path):
        prefix = tmp_path / "kron"
        code = main(
            [
                "generate", str(prefix), "--generator", "graph500",
                "--scale", "8", "--edgefactor", "4",
            ]
        )
        assert code == 0
        lines = (tmp_path / "kron.e").read_text().splitlines()
        assert len(lines) > 100


class TestEstimateCommand:
    def test_d300_matches_table8(self, capsys):
        code = main(
            [
                "estimate", "graphmat", "bfs",
                "--vertices", "4.35e6", "--edges", "304e6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scale=8.5" in out
        assert "fits" in out
        assert "modeled Tproc: 0.3" in out

    def test_oom_reported(self, capsys):
        code = main(
            [
                "estimate", "pgxd", "bfs",
                "--vertices", "17.1e6", "--edges", "524e6", "--skew", "1.5",
            ]
        )
        assert code == 1
        assert "OUT OF MEMORY" in capsys.readouterr().out

    def test_distributed_estimate(self, capsys):
        code = main(
            [
                "estimate", "pgxd", "pr",
                "--vertices", "12.8e6", "--edges", "1.01e9",
                "--machines", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 x" in out and "within" in out


class TestRepositoryCommand:
    @pytest.fixture
    def stocked_repo(self, tmp_path):
        from repro.harness.repository import ResultsRepository, RunMetadata
        from repro.harness.results import BenchmarkResult, ResultsDatabase

        def result(tproc):
            return BenchmarkResult(
                platform="GraphMat", algorithm="bfs", dataset="D300",
                machines=1, threads=32, status="succeeded",
                modeled_processing_time=tproc, sla_compliant=True,
                validated=True,
            )

        repo = ResultsRepository(tmp_path / "repo")
        repo.submit(RunMetadata("v1", "GraphMat"), ResultsDatabase([result(1.0)]))
        repo.submit(RunMetadata("v2", "GraphMat"), ResultsDatabase([result(2.0)]))
        return tmp_path / "repo"

    def test_list(self, stocked_repo, capsys):
        assert main(["repository", str(stocked_repo), "list"]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out

    def test_best(self, stocked_repo, capsys):
        assert main(["repository", str(stocked_repo), "best", "bfs", "D300"]) == 0
        out = capsys.readouterr().out
        assert "GraphMat" in out and "run v1" in out

    def test_best_missing(self, stocked_repo, capsys):
        assert main(["repository", str(stocked_repo), "best", "pr", "R1"]) == 1

    def test_regressions_found(self, stocked_repo, capsys):
        code = main(["repository", str(stocked_repo), "regressions", "v1", "v2"])
        assert code == 1
        assert "2.00x" in capsys.readouterr().out

    def test_no_regressions(self, stocked_repo, capsys):
        code = main(["repository", str(stocked_repo), "regressions", "v2", "v1"])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_empty_repository_list(self, tmp_path, capsys):
        assert main(["repository", str(tmp_path / "new"), "list"]) == 0
        assert "no runs" in capsys.readouterr().out


class TestAnalyzeCommand:
    def test_head_to_head(self, capsys):
        code = main(
            ["analyze", "graphmat", "giraph", "D300", "bfs",
             "--repetitions", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "95% CI" in out
        assert "graphmat is" in out and "faster than" in out


class TestTraceCommand:
    def _run(self, tmp_path):
        from repro.harness.config import BenchmarkConfig
        from repro.harness.runner import BenchmarkRunner

        runner = BenchmarkRunner(
            BenchmarkConfig(
                platforms=["pythonref"], datasets=["G22"],
                algorithms=["bfs"], repetitions=1,
            )
        )
        runner.run(run_dir=tmp_path / "run")
        return tmp_path / "run"

    def test_tree_view(self, tmp_path, capsys):
        run_dir = self._run(tmp_path)
        assert main(["trace", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "matrix-run" in out
        assert "kernel" in out
        assert "counters:" in out

    def test_summary_view(self, tmp_path, capsys):
        run_dir = self._run(tmp_path)
        assert main(["trace", str(run_dir), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "pythonref" in out and "bfs" in out
        assert "tproc" in out

    def test_max_depth(self, tmp_path, capsys):
        run_dir = self._run(tmp_path)
        assert main(["trace", str(run_dir), "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "matrix-run" in out and "kernel" not in out

    def test_missing_trace_errors(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestSelfcheckCommand:
    def test_healthy_installation(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all 7 checks passed" in out
        assert "calibration" in out and "determinism" in out


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "selfcheck"],
            capture_output=True, text=True, timeout=120,
        )
        assert completed.returncode == 0, completed.stderr[-1000:]
        assert "all 7 checks passed" in completed.stdout


class TestDbCommand:
    """`graphalytics db`: canned queries over the SQLite results store."""

    def _seed_store(self, tmp_path):
        from repro.resultsdb.store import ResultsStore

        path = tmp_path / "results.db"
        with ResultsStore(path) as store:
            store.submit_run(
                {
                    "run_id": "run-old",
                    "system_under_test": "GraphMat on DAS-5",
                    "submitter": "", "description": "",
                },
                [
                    {"platform": "GraphMat", "algorithm": "bfs",
                     "dataset": "D300", "machines": 1, "threads": 32,
                     "status": "succeeded", "modeled_processing_time": 1.0,
                     "modeled_makespan": 2.0, "sla_compliant": True,
                     "validated": True},
                    {"platform": "Giraph", "algorithm": "bfs",
                     "dataset": "D300", "machines": 1, "threads": 32,
                     "status": "succeeded", "modeled_processing_time": 0.5,
                     "modeled_makespan": 2.0, "sla_compliant": True,
                     "validated": True},
                ],
                commit_sha="aaaa1111",
            )
            store.submit_run(
                {
                    "run_id": "run-new",
                    "system_under_test": "GraphMat on DAS-5",
                    "submitter": "", "description": "",
                },
                [
                    {"platform": "GraphMat", "algorithm": "bfs",
                     "dataset": "D300", "machines": 1, "threads": 32,
                     "status": "succeeded", "modeled_processing_time": 3.0,
                     "modeled_makespan": 4.0, "sla_compliant": True,
                     "validated": True},
                ],
                commit_sha="bbbb2222",
                spans=[{"id": "s1", "name": "run", "start": 0.0, "end": 9.0}],
            )
        return path

    def test_top_leaderboard(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(["db", "--store", str(path), "top", "bfs", "D300"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith(" 1. Giraph")
        assert "run run-old" in lines[0]
        assert lines[1].startswith(" 2. GraphMat")

    def test_top_accepts_a_directory_store(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert path.parent == tmp_path
        assert main(
            ["db", "--store", str(tmp_path), "top", "bfs", "D300"]
        ) == 0
        assert "Giraph" in capsys.readouterr().out

    def test_top_empty_workload_exits_one(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(["db", "--store", str(path), "top", "wcc", "D300"]) == 1
        assert "no compliant result" in capsys.readouterr().out

    def test_trend_shows_commit_and_gap_markers(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(
            ["db", "--store", str(path), "trend", "GraphMat", "bfs", "D300"]
        ) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("run-old")
        assert "@aaaa1111" in lines[0] and "1 s" in lines[0]
        assert lines[1].startswith("run-new")
        assert "3 s" in lines[1]

    def test_regressions_found_exits_one(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        code = main(
            ["db", "--store", str(path), "regressions", "run-old", "run-new"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "1 regression(s): run-new vs run-old" in out
        assert "(3.00x)" in out

    def test_regressions_clean_exits_zero(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        code = main(
            ["db", "--store", str(path), "regressions", "run-new", "run-old"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_timeline_renders_spans(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(["db", "--store", str(path), "timeline", "run-new"]) == 0
        out = capsys.readouterr().out
        assert "run run-new" in out
        assert "1 jobs" in out

    def test_stats(self, tmp_path, capsys):
        path = self._seed_store(tmp_path)
        assert main(["db", "--store", str(path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "runs:         2" in out
        assert "jobs:         3" in out
        assert "spans:        1" in out

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(
            ["db", "--store", str(tmp_path / "nope.db"), "stats"]
        )
        assert code == 1
        assert "no results store" in capsys.readouterr().err

    def test_import_migrates_a_legacy_repository(self, tmp_path, capsys):
        import json

        legacy = tmp_path / "legacy"
        legacy.mkdir()
        payload = {
            "metadata": {
                "run_id": "run-a",
                "system_under_test": "GraphMat on DAS-5",
                "submitter": "", "description": "",
            },
            "results": [
                {"platform": "GraphMat", "algorithm": "bfs",
                 "dataset": "D300", "machines": 1, "threads": 32,
                 "status": "succeeded", "modeled_processing_time": 1.0,
                 "modeled_makespan": 2.0, "sla_compliant": True,
                 "validated": True},
            ],
        }
        (legacy / "run-a.json").write_text(
            json.dumps(payload, indent=1), encoding="utf-8"
        )
        (legacy / ".index.json").write_text("{}", encoding="utf-8")

        assert main(["db", "import", str(legacy)]) == 0
        out = capsys.readouterr().out
        assert "imported 1 run(s)" in out
        assert "(byte-identical)" in out
        assert "retired legacy sidecar left behind: .index.json" in out
        assert (legacy / "results.db").exists()

        # The migrated store answers through the same CLI.
        assert main(
            ["db", "--store", str(legacy), "top", "bfs", "D300"]
        ) == 0
        assert "GraphMat" in capsys.readouterr().out
