"""Cross-dataset correctness: reference kernels vs networkx on every
miniature dataset in the catalog.

This is the library's correctness backstop: for all 16 catalog
miniatures (directed and undirected, weighted and unweighted, skewed and
social), the reference implementations must agree with an independent
implementation (networkx).
"""

import numpy as np
import pytest

from repro.algorithms.bfs import BFS_UNREACHABLE, breadth_first_search
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp import SSSP_UNREACHABLE, single_source_shortest_paths
from repro.algorithms.wcc import weakly_connected_components
from repro.harness.datasets import DATASETS, get_dataset

from tests.conftest import to_networkx

ALL_DATASETS = list(DATASETS)
WEIGHTED_DATASETS = [d for d in DATASETS if DATASETS[d].weighted]


@pytest.fixture(scope="module")
def graphs():
    return {d: get_dataset(d).materialize() for d in ALL_DATASETS}


@pytest.fixture(scope="module")
def nx_graphs(graphs):
    return {d: to_networkx(g) for d, g in graphs.items()}


@pytest.mark.parametrize("dataset_id", ALL_DATASETS)
def test_bfs_matches_networkx(dataset_id, graphs, nx_graphs):
    import networkx as nx

    graph = graphs[dataset_id]
    source = int(
        get_dataset(dataset_id).algorithm_parameters("bfs")["source_vertex"]
    )
    ours = breadth_first_search(graph, source)
    expected = nx.single_source_shortest_path_length(
        nx_graphs[dataset_id], source
    )
    for idx in range(graph.num_vertices):
        vid = graph.id_of(idx)
        if vid in expected:
            assert ours[idx] == expected[vid]
        else:
            assert ours[idx] == BFS_UNREACHABLE


@pytest.mark.parametrize("dataset_id", ALL_DATASETS)
def test_wcc_matches_networkx(dataset_id, graphs, nx_graphs):
    import networkx as nx

    graph = graphs[dataset_id]
    labels = weakly_connected_components(graph)
    nxg = nx_graphs[dataset_id]
    components = (
        nx.weakly_connected_components(nxg)
        if graph.directed
        else nx.connected_components(nxg)
    )
    for component in components:
        expected = min(component)
        for vid in component:
            assert labels[graph.index_of(vid)] == expected


@pytest.mark.parametrize("dataset_id", ["R1", "R3", "R4", "D300", "G23"])
def test_pagerank_matches_networkx(dataset_id, graphs, nx_graphs):
    import networkx as nx

    graph = graphs[dataset_id]
    ours = pagerank(graph, iterations=100)
    # Graphalytics PR is defined on graph structure only; networkx would
    # use edge weights if present, so compare against the unweighted view.
    expected = nx.pagerank(
        nx_graphs[dataset_id], alpha=0.85, max_iter=300, tol=1e-12, weight=None
    )
    for idx in range(graph.num_vertices):
        assert ours[idx] == pytest.approx(expected[graph.id_of(idx)], rel=1e-3)


@pytest.mark.parametrize("dataset_id", WEIGHTED_DATASETS)
def test_sssp_matches_networkx(dataset_id, graphs, nx_graphs):
    import networkx as nx

    graph = graphs[dataset_id]
    source = int(
        get_dataset(dataset_id).algorithm_parameters("sssp")["source_vertex"]
    )
    ours = single_source_shortest_paths(graph, source)
    expected = nx.single_source_dijkstra_path_length(
        nx_graphs[dataset_id], source
    )
    for idx in range(graph.num_vertices):
        vid = graph.id_of(idx)
        if vid in expected:
            assert ours[idx] == pytest.approx(expected[vid], rel=1e-9)
        else:
            assert ours[idx] == SSSP_UNREACHABLE


@pytest.mark.parametrize("dataset_id", ["R2", "R4", "D100", "G22"])
def test_lcc_matches_networkx_on_undirected(dataset_id, graphs, nx_graphs):
    import networkx as nx

    from repro.algorithms.lcc import local_clustering_coefficient

    graph = graphs[dataset_id]
    ours = local_clustering_coefficient(graph)
    expected = nx.clustering(nx_graphs[dataset_id])
    values = np.array([expected[graph.id_of(i)] for i in range(graph.num_vertices)])
    assert np.allclose(ours, values, atol=1e-12)
