"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
)


@pytest.fixture
def path5():
    return path_graph(5)


@pytest.fixture
def k4():
    return complete_graph(4)


@pytest.fixture
def star6():
    return star_graph(6)


@pytest.fixture
def cycle8():
    return cycle_graph(8)


@pytest.fixture
def grid4x5():
    return grid_graph(4, 5)


@pytest.fixture
def er_undirected():
    """A seeded 60-vertex undirected random graph."""
    return erdos_renyi(60, 0.10, seed=11)


@pytest.fixture
def er_directed():
    """A seeded 60-vertex directed random graph."""
    return erdos_renyi(60, 0.06, directed=True, seed=13)


@pytest.fixture
def er_weighted():
    """A seeded weighted undirected random graph."""
    return erdos_renyi(60, 0.10, weighted=True, seed=17)


@pytest.fixture
def two_triangles():
    """Two disconnected triangles: {0,1,2} and {10,11,12}."""
    builder = GraphBuilder(directed=False)
    for a, b in [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)]:
        builder.add_edge(a, b)
    return builder.build(name="two-triangles")


def to_networkx(graph):
    """Convert a repro Graph to a networkx graph (test oracle)."""
    import networkx as nx

    g = nx.DiGraph() if graph.directed else nx.Graph()
    g.add_nodes_from(int(v) for v in graph.vertex_ids)
    weights = graph.edge_weights
    for k in range(graph.num_edges):
        s = int(graph.vertex_ids[graph.edge_src[k]])
        d = int(graph.vertex_ids[graph.edge_dst[k]])
        if weights is not None:
            g.add_edge(s, d, weight=float(weights[k]))
        else:
            g.add_edge(s, d)
    return g


@pytest.fixture
def nx_converter():
    return to_networkx
