"""Failure-injection tests: the validation and robustness paths under
misbehaving platforms.

The harness must *catch* wrong outputs, crashes, and SLA breaches — not
just record happy paths. These tests wire deliberately faulty drivers
through the real runner.
"""

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.platforms.base import JobStatus, PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel

FAULTY_INFO = PlatformInfo(
    name="FaultyPlatform",
    vendor="tests",
    language="Python",
    programming_model="chaos",
    origin="community",
    distributed=True,
    version="0.0",
)

FAST_MODEL = PerformanceModel(
    base_evps=1e9,
    tproc_floor=0.01,
    fixed_overhead=1.0,
    load_rate=1e9,
    upload_rate=1e9,
    variability_cv_single=0.0,
    variability_cv_distributed=0.0,
)


class WrongOutputDriver(PlatformDriver):
    """Produces subtly wrong results (off-by-one BFS depths)."""

    def __init__(self):
        super().__init__(FAULTY_INFO, FAST_MODEL)

    def execute(self, handle, algorithm, params=None, resources=None, **kwargs):
        result = super().execute(handle, algorithm, params, resources, **kwargs)
        if result.output is not None:
            tampered = np.array(result.output, copy=True)
            tampered[0] = tampered[0] + 1
            result.output = tampered
        return result


class SlowDriver(PlatformDriver):
    """Models a platform whose makespan always breaks the 1-hour SLA."""

    def __init__(self):
        slow = PerformanceModel(
            base_evps=10.0,  # elements/second: hopeless
            tproc_floor=0.0,
            fixed_overhead=1.0,
            load_rate=1e9,
            upload_rate=1e9,
            variability_cv_single=0.0,
        )
        super().__init__(FAULTY_INFO, slow)


def _patched_runner(driver) -> BenchmarkRunner:
    runner = BenchmarkRunner(BenchmarkConfig(seed=0))
    runner._drivers["faulty"] = driver
    return runner


class TestWrongOutputCaught:
    @pytest.mark.parametrize("algorithm", ["bfs", "pr", "wcc", "sssp"])
    def test_validation_flags_tampered_output(self, algorithm):
        runner = _patched_runner(WrongOutputDriver())
        dataset = "R4" if get_algorithm(algorithm).weighted else "R1"
        result = runner.run_job("faulty", dataset, algorithm)
        assert result.succeeded            # the job itself "worked" ...
        assert result.validated is False   # ... but the output is wrong

    def test_honest_platform_passes_same_path(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        result = runner.run_job("powergraph", "R1", "bfs")
        assert result.validated is True


class TestSlaBreachCaught:
    def test_slow_platform_breaks_sla(self):
        runner = _patched_runner(SlowDriver())
        result = runner.run_job("faulty", "D300", "bfs")
        assert result.succeeded
        assert result.modeled_makespan > 3600
        assert not result.sla_compliant

    def test_stress_style_failure_counting(self):
        # A platform breaking the SLA counts as a failure in the paper's
        # sense ("does not complete successfully").
        from repro.harness.sla import job_successful
        from repro.platforms.base import JobResult
        from repro.platforms.cluster import ClusterResources

        breached = JobResult(
            platform="X", algorithm="bfs", dataset="D",
            resources=ClusterResources(), status=JobStatus.SUCCEEDED,
            modeled_makespan=4000.0,
        )
        assert not job_successful(breached)


class TestCrashPath:
    def test_crash_has_no_output_and_fails_validation_pipeline(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        result = runner.run_job("graphx", "R1", "cdlp")
        assert result.status == "crashed"
        assert result.validated is None
        assert result.modeled_processing_time is None

    def test_repository_accepts_runs_with_failures(self, tmp_path):
        from repro.harness.repository import ResultsRepository, RunMetadata

        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        runner.run_job("graphx", "R1", "cdlp")   # crash
        runner.run_job("graphx", "R1", "bfs")    # validated success
        repo = ResultsRepository(tmp_path)
        repo.submit(RunMetadata("mixed", "GraphX"), runner.database)
        assert repo.run_ids() == ["mixed"]

    def test_repository_rejects_tampered_run(self, tmp_path):
        from repro.exceptions import ValidationError
        from repro.harness.repository import ResultsRepository, RunMetadata

        runner = _patched_runner(WrongOutputDriver())
        runner.run_job("faulty", "R1", "bfs")
        repo = ResultsRepository(tmp_path)
        with pytest.raises(ValidationError):
            repo.submit(RunMetadata("bad", "Faulty"), runner.database)
