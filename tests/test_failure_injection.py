"""Failure-injection tests: the validation and robustness paths under
misbehaving platforms.

The harness must *catch* wrong outputs, crashes, and SLA breaches — not
just record happy paths. These tests wire deliberately faulty drivers
through the real runner.
"""

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.harness.config import BenchmarkConfig
from repro.harness.runner import BenchmarkRunner
from repro.platforms.base import JobStatus, PlatformDriver, PlatformInfo
from repro.platforms.model import PerformanceModel

FAULTY_INFO = PlatformInfo(
    name="FaultyPlatform",
    vendor="tests",
    language="Python",
    programming_model="chaos",
    origin="community",
    distributed=True,
    version="0.0",
)

FAST_MODEL = PerformanceModel(
    base_evps=1e9,
    tproc_floor=0.01,
    fixed_overhead=1.0,
    load_rate=1e9,
    upload_rate=1e9,
    variability_cv_single=0.0,
    variability_cv_distributed=0.0,
)


class WrongOutputDriver(PlatformDriver):
    """Produces subtly wrong results (off-by-one BFS depths)."""

    def __init__(self):
        super().__init__(FAULTY_INFO, FAST_MODEL)

    def execute(self, handle, algorithm, params=None, resources=None, **kwargs):
        result = super().execute(handle, algorithm, params, resources, **kwargs)
        if result.output is not None:
            tampered = np.array(result.output, copy=True)
            tampered[0] = tampered[0] + 1
            result.output = tampered
        return result


class SlowDriver(PlatformDriver):
    """Models a platform whose makespan always breaks the 1-hour SLA."""

    def __init__(self):
        slow = PerformanceModel(
            base_evps=10.0,  # elements/second: hopeless
            tproc_floor=0.0,
            fixed_overhead=1.0,
            load_rate=1e9,
            upload_rate=1e9,
            variability_cv_single=0.0,
        )
        super().__init__(FAULTY_INFO, slow)


def _patched_runner(driver) -> BenchmarkRunner:
    runner = BenchmarkRunner(BenchmarkConfig(seed=0))
    runner._drivers["faulty"] = driver
    return runner


class TestWrongOutputCaught:
    @pytest.mark.parametrize("algorithm", ["bfs", "pr", "wcc", "sssp"])
    def test_validation_flags_tampered_output(self, algorithm):
        runner = _patched_runner(WrongOutputDriver())
        dataset = "R4" if get_algorithm(algorithm).weighted else "R1"
        result = runner.run_job("faulty", dataset, algorithm)
        assert result.succeeded            # the job itself "worked" ...
        assert result.validated is False   # ... but the output is wrong

    def test_honest_platform_passes_same_path(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        result = runner.run_job("powergraph", "R1", "bfs")
        assert result.validated is True


class TestSlaBreachCaught:
    def test_slow_platform_breaks_sla(self):
        runner = _patched_runner(SlowDriver())
        result = runner.run_job("faulty", "D300", "bfs")
        assert result.succeeded
        assert result.modeled_makespan > 3600
        assert not result.sla_compliant

    def test_stress_style_failure_counting(self):
        # A platform breaking the SLA counts as a failure in the paper's
        # sense ("does not complete successfully").
        from repro.harness.sla import job_successful
        from repro.platforms.base import JobResult
        from repro.platforms.cluster import ClusterResources

        breached = JobResult(
            platform="X", algorithm="bfs", dataset="D",
            resources=ClusterResources(), status=JobStatus.SUCCEEDED,
            modeled_makespan=4000.0,
        )
        assert not job_successful(breached)


class TestRuntimeFaultInjection:
    """Hanging and crashing *workers* (not modeled platforms): the
    concurrent runtime must terminate them, retry with backoff, and
    surface a structured failure — never hang and never lose a job."""

    def _config(self):
        return BenchmarkConfig(
            platforms=["powergraph"],
            datasets=["R1"],
            algorithms=["bfs", "pr"],
            repetitions=2,
        )

    def test_timing_out_worker_is_killed_retried_and_recorded(self):
        from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig, execute_matrix

        plan = FaultPlan(
            (FaultSpec(kind="hang", algorithm="bfs", run_index=0, times=2),)
        )
        result = execute_matrix(
            self._config(),
            RuntimeConfig(
                workers=2, job_timeout=0.5, fault_plan=plan,
                max_attempts=2, backoff_base=0.01,
            ),
        )
        # no lost jobs: every execute job has exactly one row
        assert result.lost_jobs == 0
        assert len(result.database) == 4
        failed = result.database.query(status="harness-timeout")
        assert len(failed) == 1
        assert failed[0].algorithm == "bfs" and failed[0].run_index == 0
        assert not failed[0].sla_compliant
        # structured failure: both attempts recorded as timeouts, one retry
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.final_kind == "timeout"
        assert failure.retries == 1
        assert [a.kind for a in failure.attempts] == ["timeout", "timeout"]
        assert failure.attempts[0].backoff_seconds > 0
        assert result.events.count("timeout") == 2
        assert result.events.count("retry") == 1
        # the other three jobs are untouched
        assert len(result.database.query(status="succeeded")) == 3

    def test_transient_hang_recovers_on_retry(self):
        from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig, execute_matrix

        plan = FaultPlan(
            (FaultSpec(kind="hang", algorithm="pr", run_index=1, times=1),)
        )
        result = execute_matrix(
            self._config(),
            RuntimeConfig(
                workers=2, job_timeout=0.5, fault_plan=plan,
                max_attempts=2, backoff_base=0.01,
            ),
        )
        assert result.lost_jobs == 0
        assert result.failures == []
        assert all(r.succeeded for r in result.database)
        assert result.events.count("timeout") == 1
        assert result.events.count("retry") == 1

    def test_crashing_worker_is_respawned_and_job_retried(self):
        from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig, execute_matrix

        plan = FaultPlan(
            (FaultSpec(kind="crash", algorithm="bfs", run_index=1, times=1),)
        )
        result = execute_matrix(
            self._config(),
            RuntimeConfig(
                workers=2, job_timeout=10.0, fault_plan=plan,
                max_attempts=2, backoff_base=0.01,
            ),
        )
        assert result.lost_jobs == 0
        assert result.failures == []
        assert all(r.succeeded for r in result.database)
        assert result.events.count("crash") == 1
        assert result.events.count("retry") == 1

    def test_persistently_crashing_job_becomes_structured_failure(self):
        from repro.runtime import FaultPlan, FaultSpec, RuntimeConfig, execute_matrix

        plan = FaultPlan(
            (FaultSpec(kind="crash", algorithm="pr", run_index=0, times=5),)
        )
        result = execute_matrix(
            self._config(),
            RuntimeConfig(
                workers=2, job_timeout=10.0, fault_plan=plan,
                max_attempts=2, backoff_base=0.01,
            ),
        )
        assert result.lost_jobs == 0
        failed = result.database.query(status="harness-crash")
        assert len(failed) == 1
        assert len(result.failures) == 1
        assert result.failures[0].final_kind == "crash"
        assert [a.kind for a in result.failures[0].attempts] == [
            "crash", "crash",
        ]
        assert len(result.database.query(status="succeeded")) == 3


class TestCrashPath:
    def test_crash_has_no_output_and_fails_validation_pipeline(self):
        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        result = runner.run_job("graphx", "R1", "cdlp")
        assert result.status == "crashed"
        assert result.validated is None
        assert result.modeled_processing_time is None

    def test_repository_accepts_runs_with_failures(self, tmp_path):
        from repro.harness.repository import ResultsRepository, RunMetadata

        runner = BenchmarkRunner(BenchmarkConfig(seed=0))
        runner.run_job("graphx", "R1", "cdlp")   # crash
        runner.run_job("graphx", "R1", "bfs")    # validated success
        repo = ResultsRepository(tmp_path)
        repo.submit(RunMetadata("mixed", "GraphX"), runner.database)
        assert repo.run_ids() == ["mixed"]

    def test_repository_rejects_tampered_run(self, tmp_path):
        from repro.exceptions import ValidationError
        from repro.harness.repository import ResultsRepository, RunMetadata

        runner = _patched_runner(WrongOutputDriver())
        runner.run_job("faulty", "R1", "bfs")
        repo = ResultsRepository(tmp_path)
        with pytest.raises(ValidationError):
            repo.submit(RunMetadata("bad", "Faulty"), runner.database)
