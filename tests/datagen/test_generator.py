"""Tests for the Datagen social-network generator."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.datagen.generator import (
    DatagenConfig,
    FlowVersion,
    generate,
    generate_with_flow,
    solve_community_parameters,
)
from repro.graph.stats import compute_statistics


class TestBasicGeneration:
    def test_vertex_count(self):
        g = generate(300, seed=1)
        assert g.num_vertices == 300

    def test_undirected_no_duplicates(self):
        g = generate(300, seed=1)
        seen = set()
        for s, d in g.edges():
            assert s != d
            key = (min(s, d), max(s, d))
            assert key not in seen
            seen.add(key)

    def test_mean_degree_near_target(self):
        g = generate(600, mean_degree=16, seed=2)
        degrees = g.degrees()
        assert degrees.mean() == pytest.approx(16, rel=0.25)

    def test_deterministic(self):
        a = generate(200, seed=3)
        b = generate(200, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_seed_changes_output(self):
        a = generate(200, seed=3)
        b = generate(200, seed=4)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_weighted_option(self):
        g = generate(200, weighted=True, seed=5)
        assert g.is_weighted
        assert np.all(g.edge_weights > 0)

    def test_skewed_degrees(self):
        g = generate(800, mean_degree=14, seed=6)
        degrees = g.degrees()
        assert degrees.max() > 3 * degrees.mean()

    def test_correlated_clustering(self):
        # Datagen graphs are far more clustered than an Erdős–Rényi
        # graph of the same density (the correlation property).
        from repro.graph.generators import erdos_renyi

        g = generate(500, mean_degree=14, seed=7)
        random = erdos_renyi(500, 14 / 499, seed=7)
        cc_datagen = compute_statistics(g).mean_clustering_coefficient
        cc_random = compute_statistics(random).mean_clustering_coefficient
        assert cc_datagen > 2 * cc_random

    def test_mostly_one_big_component(self):
        st = compute_statistics(generate(500, mean_degree=14, seed=8))
        assert st.largest_component_fraction > 0.9


class TestTunableClusteringCoefficient:
    """The paper's headline Datagen extension (§2.5.1, Figure 2)."""

    def test_targets_are_ordered(self):
        ccs = []
        for target in (0.05, 0.15, 0.3):
            g = generate(
                600, mean_degree=16, target_clustering_coefficient=target, seed=9
            )
            ccs.append(compute_statistics(g).mean_clustering_coefficient)
        assert ccs[0] < ccs[1] < ccs[2]

    def test_high_target_reached_approximately(self):
        g = generate(
            600, mean_degree=16, target_clustering_coefficient=0.3, seed=10
        )
        measured = compute_statistics(g).mean_clustering_coefficient
        assert measured == pytest.approx(0.3, rel=0.35)

    def test_low_target_clearly_below_high(self):
        low = generate(600, mean_degree=16, target_clustering_coefficient=0.05, seed=11)
        high = generate(600, mean_degree=16, target_clustering_coefficient=0.3, seed=11)
        cc_low = compute_statistics(low).mean_clustering_coefficient
        cc_high = compute_statistics(high).mean_clustering_coefficient
        assert cc_high > 2 * cc_low

    def test_name_records_target(self):
        g = generate(100, target_clustering_coefficient=0.15, seed=1)
        assert "cc0.15" in g.name

    def test_invalid_target(self):
        with pytest.raises(GenerationError):
            generate(100, target_clustering_coefficient=1.5)

    def test_solver_monotone_in_target(self):
        p_low, _ = solve_community_parameters(0.05, 16, 18.0)
        p_high, _ = solve_community_parameters(0.30, 16, 18.0)
        assert 0 < p_low < p_high <= 1.0

    def test_solver_budget_fraction_bounded(self):
        _, fraction = solve_community_parameters(0.9, 16, 6.0)
        assert fraction <= 0.9


class TestExecutionFlows:
    """Old (v0.2.1) vs new (v0.2.6) flow: identical graphs, different work."""

    def test_flows_produce_identical_graphs(self):
        config = DatagenConfig(num_persons=300, seed=12)
        old, _ = generate_with_flow(config, FlowVersion.V0_2_1)
        new, _ = generate_with_flow(config, FlowVersion.V0_2_6)
        assert np.array_equal(old.edge_src, new.edge_src)
        assert np.array_equal(old.edge_dst, new.edge_dst)

    def test_old_flow_sorts_grow_per_step(self):
        config = DatagenConfig(num_persons=300, seed=12)
        _, trace = generate_with_flow(config, FlowVersion.V0_2_1)
        sorted_counts = [s.records_sorted for s in trace.steps]
        assert sorted_counts == sorted(sorted_counts)
        assert sorted_counts[-1] > sorted_counts[0]

    def test_new_flow_sorts_constant_per_step(self):
        config = DatagenConfig(num_persons=300, seed=12)
        _, trace = generate_with_flow(config, FlowVersion.V0_2_6)
        assert all(s.records_sorted == 300 for s in trace.steps)
        assert trace.merge_records == sum(s.edges_emitted for s in trace.steps)

    def test_three_steps(self):
        _, trace = generate_with_flow(DatagenConfig(num_persons=200, seed=1))
        assert len(trace.steps) == 3
        assert [s.dimension for s in trace.steps] == [
            "university", "interest", "random",
        ]

    def test_total_records_property(self):
        _, trace = generate_with_flow(DatagenConfig(num_persons=200, seed=1))
        assert trace.total_records_sorted == (
            sum(s.records_sorted for s in trace.steps) + trace.merge_records
        )


class TestConfigValidation:
    def test_too_few_persons(self):
        with pytest.raises(GenerationError):
            DatagenConfig(num_persons=1)

    def test_mean_degree_exceeds_persons(self):
        with pytest.raises(GenerationError):
            DatagenConfig(num_persons=10, mean_degree=20)

    def test_small_block_size(self):
        with pytest.raises(GenerationError):
            DatagenConfig(num_persons=100, block_size=2)

    def test_small_community_size(self):
        with pytest.raises(GenerationError):
            DatagenConfig(num_persons=100, community_size=2)


class TestDegreeDistributionChoice:
    """§2.5.1: Datagen supports different degree distributions."""

    def test_zipf_graph_more_skewed(self):
        from repro.graph.stats import degree_skewness

        config_fb = DatagenConfig(num_persons=600, mean_degree=12, seed=13)
        config_zipf = DatagenConfig(
            num_persons=600, mean_degree=12, seed=13,
            degree_distribution="zipf",
        )
        fb, _ = generate_with_flow(config_fb)
        zipf, _ = generate_with_flow(config_zipf)
        assert degree_skewness(zipf.degrees()) > degree_skewness(fb.degrees())

    def test_uniform_graph_nearly_regular(self):
        config = DatagenConfig(
            num_persons=600, mean_degree=12, seed=13,
            degree_distribution="uniform",
        )
        graph, _ = generate_with_flow(config)
        degrees = graph.degrees()
        assert degrees.std() / degrees.mean() < 0.5

    def test_unknown_distribution_rejected(self):
        with pytest.raises(GenerationError, match="unknown degree"):
            DatagenConfig(num_persons=100, degree_distribution="cauchy")
