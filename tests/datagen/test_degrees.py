"""Tests for degree-distribution sampling."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.datagen.degrees import facebook_degree_distribution, sample_degrees


class TestSampling:
    def test_mean_close_to_target(self):
        degrees = sample_degrees(5000, mean_degree=20.0, seed=1)
        assert degrees.mean() == pytest.approx(20.0, rel=0.1)

    def test_minimum_degree_one(self):
        degrees = sample_degrees(2000, mean_degree=3.0, seed=2)
        assert degrees.min() >= 1

    def test_max_degree_cap(self):
        degrees = sample_degrees(5000, mean_degree=10.0, max_degree=40, seed=3)
        assert degrees.max() <= 40

    def test_default_cap_is_ten_times_mean(self):
        degrees = sample_degrees(5000, mean_degree=10.0, seed=3)
        assert degrees.max() <= 100

    def test_right_skewed(self):
        degrees = sample_degrees(5000, mean_degree=20.0, sigma=1.0, seed=4)
        assert np.median(degrees) < degrees.mean()

    def test_sigma_controls_spread(self):
        tight = sample_degrees(5000, mean_degree=20.0, sigma=0.3, seed=5)
        wide = sample_degrees(5000, mean_degree=20.0, sigma=1.2, seed=5)
        assert tight.std() < wide.std()

    def test_deterministic(self):
        a = sample_degrees(100, seed=7)
        b = sample_degrees(100, seed=7)
        assert np.array_equal(a, b)

    def test_integer_dtype(self):
        assert sample_degrees(10, seed=1).dtype == np.int64


class TestValidation:
    def test_nonpositive_n(self):
        with pytest.raises(GenerationError):
            sample_degrees(0)

    def test_nonpositive_mean(self):
        with pytest.raises(GenerationError):
            sample_degrees(10, mean_degree=0.0)

    def test_rng_variant(self):
        rng = np.random.default_rng(1)
        degrees = facebook_degree_distribution(100, mean_degree=5.0, rng=rng)
        assert len(degrees) == 100


class TestDistributionFamilies:
    def test_zipf_heavier_tail_than_facebook(self):
        import numpy as np
        from repro.graph.stats import degree_skewness

        facebook = sample_degrees(4000, mean_degree=15.0, seed=9)
        zipf = sample_degrees(
            4000, mean_degree=15.0, distribution="zipf", seed=9
        )
        assert degree_skewness(zipf) > degree_skewness(facebook)

    def test_uniform_narrow_band(self):
        degrees = sample_degrees(
            2000, mean_degree=20.0, distribution="uniform", seed=10
        )
        assert degrees.min() >= 14
        assert degrees.max() <= 26

    def test_all_families_hit_the_mean(self):
        import pytest as _pytest

        for distribution in ("facebook", "zipf", "uniform"):
            degrees = sample_degrees(
                5000, mean_degree=12.0, distribution=distribution, seed=11
            )
            assert degrees.mean() == _pytest.approx(12.0, rel=0.2), distribution

    def test_unknown_family(self):
        with pytest.raises(GenerationError, match="unknown degree"):
            sample_degrees(10, distribution="cauchy")

    def test_zipf_exponent_validated(self):
        import numpy as np
        from repro.datagen.degrees import zipf_degree_distribution

        with pytest.raises(GenerationError):
            zipf_degree_distribution(
                10, mean_degree=5.0, exponent=1.0,
                rng=np.random.default_rng(0),
            )

    def test_uniform_spread_validated(self):
        import numpy as np
        from repro.datagen.degrees import uniform_degree_distribution

        with pytest.raises(GenerationError):
            uniform_degree_distribution(
                10, mean_degree=5.0, spread=1.5,
                rng=np.random.default_rng(0),
            )
