"""Property-based tests (hypothesis) for the synthetic generators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datagen.flow import (
    DatagenFlowModel,
    FlowVersion,
    HadoopClusterModel,
)
from repro.datagen.generator import DatagenConfig, generate_with_flow
from repro.datagen.graph500 import graph500
from repro.datagen.realworld import synthetic_replica


@settings(max_examples=15, deadline=None)
@given(
    persons=st.integers(min_value=20, max_value=120),
    mean_degree=st.floats(min_value=4.0, max_value=15.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_datagen_structural_invariants(persons, mean_degree, seed):
    config = DatagenConfig(num_persons=persons, mean_degree=mean_degree, seed=seed)
    graph, trace = generate_with_flow(config)
    # Data-model invariants: undirected, no loops, no duplicates, all
    # persons present.
    assert graph.num_vertices == persons
    assert not graph.directed
    seen = set()
    for s, d in graph.edges():
        assert s != d
        key = (min(s, d), max(s, d))
        assert key not in seen
        seen.add(key)
    # Trace bookkeeping matches the emitted edges (before dedup).
    assert trace.merge_records == sum(s.edges_emitted for s in trace.steps)


@settings(max_examples=15, deadline=None)
@given(
    persons=st.integers(min_value=20, max_value=100),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_datagen_flows_always_identical(persons, seed):
    config = DatagenConfig(num_persons=persons, seed=seed)
    old, _ = generate_with_flow(config, FlowVersion.V0_2_1)
    new, _ = generate_with_flow(config, FlowVersion.V0_2_6)
    assert np.array_equal(old.edge_src, new.edge_src)
    assert np.array_equal(old.edge_dst, new.edge_dst)


@settings(max_examples=15, deadline=None)
@given(
    scale=st.integers(min_value=4, max_value=9),
    edgefactor=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_graph500_structural_invariants(scale, edgefactor, seed):
    graph = graph500(scale, edgefactor=edgefactor, seed=seed)
    assert graph.num_vertices <= 2 ** scale
    assert np.all(graph.degrees() > 0)  # only touched vertices kept
    for s, d in graph.edges():
        assert s != d


@settings(max_examples=10, deadline=None)
@given(
    profile=st.sampled_from(["talk", "citation", "coplay", "social"]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_replicas_respect_size_bounds(profile, seed):
    graph = synthetic_replica(profile, 150, 600, seed=seed)
    assert graph.num_vertices <= 150 or profile == "social"
    assert graph.num_edges <= 650


@settings(max_examples=20, deadline=None)
@given(
    sf=st.floats(min_value=1.0, max_value=20_000.0),
    machines=st.integers(min_value=1, max_value=64),
)
def test_flow_model_invariants(sf, machines):
    model = DatagenFlowModel()
    cluster = HadoopClusterModel(machines=machines)
    t_old = model.execution_time(sf, FlowVersion.V0_2_1, cluster)
    t_new = model.execution_time(sf, FlowVersion.V0_2_6, cluster)
    overhead_old = 6 * model.job_spawn_seconds
    overhead_new = 5 * model.job_spawn_seconds
    assert t_old >= overhead_old
    assert t_new >= overhead_new
    # The old flow never beats the new one by more than the one extra
    # job spawn it avoids.
    assert t_old >= t_new - model.job_spawn_seconds


@settings(max_examples=20, deadline=None)
@given(
    sf=st.floats(min_value=10.0, max_value=5000.0),
    m_small=st.integers(min_value=1, max_value=8),
)
def test_flow_model_monotone_in_machines(sf, m_small):
    model = DatagenFlowModel()
    t_small = model.execution_time(
        sf, FlowVersion.V0_2_6, HadoopClusterModel(machines=m_small)
    )
    t_big = model.execution_time(
        sf, FlowVersion.V0_2_6, HadoopClusterModel(machines=m_small * 2)
    )
    assert t_big <= t_small + 1e-9
