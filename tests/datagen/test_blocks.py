"""Tests for block construction and the measured correlation property."""

import pytest

from repro.exceptions import GenerationError
from repro.datagen.blocks import (
    Block,
    build_blocks,
    correlation_report,
    within_block_fraction,
)
from repro.datagen.generator import generate
from repro.datagen.persons import generate_persons
from repro.graph.graph import Graph


@pytest.fixture(scope="module")
def persons():
    return generate_persons(400, seed=5)


@pytest.fixture(scope="module")
def graph():
    return generate(400, mean_degree=14, seed=5)


class TestBuildBlocks:
    def test_partition_covers_everyone(self, persons):
        blocks = build_blocks(persons, "university", 64)
        ids = [pid for block in blocks for pid in block.person_ids]
        assert sorted(ids) == list(range(400))

    def test_block_sizes(self, persons):
        blocks = build_blocks(persons, "university", 64)
        assert all(len(b) == 64 for b in blocks[:-1])
        assert len(blocks[-1]) == 400 - 64 * (len(blocks) - 1)

    def test_membership(self, persons):
        block = build_blocks(persons, "university", 64)[0]
        assert block.person_ids[0] in block

    def test_invalid_block_size(self, persons):
        with pytest.raises(GenerationError):
            build_blocks(persons, "university", 1)

    def test_unknown_dimension(self, persons):
        with pytest.raises(GenerationError):
            build_blocks(persons, "age", 64)


class TestWithinBlockFraction:
    def test_all_within(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=False)
        blocks = [Block(0, (0, 1, 2))]
        assert within_block_fraction(g, blocks) == 1.0

    def test_none_within(self):
        g = Graph.from_edges([(0, 1)], directed=False)
        blocks = [Block(0, (0,)), Block(1, (1,))]
        assert within_block_fraction(g, blocks) == 0.0

    def test_empty_graph(self):
        g = Graph.from_edges([], directed=False, vertices=[0])
        assert within_block_fraction(g, [Block(0, (0,))]) == 0.0


class TestCorrelationProperty:
    """The paper's §2.5.1 requirement, measured."""

    def test_correlated_dimensions_beat_shuffle(self, graph, persons):
        report = correlation_report(graph, persons, block_size=64)
        # Friendships concentrate inside university/interest blocks far
        # beyond what a random partition of equal granularity captures.
        assert report["university"] > 2 * report["shuffled-baseline"]
        assert report["interest"] > 2 * report["shuffled-baseline"]

    def test_random_dimension_is_also_correlated(self, graph, persons):
        # The "random" dimension is a correlation dimension too (10% of
        # the budget is spent along it), so it beats the baseline.
        report = correlation_report(graph, persons, block_size=64)
        assert report["random"] > report["shuffled-baseline"]

    def test_cc_mode_remains_correlated(self, persons):
        graph = generate(
            400, mean_degree=14, target_clustering_coefficient=0.3, seed=5
        )
        report = correlation_report(graph, persons, block_size=64)
        assert report["university"] > 2 * report["shuffled-baseline"]
