"""Tests for the real-world dataset replica models."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.datagen.realworld import REPLICA_PROFILES, synthetic_replica
from repro.graph.stats import compute_statistics, degree_skewness


class TestProfiles:
    def test_known_profiles(self):
        assert set(REPLICA_PROFILES) == {"talk", "citation", "coplay", "social"}

    def test_unknown_profile(self):
        with pytest.raises(GenerationError, match="unknown replica profile"):
            synthetic_replica("webgraph", 100, 200)

    def test_invalid_sizes(self):
        with pytest.raises(GenerationError):
            synthetic_replica("talk", 1, 1)


class TestTalk:
    def test_directed_and_sized(self):
        g = synthetic_replica("talk", 500, 1200, seed=1)
        assert g.directed
        assert g.num_vertices == 500
        assert g.num_edges == 1200

    def test_in_degree_highly_skewed(self):
        g = synthetic_replica("talk", 500, 2500, seed=2)
        assert degree_skewness(g.in_degrees()) > 1.5

    def test_deterministic(self):
        a = synthetic_replica("talk", 300, 800, seed=3)
        b = synthetic_replica("talk", 300, 800, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())


class TestCitation:
    def test_acyclic(self):
        # Every citation points to a strictly lower id, so the graph is a
        # DAG by construction.
        g = synthetic_replica("citation", 400, 1500, seed=4)
        assert g.directed
        assert all(s > d for s, d in g.edges())

    def test_no_duplicate_citations(self):
        g = synthetic_replica("citation", 400, 1500, seed=4)
        pairs = list(g.edges())
        assert len(pairs) == len(set(pairs))


class TestCoplay:
    def test_undirected_with_weights(self):
        g = synthetic_replica("coplay", 300, 4000, weighted=True, seed=5)
        assert not g.directed
        assert g.is_weighted
        assert g.num_edges == 4000

    def test_community_structure(self):
        # Matches draw nearby players, so clustering is far above the
        # density baseline.
        g = synthetic_replica("coplay", 300, 4000, seed=6)
        st = compute_statistics(g)
        assert st.mean_clustering_coefficient > 3 * st.density

    def test_dense_target_achievable(self):
        g = synthetic_replica("coplay", 100, 2000, seed=7)
        assert g.num_edges == 2000


class TestSocial:
    def test_undirected_by_default(self):
        g = synthetic_replica("social", 600, 5000, seed=8)
        assert not g.directed

    def test_directed_variant(self):
        g = synthetic_replica("social", 600, 5000, directed=True, seed=8)
        assert g.directed

    def test_power_law(self):
        g = synthetic_replica("social", 600, 8000, seed=9)
        assert degree_skewness(g.degrees()) > 1.5

    def test_named(self):
        g = synthetic_replica("social", 200, 900, seed=1, name="mini-friendster")
        assert g.name == "mini-friendster"
