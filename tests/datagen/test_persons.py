"""Tests for correlated person generation."""

import pytest

from repro.exceptions import GenerationError
from repro.datagen.persons import (
    CORRELATION_DIMENSIONS,
    generate_persons,
    sort_key_for,
)


class TestGeneration:
    def test_count_and_ids(self):
        persons = generate_persons(50, seed=1)
        assert len(persons) == 50
        assert [p.person_id for p in persons] == list(range(50))

    def test_deterministic(self):
        assert generate_persons(30, seed=2) == generate_persons(30, seed=2)

    def test_seed_matters(self):
        assert generate_persons(30, seed=2) != generate_persons(30, seed=3)

    def test_university_correlates_with_country(self):
        # A person's university encodes their country (university // 8).
        persons = generate_persons(200, seed=4)
        for p in persons:
            assert p.university // 8 == p.country

    def test_attributes_skewed(self):
        # Zipf draws concentrate on low ranks: the most common interest
        # must cover far more than a uniform share.
        persons = generate_persons(500, seed=5)
        from collections import Counter

        counts = Counter(p.interest for p in persons)
        top = counts.most_common(1)[0][1]
        assert top > 3 * (500 / len(counts))

    def test_random_keys_are_permutation(self):
        persons = generate_persons(100, seed=6)
        assert sorted(p.random_key for p in persons) == list(range(100))

    def test_nonpositive_rejected(self):
        with pytest.raises(GenerationError):
            generate_persons(0)


class TestSortKeys:
    def test_dimensions_cover_budget(self):
        total = sum(share for _, share in CORRELATION_DIMENSIONS)
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("dimension", ["university", "interest", "random"])
    def test_sort_is_deterministic(self, dimension):
        persons = generate_persons(100, seed=7)
        key = sort_key_for(dimension)
        a = sorted(persons, key=key)
        b = sorted(list(reversed(persons)), key=key)
        assert [p.person_id for p in a] == [p.person_id for p in b]

    def test_unknown_dimension(self):
        with pytest.raises(GenerationError):
            sort_key_for("age")

    def test_university_sort_groups_countries(self):
        persons = generate_persons(300, seed=8)
        ordered = sorted(persons, key=sort_key_for("university"))
        # Consecutive persons in university order share a country far
        # more often than random pairs would.
        same = sum(
            1
            for a, b in zip(ordered, ordered[1:])
            if a.country == b.country
        )
        assert same / (len(ordered) - 1) > 0.5
