"""Tests for the Graph500 Kronecker (R-MAT) generator."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.datagen.graph500 import Graph500Config, graph500
from repro.graph.stats import compute_statistics, degree_skewness


class TestConfig:
    def test_defaults_are_graph500_reference(self):
        config = Graph500Config(scale=10)
        assert config.edgefactor == 16
        assert (config.a, config.b, config.c) == (0.57, 0.19, 0.19)
        assert config.d == pytest.approx(0.05)

    def test_sample_counts(self):
        config = Graph500Config(scale=10, edgefactor=8)
        assert config.num_vertex_slots == 1024
        assert config.num_edge_samples == 8192

    def test_invalid_scale(self):
        with pytest.raises(GenerationError):
            Graph500Config(scale=0)

    def test_invalid_probabilities(self):
        with pytest.raises(GenerationError):
            Graph500Config(scale=5, a=0.8, b=0.2, c=0.2)


class TestGeneration:
    def test_undirected_no_self_loops(self):
        g = graph500(8, seed=1)
        assert not g.directed
        assert all(s != d for s, d in g.edges())

    def test_no_duplicate_edges(self):
        g = graph500(8, seed=1)
        pairs = [(min(s, d), max(s, d)) for s, d in g.edges()]
        assert len(pairs) == len(set(pairs))

    def test_deterministic(self):
        a = graph500(8, seed=2)
        b = graph500(8, seed=2)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_only_touched_vertices_kept(self):
        # |V| is the number of vertices with >= 1 edge, below 2^scale
        # (matching the Table 4 dataset sizes).
        g = graph500(10, seed=3)
        assert g.num_vertices < 2 ** 10
        assert np.all(g.degrees() > 0)

    def test_power_law_skew(self):
        g = graph500(10, seed=4)
        assert degree_skewness(g.degrees()) > 2.0

    def test_much_more_skewed_than_datagen(self):
        # The §4.6 finding relies on Graph500 graphs being far more
        # skewed than Datagen graphs of comparable size.
        from repro.datagen.generator import generate

        g500 = graph500(10, seed=5)
        social = generate(
            g500.num_vertices,
            mean_degree=min(40.0, 2 * g500.num_edges / g500.num_vertices),
            seed=5,
        )
        assert degree_skewness(g500.degrees()) > 2 * degree_skewness(
            social.degrees()
        )

    def test_weighted_variant(self):
        g = graph500(8, weighted=True, seed=6)
        assert g.is_weighted
        assert np.all(g.edge_weights > 0)

    def test_custom_name(self):
        assert graph500(6, name="mini").name == "mini"

    def test_default_name(self):
        assert graph500(6).name == "graph500-6"

    def test_giant_component(self):
        st = compute_statistics(graph500(10, seed=7))
        assert st.largest_component_fraction > 0.8
