"""Tests for the §4.8 Datagen execution-flow cost model (Figure 10)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.datagen.flow import (
    DatagenFlowModel,
    FlowVersion,
    HadoopClusterModel,
    estimate_generation_time,
)
from repro.datagen.generator import DatagenConfig, generate_with_flow


class TestHadoopClusterModel:
    def test_master_plus_workers(self):
        cluster = HadoopClusterModel(machines=16)
        assert cluster.workers == 15
        assert cluster.total_reducers == 90  # paper: 6 per worker

    def test_single_machine(self):
        assert HadoopClusterModel(machines=1).workers == 1

    def test_efficiency_decreases_with_machines(self):
        small = HadoopClusterModel(machines=4)
        large = HadoopClusterModel(machines=16)
        assert large.parallel_efficiency < small.parallel_efficiency
        assert large.effective_parallelism > small.effective_parallelism

    def test_invalid_machines(self):
        with pytest.raises(ConfigurationError):
            HadoopClusterModel(machines=0)


class TestPaperCalibration:
    """Shape checks against the §4.8 numbers (tolerances documented in
    EXPERIMENTS.md: the model reproduces trends within ~1.4x)."""

    def test_new_flow_faster_at_every_scale(self):
        for sf in (30, 100, 300, 1000, 3000):
            t_old = estimate_generation_time(sf, version=FlowVersion.V0_2_1)
            t_new = estimate_generation_time(sf, version=FlowVersion.V0_2_6)
            assert t_new < t_old

    def test_speedup_grows_with_scale_factor(self):
        # Paper: 1.16x, 1.33x, 1.83x, 2.15x, 2.9x for SF 30..3000.
        ratios = []
        for sf in (30, 100, 300, 1000, 3000):
            t_old = estimate_generation_time(sf, version=FlowVersion.V0_2_1)
            t_new = estimate_generation_time(sf, version=FlowVersion.V0_2_6)
            ratios.append(t_old / t_new)
        assert ratios == sorted(ratios)
        assert 1.0 < ratios[0] < 2.0
        assert 2.2 < ratios[-1] < 3.5

    def test_billion_edges_in_under_an_hour(self):
        # Paper: 44 minutes for SF 1000 on 16 machines (v0.2.6).
        minutes = estimate_generation_time(1000, machines=16) / 60
        assert 35 <= minutes <= 60

    def test_old_flow_near_95_minutes(self):
        minutes = estimate_generation_time(
            1000, machines=16, version=FlowVersion.V0_2_1
        ) / 60
        assert 75 <= minutes <= 115

    def test_sf10000_ratio(self):
        # Paper: increasing SF 1000 -> 10000 increases time by 10.6x.
        ratio = estimate_generation_time(10000) / estimate_generation_time(1000)
        assert 8.0 <= ratio <= 12.5

    def test_horizontal_speedup_grows_with_scale(self):
        # Paper: 4->16 machine speedups 1.1, 1.4, 2.0, 3.0 for SF 30..1000.
        speedups = []
        for sf in (30, 100, 300, 1000):
            t4 = estimate_generation_time(sf, machines=4)
            t16 = estimate_generation_time(sf, machines=16)
            speedups.append(t4 / t16)
        assert speedups == sorted(speedups)
        assert speedups[0] < 2.0
        assert 2.4 <= speedups[-1] <= 3.4

    def test_overhead_dominates_small_scale(self):
        model = DatagenFlowModel()
        cluster = HadoopClusterModel(machines=16)
        t = model.execution_time(10, FlowVersion.V0_2_6, cluster)
        overhead = 5 * model.job_spawn_seconds
        assert overhead / t > 0.5

    def test_invalid_scale_factor(self):
        with pytest.raises(ConfigurationError):
            estimate_generation_time(0)


class TestTraceBasedEstimate:
    """The cost model also accepts measured miniature traces (ablation)."""

    def test_trace_preserves_old_vs_new_ordering(self):
        model = DatagenFlowModel()
        cluster = HadoopClusterModel(machines=16)
        config = DatagenConfig(num_persons=400, seed=1)
        _, old_trace = generate_with_flow(config, FlowVersion.V0_2_1)
        _, new_trace = generate_with_flow(config, FlowVersion.V0_2_6)
        t_old = model.execution_time_from_trace(
            old_trace, cluster, scale_factor=1000
        )
        t_new = model.execution_time_from_trace(
            new_trace, cluster, scale_factor=1000
        )
        assert t_new < t_old

    def test_trace_estimate_close_to_analytic(self):
        model = DatagenFlowModel()
        cluster = HadoopClusterModel(machines=16)
        config = DatagenConfig(num_persons=400, seed=1)
        _, trace = generate_with_flow(config, FlowVersion.V0_2_6)
        t_trace = model.execution_time_from_trace(
            trace, cluster, scale_factor=1000
        )
        t_analytic = model.execution_time(1000, FlowVersion.V0_2_6, cluster)
        assert t_trace == pytest.approx(t_analytic, rel=0.5)

    def test_empty_trace_rejected(self):
        from repro.datagen.generator import GenerationTrace

        model = DatagenFlowModel()
        cluster = HadoopClusterModel(machines=4)
        with pytest.raises(ConfigurationError):
            model.execution_time_from_trace(
                GenerationTrace(flow=FlowVersion.V0_2_6, num_persons=10), cluster
            )
